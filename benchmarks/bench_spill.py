"""S12 — cold-segment spill-to-disk store vs fully resident tiers.

The bounded-footprint long-horizon workload: an identical multi-year
sharded stream replayed twice through a *tiered*
:class:`~repro.stream.sharding.ShardedStreamRuntime`.  The resident
configuration (PR 8/S10) keeps every sealed cold segment's columns in
memory, so RSS still grows with stream age even though tick latency is
bounded.  The spill engine (:mod:`repro.stream.store`) serializes each
cold seal into an mmap-readable on-disk segment, drops the columns from
memory — cold segments keep only their aggregate sidecar and a
content-addressed store key — and rehydrates on demand through a small
LRU cache (``max_resident_cold``).  Queries that only need aggregate
sums (window counts, SAI signals) ride the sidecars and never touch the
disk at all.

Two methodology choices make the comparison honest (see
:func:`repro.analysis.benchkit.run_spill_bench`):

* **every post carries a distinct text** — pooled texts would let the
  arena interner make resident cold columns nearly free, hiding the
  footprint the store exists to shed;
* **each phase runs in its own subprocess** — ``ru_maxrss`` is a
  process-lifetime maximum, so sharing a process would cap the second
  phase's reading at the first phase's peak and let it reuse the
  first's allocator arenas.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_spill.py -q

The workload profile comes from ``$S12_PROFILE`` (``full`` | ``smoke``,
default ``full``).  The full profile is the acceptance run: a 5-year
1024-post/day distinct-text corpus under a tight retention window
(15-day warm spans aging cold at 120 days, so the cold tier dominates),
a <= 0.5x peak-RSS ratio against the resident phase and a steady-state
tick-latency penalty of at most 10%.  The smoke profile is the CI run:
same kernels and equivalence checks on a 2-year stream, with the looser
RSS budget its younger (cold-light) corpus can show.

Equivalence is bit-level: both phases must raise identical alert
sequences and finish on the identical SAI table, and a spilled sharded
``replay_scenario`` audit (checkpoints saved and restored against the
same segment store) must hold parity against the paper's batch monitor.

``test_s12_spill_rss_latency_and_equivalence`` writes
``BENCH_spill.json`` (see docs/BENCHMARKS.md for the schema); the
record carries ``extra.store_bytes`` and ``extra.hydrations`` next to
``extra.peak_rss_kb`` so ``run_benches.py --check`` gates store-size
blow-ups exactly like RSS ones.
"""

import os

from repro.analysis.benchjson import load_bench_result
from repro.analysis.benchkit import (
    S12_LATENCY_RATIO_BUDGET,
    S12_PROFILES,
    S12_RSS_RATIO_BUDGET,
    run_spill_bench,
)

PROFILE = os.environ.get("S12_PROFILE", "full")


def test_s12_spill_rss_latency_and_equivalence(bench_report):
    result = run_spill_bench(profile=PROFILE)
    path = bench_report(result)
    payload = load_bench_result(path)
    print("\nS12 summary: " + str(payload))

    assert result.equivalent, (
        "spilled phase diverged from the resident phase or the "
        "batch-monitor replay audit failed"
    )
    extra = payload["extra"]
    assert extra["phase_alert_parity"], extra
    assert extra["replay_ok"], extra
    assert extra["rss_within_budget"], extra
    assert extra["rss_ratio_budget"] == S12_RSS_RATIO_BUDGET[PROFILE]
    assert extra["latency_within_budget"], extra
    assert extra["latency_ratio_budget"] == S12_LATENCY_RATIO_BUDGET[PROFILE]
    assert extra["spills"] > 0, extra
    assert extra["store_bytes"] > 0, extra
    assert extra["store_segments"] > 0, extra
    assert extra["hydrations"] is not None, extra
    assert extra["spilled_segments"]["layout"] == "tiered"
    assert extra["spilled_segments"]["store"] is not None, extra
    assert extra["resident_segments"]["store"] is None, extra
    assert "peak_rss_kb" in extra  # the writer's satellite-wide stamp
    dims = S12_PROFILES[PROFILE]
    expected_posts = dims["years"] * 365 * dims["posts_per_day"]
    assert payload["workload"]["posts"] == expected_posts
    assert payload["workload"]["profile"] == PROFILE
    assert payload["bench"] == "spill"
