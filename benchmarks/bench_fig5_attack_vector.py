"""E2 — Fig. 5: the attack-vector-based approach table (G.9).

Regenerates the static table rows and benchmarks table lookups (the
kernel every TARA feasibility query hits).
"""

from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import AttackVectorModel, standard_table


def test_fig5_attack_vector_table(benchmark):
    model = AttackVectorModel()
    vectors = list(AttackVector) * 2500

    def rate_all():
        return [model.rate(v) for v in vectors]

    ratings = benchmark(rate_all)

    print("\nFig. 5 — attack vector-based approach (ISO/SAE-21434 G.9):")
    for vector, rating in standard_table().items():
        print(f"  {vector.value:<9} -> {rating.label()}")

    assert len(ratings) == len(vectors)
    table = standard_table()
    assert table.rating(AttackVector.NETWORK) is FeasibilityRating.HIGH
    assert table.rating(AttackVector.ADJACENT) is FeasibilityRating.MEDIUM
    assert table.rating(AttackVector.LOCAL) is FeasibilityRating.LOW
    assert table.rating(AttackVector.PHYSICAL) is FeasibilityRating.VERY_LOW
