"""A1 — ablation: SAI engagement-weight sensitivity.

Computes the SAI under five weight mixes (default, flat, volume-only,
views-only, interactions-only) and reports ranking stability vs the
default mix.  The paper's Fig. 12 ranking should be robust: DPF delete
stays first under every mix.
"""

from repro.analysis.sweep import sai_weight_ablation, ranking_stability
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.social import excavator_specs


def _database() -> KeywordDatabase:
    db = KeywordDatabase()
    for spec in excavator_specs():
        db.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    return db


def test_a1_sai_weight_ablation(benchmark, excavator_client):
    database = _database()

    def run_ablation():
        return sai_weight_ablation(excavator_client, database)

    results = benchmark(run_ablation)
    stability = ranking_stability(results)

    print("\nA1 — SAI weight-mix ablation (excavator corpus):")
    for label, sai in results.items():
        top3 = ", ".join(sai.ranking()[:3])
        print(f"  {label:<18} stability={stability[label]:.2f}  top3: {top3}")

    for label, sai in results.items():
        assert sai.ranking()[0] == "dpfdelete", label
    assert stability["default"] == 1.0
    # every mix orders at least ~2/3 of the keyword pairs like the default
    assert all(v >= 0.66 for v in stability.values())
