"""S2 — scaling: attack-path enumeration vs architecture size.

Benchmarks the full attack-surface sweep on synthetic architectures of
growing size (domains x ECUs-per-domain).
"""

import pytest

from repro.vehicle.architecture import scaled_architecture
from repro.vehicle.attack_surface import AttackSurfaceAnalyzer

SHAPES = ((2, 4), (4, 8), (6, 12))


@pytest.mark.parametrize("domains,ecus", SHAPES)
def test_s2_attack_path_scaling(benchmark, domains, ecus):
    network = scaled_architecture(domains=domains, ecus_per_domain=ecus)
    analyzer = AttackSurfaceAnalyzer(network)

    reports = benchmark(analyzer.sweep)

    total_paths = sum(len(r.paths) for r in reports.values())
    print(f"\nS2 — architecture {domains}x{ecus}: {len(network.ecus)} ECUs, "
          f"{total_paths} attack paths enumerated")
    assert len(reports) == len(network.ecus)
    # every non-gateway ECU is reachable from the OBD entry point
    reachable = [r for r in reports.values() if r.paths]
    assert len(reachable) >= len(network.ecus) - 1
