#!/usr/bin/env python
"""Benchmark runner: time the key engines and emit ``BENCH_<name>.json``.

Runs the registered bench kernels (indexed corpus engine, batched+cached
query engine, sentiment memo, compiled batch TARA scorer) without any
pytest machinery and writes
one machine-readable JSON record per bench, so the repository's
performance trajectory is data (docs/BENCHMARKS.md documents the
schema).  CI runs this and uploads the files as workflow artifacts.

Usage::

    PYTHONPATH=src python benchmarks/run_benches.py            # all benches
    PYTHONPATH=src python benchmarks/run_benches.py --out out/ # custom dir
    PYTHONPATH=src python benchmarks/run_benches.py --bench indexed_corpus
    PYTHONPATH=src python benchmarks/run_benches.py --only stream
    PYTHONPATH=src python benchmarks/run_benches.py --check    # vs committed
    PYTHONPATH=src python benchmarks/run_benches.py --list

Exits non-zero if any bench's engine result diverges from its naive
reference — speed without equivalence is a bug, not a result.  With
``--check``, also exits non-zero when a fresh speedup falls more than
30% below the committed ``BENCH_<name>.json``, a fresh peak RSS more
than doubles the committed one, or a spill bench's on-disk store size
more than doubles it (the CI regression gates); benches
without a committed record — or whose committed record ran a different
workload profile (e.g. the S9 smoke profile vs the committed full
profile) — are skipped with a note.  ``--smoke`` switches
profile-capable benches (columnar, retention) to their fast smoke
workload.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Allow running without PYTHONPATH=src from the repository root.
_SRC = Path(__file__).resolve().parents[1] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.benchjson import (  # noqa: E402
    bench_file_path,
    load_bench_result,
    rss_regression,
    speedup_regression,
    store_regression,
    write_bench_result,
)
from repro.analysis.benchkit import (  # noqa: E402
    BENCH_RUNNERS,
    PROFILED_BENCHES,
)

#: Where the committed BENCH_*.json records live (the repository root).
DEFAULT_BASELINE_DIR = Path(__file__).resolve().parents[1]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=".",
        help="directory for the BENCH_<name>.json files (default: cwd)",
    )
    parser.add_argument(
        "--bench",
        action="append",
        choices=sorted(BENCH_RUNNERS),
        help="bench to run (repeatable; default: all)",
    )
    parser.add_argument(
        "--only",
        choices=sorted(BENCH_RUNNERS),
        default=None,
        help="run exactly one bench (overrides --bench); the selector "
        "CI and local runs use to target a single gate",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available benches and exit"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare fresh speedups (and peak RSS) against the committed "
        "BENCH_*.json records and fail on a >30%% speedup regression or "
        "a >2x RSS blow-up",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run profile-capable benches "
        f"({', '.join(sorted(PROFILED_BENCHES))}) on their smoke profile "
        "— the fast CI workload",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE_DIR),
        help="directory holding the committed records --check compares "
        "against (default: the repository root)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(BENCH_RUNNERS):
            print(name)
        return 0

    if args.only:
        names = [args.only]
    else:
        names = args.bench or sorted(BENCH_RUNNERS)
    all_equivalent = True
    regressions = []
    for name in names:
        if args.smoke and name in PROFILED_BENCHES:
            result = BENCH_RUNNERS[name](profile="smoke")
        else:
            result = BENCH_RUNNERS[name]()
        path = write_bench_result(result, args.out)
        # Read the record back so the check sees exactly what was
        # written (including the peak-RSS stamp the writer adds).
        fresh = load_bench_result(path)
        print(json.dumps(fresh))
        print(f"wrote {path}")
        all_equivalent = all_equivalent and result.equivalent
        if args.check:
            committed_path = bench_file_path(name, args.baseline)
            if not committed_path.is_file():
                print(f"check: no committed record for {name!r}, skipping")
                continue
            committed = load_bench_result(committed_path)
            fresh_profile = fresh["workload"].get("profile")
            committed_profile = committed["workload"].get("profile")
            if fresh_profile != committed_profile:
                print(
                    f"check: {name} ran profile {fresh_profile!r} but the "
                    f"committed record is {committed_profile!r} — not "
                    "comparable, skipping"
                )
                continue
            problems = [
                problem
                for problem in (
                    speedup_regression(fresh, committed),
                    rss_regression(fresh, committed),
                    store_regression(fresh, committed),
                )
                if problem is not None
            ]
            if not problems:
                print(
                    f"check: {name} ok ({fresh['speedup']}x vs committed "
                    f"{committed['speedup']}x)"
                )
            else:
                regressions.extend(problems)
                for problem in problems:
                    print(f"check: REGRESSION — {problem}")

    failed = False
    if not all_equivalent:
        print("ERROR: an engine diverged from its naive reference", file=sys.stderr)
        failed = True
    if regressions:
        print(
            "ERROR: speedup regressions vs committed records:\n  "
            + "\n  ".join(regressions),
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
