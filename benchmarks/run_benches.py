#!/usr/bin/env python
"""Benchmark runner: time the key engines and emit ``BENCH_<name>.json``.

Runs the registered bench kernels (indexed corpus engine, batched+cached
query engine, sentiment memo, compiled batch TARA scorer) without any
pytest machinery and writes
one machine-readable JSON record per bench, so the repository's
performance trajectory is data (docs/BENCHMARKS.md documents the
schema).  CI runs this and uploads the files as workflow artifacts.

Usage::

    PYTHONPATH=src python benchmarks/run_benches.py            # all benches
    PYTHONPATH=src python benchmarks/run_benches.py --out out/ # custom dir
    PYTHONPATH=src python benchmarks/run_benches.py --bench indexed_corpus
    PYTHONPATH=src python benchmarks/run_benches.py --only stream
    PYTHONPATH=src python benchmarks/run_benches.py --list

Exits non-zero if any bench's engine result diverges from its naive
reference — speed without equivalence is a bug, not a result.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Allow running without PYTHONPATH=src from the repository root.
_SRC = Path(__file__).resolve().parents[1] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.benchjson import write_bench_result  # noqa: E402
from repro.analysis.benchkit import BENCH_RUNNERS  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=".",
        help="directory for the BENCH_<name>.json files (default: cwd)",
    )
    parser.add_argument(
        "--bench",
        action="append",
        choices=sorted(BENCH_RUNNERS),
        help="bench to run (repeatable; default: all)",
    )
    parser.add_argument(
        "--only",
        choices=sorted(BENCH_RUNNERS),
        default=None,
        help="run exactly one bench (overrides --bench); the selector "
        "CI and local runs use to target a single gate",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available benches and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(BENCH_RUNNERS):
            print(name)
        return 0

    if args.only:
        names = [args.only]
    else:
        names = args.bench or sorted(BENCH_RUNNERS)
    all_equivalent = True
    for name in names:
        result = BENCH_RUNNERS[name]()
        path = write_bench_result(result, args.out)
        print(json.dumps(result.to_payload()))
        print(f"wrote {path}")
        all_equivalent = all_equivalent and result.equivalent

    if not all_equivalent:
        print("ERROR: an engine diverged from its naive reference", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
