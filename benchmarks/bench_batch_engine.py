"""S4 — the batched+cached PSP engine vs the per-keyword path.

The fleet-scale workload the seed implementation handled quadratically:
a large keyword database (>= 50 attack topics) analysed over a series of
*overlapping* sliding windows (the monitor's growing-window cadence).
The per-keyword path re-scopes the corpus and re-mines every keyword for
every window; the batched engine shares one corpus scope per window
(:meth:`InMemoryClient.search_many`) and the cached engine additionally
re-uses year-segment results across the overlapping windows
(:class:`~repro.core.cache.CachedClient`), so window N+1 only mines the
one year it newly covers.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_engine.py -q \
        --benchmark-json=bench_batch_engine.json

``test_s4_speedup_and_equivalence`` prints a machine-readable JSON
summary (see docs/BENCHMARKS.md) and asserts both the speedup and the
batch-vs-sequential SAI equivalence on the full workload.
"""

import json
import time

import pytest

from repro.core.cache import CachedClient, TTLCache
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.sai import SAIComputer
from repro.core.timewindow import TimeWindow
from repro.iso21434.enums import AttackVector
from repro.social import AttackTopicSpec, InMemoryClient, generate_corpus
from repro.social.api import SearchQuery

#: >= 50 keywords, as the fleet-scale acceptance workload demands.
N_KEYWORDS = 56
YEARS = tuple(range(2016, 2024))
#: Growing windows 2016-2019, 2016-2020, ... 2016-2023: 5 windows with
#: >= 4 years of pairwise overlap — the monitor's cadence.
WINDOWS = tuple(TimeWindow.years(2016, last) for last in range(2019, 2024))

_VECTORS = (
    AttackVector.PHYSICAL,
    AttackVector.LOCAL,
    AttackVector.ADJACENT,
    AttackVector.NETWORK,
)


def _specs():
    specs = []
    for i in range(N_KEYWORDS):
        specs.append(
            AttackTopicSpec(
                keyword=f"attacktopic{i:02d}",
                vector=_VECTORS[i % len(_VECTORS)],
                owner_approved=(i % 3 != 0),
                yearly_volume={year: 4 + (i + year) % 7 for year in YEARS},
                engagement_scale=0.5 + (i % 5) * 0.3,
            )
        )
    return tuple(specs)


def _database(specs):
    db = KeywordDatabase()
    for spec in specs:
        db.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    return db


@pytest.fixture(scope="module")
def workload():
    specs = _specs()
    corpus = generate_corpus(specs, seed=21434)
    return corpus, _database(specs)


def _sequential_pass(client, database, windows=WINDOWS):
    """The seed path: one synchronous search per keyword per window."""
    computer = SAIComputer(client)
    results = []
    for window in windows:
        posts = {
            entry.keyword: client.search(
                SearchQuery(
                    keyword=entry.keyword,
                    since=window.since,
                    until=window.until,
                    region="europe",
                )
            )
            for entry in database
        }
        results.append(computer.compute_from_posts(database, posts))
    return results


def _batched_cached_pass(client, database, windows=WINDOWS):
    """The new path: one batched query per window over a cached client."""
    computer = SAIComputer(client)
    return [
        computer.compute(
            database,
            region="europe",
            since=window.since,
            until=window.until,
        )
        for window in windows
    ]


def test_s4_per_keyword_baseline(benchmark, workload):
    corpus, database = workload
    client = InMemoryClient(corpus)

    results = benchmark(_sequential_pass, client, database)

    print(f"\nS4 — per-keyword path: {len(database)} keywords x "
          f"{len(WINDOWS)} overlapping windows, {len(corpus)} posts")
    assert len(results) == len(WINDOWS)


def test_s4_batched_cached_engine(benchmark, workload):
    corpus, database = workload
    inner = InMemoryClient(corpus)

    def run():
        # Fresh cache per round: measures one cold monitoring sequence,
        # where each window still reuses the previous windows' years.
        client = CachedClient(inner, cache=TTLCache())
        return _batched_cached_pass(client, database)

    results = benchmark(run)

    print(f"\nS4 — batched+cached engine: {len(database)} keywords x "
          f"{len(WINDOWS)} overlapping windows, {len(corpus)} posts")
    assert len(results) == len(WINDOWS)


def test_s4_speedup_and_equivalence(workload):
    corpus, database = workload
    plain = InMemoryClient(corpus)

    start = time.perf_counter()
    sequential = _sequential_pass(plain, database)
    sequential_s = time.perf_counter() - start

    cached = CachedClient(InMemoryClient(corpus), cache=TTLCache())
    start = time.perf_counter()
    batched = _batched_cached_pass(cached, database)
    batched_s = time.perf_counter() - start

    # Identical inputs => identical SAI lists, window by window.
    for window, left, right in zip(WINDOWS, sequential, batched):
        assert left.as_rows() == right.as_rows(), window.describe()

    speedup = sequential_s / batched_s if batched_s > 0 else float("inf")
    summary = {
        "workload": {
            "keywords": len(database),
            "windows": len(WINDOWS),
            "posts": len(corpus),
        },
        "per_keyword_seconds": round(sequential_s, 4),
        "batched_cached_seconds": round(batched_s, 4),
        "speedup": round(speedup, 2),
        "query_cache": cached.stats.as_dict(),
    }
    print("\nS4 summary: " + json.dumps(summary))

    # The batched+cached engine must beat the per-keyword path on this
    # workload; in practice the margin is several-fold (year segments of
    # windows 1..N are reused by window N+1).
    assert speedup > 1.2, summary
