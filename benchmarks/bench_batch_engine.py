"""S4 — the batched+cached PSP engine vs the per-keyword path.

The fleet-scale workload the seed implementation handled quadratically:
a large keyword database (>= 50 attack topics) analysed over a series of
*overlapping* sliding windows (the monitor's growing-window cadence).
The per-keyword path re-scopes the corpus and re-mines every keyword for
every window; the batched engine shares one corpus scope per window
(:meth:`InMemoryClient.search_many`) and the cached engine additionally
re-uses year-segment results across the overlapping windows
(:class:`~repro.core.cache.CachedClient`), so window N+1 only mines the
one year it newly covers.

Both sides now ride the inverted corpus index (see
``bench_indexed_corpus.py`` for that layer's own gate), so this bench
isolates the batching+caching win on top of it.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_engine.py -q \
        --benchmark-json=bench_batch_engine.json

``test_s4_speedup_and_equivalence`` writes ``BENCH_batch_engine.json``
(see docs/BENCHMARKS.md) and asserts both the speedup and the
batch-vs-sequential SAI equivalence on the full workload.
"""

import pytest

from repro.analysis.benchjson import load_bench_result
from repro.analysis.benchkit import (
    batched_cached_sai_pass,
    fleet_workload,
    run_batch_engine_bench,
    sequential_sai_pass,
)
from repro.core.cache import CachedClient, TTLCache
from repro.social import InMemoryClient


@pytest.fixture(scope="module")
def workload():
    return fleet_workload()


def test_s4_per_keyword_baseline(benchmark, workload):
    client = InMemoryClient(workload.corpus)

    results = benchmark(
        sequential_sai_pass, client, workload.database, workload.windows
    )

    print(f"\nS4 — per-keyword path: {len(workload.database)} keywords x "
          f"{len(workload.windows)} overlapping windows, "
          f"{len(workload.corpus)} posts")
    assert len(results) == len(workload.windows)


def test_s4_batched_cached_engine(benchmark, workload):
    inner = InMemoryClient(workload.corpus)

    def run():
        # Fresh cache per round: measures one cold monitoring sequence,
        # where each window still reuses the previous windows' years.
        client = CachedClient(inner, cache=TTLCache())
        return batched_cached_sai_pass(client, workload.database, workload.windows)

    results = benchmark(run)

    print(f"\nS4 — batched+cached engine: {len(workload.database)} keywords x "
          f"{len(workload.windows)} overlapping windows, "
          f"{len(workload.corpus)} posts")
    assert len(results) == len(workload.windows)


def test_s4_speedup_and_equivalence(workload, bench_report):
    result = run_batch_engine_bench(workload)
    path = bench_report(result)
    payload = load_bench_result(path)
    print("\nS4 summary: " + str(payload))

    # Identical inputs => identical SAI lists, window by window.
    assert result.equivalent, "batched engine diverged from sequential path"
    # The batched+cached engine must beat the per-keyword path on this
    # workload.  The margin narrowed when the per-keyword baseline
    # started riding the inverted index too; the remaining win is the
    # year-segment reuse across overlapping windows.
    assert result.speedup > 1.2, payload
    assert payload["bench"] == "batch_engine"
