"""E7 — Fig. 12: the excavator insider-attack SAI ranking.

Runs the "excavator, Europe" query of §III over the keyword database and
prints the ranked SAI list; DPF delete must rank first.  Benchmarks the
full SAI computation over the corpus.
"""

def test_fig12_excavator_sai(benchmark, excavator_framework):
    def compute():
        return excavator_framework.compute_sai()

    sai = benchmark(compute)

    print("\nFig. 12 — excavator insider attacks by SAI (query: excavator, Europe):")
    for rank, entry in enumerate(sai, start=1):
        print(f"  {rank}. {entry.keyword:<20} score={entry.score:.3f} "
              f"p={entry.probability:.3f} posts={entry.post_count}")

    ranking = sai.ranking()
    assert ranking[0] == "dpfdelete"
    # The emission-defeat family dominates the top of the list.
    assert ranking.index("egrdelete") < ranking.index("hourmeterrollback")
    # Scores are a probability distribution over the scene.
    assert abs(sum(e.probability for e in sai) - 1.0) < 1e-9
