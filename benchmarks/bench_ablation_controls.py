"""A4 — ablation: residual risk vs control stacking.

Starting from the PSP-tuned insider table (Fig. 9-B regime: physical
High), applies the control catalogue one control at a time and prints
the residual-risk curve for the severe-impact physical threat — the
"how much security is enough" view the paper's FC budget motivates.
"""

from repro.iso21434.controls import default_catalog, residual_risk
from repro.iso21434.enums import AttackVector, FeasibilityRating, ImpactRating
from repro.iso21434.feasibility.attack_vector import WeightTable


def psp_table() -> WeightTable:
    return WeightTable(
        {
            AttackVector.NETWORK: FeasibilityRating.VERY_LOW,
            AttackVector.ADJACENT: FeasibilityRating.VERY_LOW,
            AttackVector.LOCAL: FeasibilityRating.MEDIUM,
            AttackVector.PHYSICAL: FeasibilityRating.HIGH,
        },
        source="psp",
    )


def test_a4_residual_risk_curve(benchmark):
    catalog = default_catalog()
    table = psp_table()
    physical_controls = [
        c for c in catalog if c.hardens(AttackVector.PHYSICAL)
    ]

    def build_curve():
        curve = []
        deployed = []
        curve.append(
            residual_risk(
                AttackVector.PHYSICAL, ImpactRating.SEVERE, table, deployed
            )
        )
        for control in physical_controls:
            deployed.append(control)
            curve.append(
                residual_risk(
                    AttackVector.PHYSICAL, ImpactRating.SEVERE, table, deployed
                )
            )
        return curve

    curve = benchmark(build_curve)

    print("\nA4 — residual risk vs control stacking (severe physical threat):")
    names = ["(none)"] + [c.name for c in physical_controls]
    for name, record in zip(names, curve):
        print(f"  +{name:<28} feasibility={record.residual_feasibility.label():<9} "
              f"risk={record.residual_risk}")

    risks = [record.residual_risk for record in curve]
    # monotone non-increasing and strictly reduced by the full stack
    assert all(b <= a for a, b in zip(risks, risks[1:]))
    assert risks[-1] < risks[0]
    # severe impact floors at 2 in the default matrix
    assert risks[-1] >= 2
