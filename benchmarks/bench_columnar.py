"""S9 — columnar arena ingest vs the per-object delta-segment append path.

The 10M+-corpus ingest workload: a synthetic date-ordered stream lands
in micro-batches on an appendable index.  The pre-columnar reaction
(the PR-6 :class:`StreamingCorpusIndex`, replicated verbatim in
:mod:`repro.analysis._legacy_index`) keeps per-post ``Post`` /
``PostAnalysis`` object lists and three dict posting maps, and every
1024-post compaction rebuilds all of them over the whole corpus —
O(N^2/threshold) ingest.  The columnar engine
(:mod:`repro.social.columnar`) appends into parallel ``array`` columns,
one joined haystack arena and chunked ``array('I')`` postings, and its
geometric compactions concatenate arrays at C speed — O(N) ingest.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_columnar.py -q

The workload profile comes from ``$S9_PROFILE`` (``full`` | ``smoke``,
default ``full``).  The full profile is the acceptance run: 1M+ posts,
a >= 10x ingest-throughput gate (typical margin is ~20-30x) and a
peak-RSS budget.  The smoke profile is the CI run: same kernels,
equivalence and RSS checks at a fraction of the wall time, gated at the
proportionally lower floor its smaller naive sample can show (the
legacy path's per-post cost grows with corpus size, so a 32k-post
sample understates the 1M-post gap by ~8x).

``test_s9_columnar_ingest_speedup_and_equivalence`` writes
``BENCH_columnar.json`` (see docs/BENCHMARKS.md for the schema).
"""

import os

from repro.analysis.benchjson import load_bench_result
from repro.analysis.benchkit import (
    S9_PROFILES,
    S9_RSS_BUDGET_KB,
    run_columnar_bench,
)

PROFILE = os.environ.get("S9_PROFILE", "full")

#: Ingest-throughput gate per profile (engine posts/s over naive
#: posts/s).  ``full`` is the paper-scale acceptance claim; ``smoke``
#: gates the floor a 32k-post naive sample can demonstrate.
GATES = {"full": 10.0, "smoke": 2.5}


def test_s9_columnar_ingest_speedup_and_equivalence(bench_report):
    result = run_columnar_bench(profile=PROFILE)
    path = bench_report(result)
    payload = load_bench_result(path)
    print("\nS9 summary: " + str(payload))

    assert result.equivalent, (
        "columnar index diverged from the per-object reference on the "
        "out-of-order streamed sample"
    )
    assert result.speedup >= GATES[PROFILE], payload
    extra = payload["extra"]
    assert extra["rss_within_budget"], extra
    assert extra["peak_rss_budget_kb"] == S9_RSS_BUDGET_KB[PROFILE]
    assert "peak_rss_kb" in extra  # the writer's satellite-wide stamp
    assert payload["workload"]["posts"] == S9_PROFILES[PROFILE]["engine_posts"]
    assert payload["bench"] == "columnar"
