"""S6 — the compiled batch TARA scorer vs N+1 monolith engine runs.

The fleet workload of ``fleet_taras``: one static baseline plus ten
PSP-tuned members over the same architecture.  The seed path re-ran the
full TARA monolith per table — re-identifying assets, re-enumerating
STRIDE threats and (the hot part) re-walking every attack path **per
threat, per table**.  The engine path compiles the threat model once
(:mod:`repro.tara.model`) and sweeps all eleven tables over it
(:mod:`repro.tara.scoring`), memoising per-(path, table-fingerprint)
feasibility.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_tara_batch.py -q

``test_tara_batch_speedup_and_equivalence`` asserts record-for-record
identical reports, a >= 5x speedup on the 11-table fleet-rescoring
workload, and writes ``BENCH_tara_batch.json`` (see docs/BENCHMARKS.md
for the schema).
"""

import pytest

from repro.analysis.benchjson import load_bench_result
from repro.analysis.benchkit import (
    batch_fleet_tara_pass,
    fleet_insider_tables,
    naive_fleet_tara_pass,
    run_tara_batch_bench,
    tara_fleet_network,
)
from repro.tara.model import clear_compile_cache


@pytest.fixture(scope="module")
def network():
    return tara_fleet_network()


@pytest.fixture(scope="module")
def tables():
    return fleet_insider_tables()


def test_s6_monolith_fleet_pass(benchmark, network, tables):
    reports = benchmark(naive_fleet_tara_pass, network, tables)
    print(f"\nS6 — N+1 monolith runs: {len(tables)} tuned tables + baseline, "
          f"{len(network.ecus)} ECUs, {len(reports[0].records)} threats/run")
    assert len(reports) == len(tables) + 1


def test_s6_batch_scorer(benchmark, network, tables):
    def run():
        clear_compile_cache()
        return batch_fleet_tara_pass(network, tables)

    reports = benchmark(run)
    print(f"\nS6 — compiled batch scorer: {len(tables)} tuned tables + "
          f"baseline over one compiled model")
    assert len(reports) == len(tables) + 1


def test_tara_batch_speedup_and_equivalence(network, tables, bench_report):
    result = run_tara_batch_bench(network=network, tables=tables)
    path = bench_report(result)
    payload = load_bench_result(path)
    print("\nS6 summary: " + str(payload))

    assert result.equivalent, "batch scorer diverged from the monolith runs"
    # The acceptance gate: compiled-model fleet rescoring must beat the
    # N+1 legacy TaraEngine.run() path >= 5x on the 10-member workload
    # (typical margin is ~15-25x).
    assert result.speedup >= 5.0, payload
    assert payload["bench"] == "tara_batch"
