"""E1 — Fig. 3: attack-potential weights model.

Regenerates the factor-weight table and rates the canonical attacker
profiles of §II; benchmarks the rating kernel over the full factor grid.
"""

import itertools

from repro.iso21434.feasibility.attack_potential import (
    AttackPotentialInput,
    AttackPotentialModel,
    ElapsedTime,
    Equipment,
    Expertise,
    Knowledge,
    WindowOfOpportunity,
)


def full_factor_grid():
    return [
        AttackPotentialInput(*combo)
        for combo in itertools.product(
            ElapsedTime, Expertise, Knowledge, WindowOfOpportunity, Equipment
        )
    ]


def test_fig3_attack_potential_grid(benchmark):
    model = AttackPotentialModel()
    grid = full_factor_grid()

    def rate_grid():
        return [model.rate(attack) for attack in grid]

    ratings = benchmark(rate_grid)

    print("\nFig. 3 — attack potential factor weights:")
    print("  elapsed time :", [l.weight for l in ElapsedTime])
    print("  expertise    :", [l.weight for l in Expertise])
    print("  knowledge    :", [l.weight for l in Knowledge])
    print("  window       :", [l.weight for l in WindowOfOpportunity])
    print("  equipment    :", [l.weight for l in Equipment])
    from collections import Counter
    print("  rating distribution over the full grid:",
          {r.label(): c for r, c in Counter(ratings).items()})

    assert len(ratings) == 5 * 4 * 4 * 4 * 4
    # The owner profile of the paper's powertrain argument rates High.
    owner = AttackPotentialInput(
        elapsed_time=ElapsedTime.ONE_WEEK,
        expertise=Expertise.PROFICIENT,
        knowledge=Knowledge.PUBLIC,
        window=WindowOfOpportunity.UNLIMITED,
        equipment=Equipment.SPECIALIZED,
    )
    assert model.rate(owner).label() == "High"
