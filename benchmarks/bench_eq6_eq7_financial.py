"""E8/E9 — Eqs. 6-7: the DPF financial case study.

Runs the full Fig. 10 pipeline (sales -> PAE, report mining -> n,
price clustering -> PPIA) and checks the published EUR values:
MV = 1,406 x 360 = 506,160 EUR/yr and FC = 1,406 x 310 / 3 ≈ 145,286 EUR.
"""

import pytest


def test_eq6_eq7_dpf_financials(benchmark, excavator_framework):
    def run_pipeline():
        return excavator_framework.assess_financial("dpfdelete")

    assessment = benchmark(run_pipeline)

    print("\nEq. 6 / Eq. 7 — DPF tampering, Europe:")
    print(f"  PAE  = {assessment.pae:,} potential attackers")
    print(f"  PPIA = {assessment.ppia:,.0f} EUR")
    print(f"  VCU  = {assessment.vcu:,.0f} EUR")
    print(f"  n    = {assessment.competitors} competitors")
    print(f"  Eq.6: MV = {assessment.pae} x {assessment.ppia:.0f} "
          f"= {assessment.mv:,.0f} EUR/yr   (paper: ~506,160)")
    print(f"  Eq.7: FC = {assessment.pae} x {assessment.margin:.0f} / "
          f"{assessment.competitors} = {assessment.fc_required:,.2f} EUR "
          f"(paper: ~145,286)")
    print(f"  financial feasibility: {assessment.feasibility.label()}")

    assert assessment.pae == 1406
    assert assessment.ppia == pytest.approx(360.0)
    assert assessment.mv == pytest.approx(506160.0)
    assert assessment.competitors == 3
    assert assessment.fc_required == pytest.approx(145286.67, abs=0.01)
