"""A3 — ablation: SAI poisoning defence on/off (paper §IV future work).

Injects a duplicate-flood amplification campaign into the excavator
corpus and measures whether the SAI ranking flips, with and without the
post-authenticity filter.  Benchmarks the filtered SAI pass (filter cost
is the overhead being measured).
"""

import datetime as dt

from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.poisoning import FilteringClient, poison_corpus_with_flood
from repro.core.sai import SAIComputer
from repro.social import InMemoryClient, excavator_corpus
from repro.social.corpus import Corpus


def _poisoned_corpus():
    # Amplify the low-ranking hour-meter attack with a 2,500-post flood.
    base = list(excavator_corpus())
    return Corpus(
        poison_corpus_with_flood(
            base, keyword="hourmeterrollback", copies=2500, views=60000
        )
    )


def _database() -> KeywordDatabase:
    return KeywordDatabase(
        [
            AttackKeyword(keyword="dpfdelete", owner_approved=True),
            AttackKeyword(keyword="hourmeterrollback", owner_approved=True),
        ]
    )


def test_a3_poisoning_defence(benchmark):
    corpus = _poisoned_corpus()
    database = _database()

    unfiltered = SAIComputer(InMemoryClient(corpus)).compute(database)
    filtering_client = FilteringClient(InMemoryClient(corpus))
    computer = SAIComputer(filtering_client)

    filtered = benchmark(computer.compute, database)

    print("\nA3 — poisoning-defence ablation (hour-meter flood campaign):")
    print(f"  unfiltered ranking: {unfiltered.ranking()}")
    print(f"  filtered ranking  : {filtered.ranking()}")
    report = filtering_client.reports["hourmeterrollback"]
    print(f"  flood posts rejected: {len(report.rejected)} "
          f"({report.rejection_rate:.0%} of the keyword's posts)")

    # Without the filter the campaign flips the ranking; with it the
    # organic ranking survives.
    assert unfiltered.ranking()[0] == "hourmeterrollback"
    assert filtered.ranking()[0] == "dpfdelete"
    assert report.rejection_rate > 0.5
