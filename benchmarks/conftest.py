"""Shared fixtures for the benchmark harness.

Each bench regenerates one paper artifact (figure/table/equation); see
the per-experiment index in DESIGN.md.  Fixtures are session-scoped so
corpus generation cost is not attributed to the measured kernels.

The ``bench_report`` fixture is the pytest half of the JSON-emitting
harness: benches hand it a
:class:`~repro.analysis.benchjson.BenchResult` and it writes
``BENCH_<name>.json`` into ``$BENCH_JSON_DIR`` (default: the current
directory) — the same records ``benchmarks/run_benches.py`` emits
standalone.
"""

from __future__ import annotations

import os

import pytest

from repro import PSPFramework, TargetApplication
from repro.analysis.benchjson import BenchResult, write_bench_result
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.social import (
    InMemoryClient,
    ecm_reprogramming_corpus,
    ecm_reprogramming_specs,
    excavator_corpus,
    excavator_specs,
)
from repro.vehicle import reference_architecture


def _database_for(specs) -> KeywordDatabase:
    db = KeywordDatabase()
    for spec in specs:
        db.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    return db


@pytest.fixture(scope="session")
def ecm_client():
    return InMemoryClient(ecm_reprogramming_corpus())


@pytest.fixture(scope="session")
def excavator_client():
    return InMemoryClient(excavator_corpus())


@pytest.fixture(scope="session")
def ecm_framework(ecm_client):
    return PSPFramework(
        ecm_client,
        TargetApplication("car", "europe", "passenger"),
        database=_database_for(ecm_reprogramming_specs()),
    )


@pytest.fixture(scope="session")
def excavator_framework(excavator_client):
    return PSPFramework(
        excavator_client,
        TargetApplication("excavator", "europe", "industrial"),
        database=_database_for(excavator_specs()),
    )


@pytest.fixture(scope="session")
def fig4_network():
    return reference_architecture()


@pytest.fixture(scope="session")
def bench_report():
    """Record one bench's JSON result (returns the written path)."""
    out_dir = os.environ.get("BENCH_JSON_DIR", ".")

    def _record(result: BenchResult):
        return write_bench_result(result, out_dir)

    return _record
