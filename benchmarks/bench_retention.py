"""S10 — tiered retention (hot/warm/cold) vs the single-tier flat index.

The long-horizon always-on workload: a multi-year sharded stream
replayed twice through :class:`~repro.stream.sharding.
ShardedStreamRuntime`.  The single-tier PR-7 configuration keeps the
whole corpus in one flat columnar index whose compactions — and
interner pool, arena and postings — grow with stream age, so its
steady-state tick latency and resident footprint climb for the life of
the monitor.  The tiered engine (:mod:`repro.stream.tiers`) seals the
hot tail into date-bounded warm segments, decays warm segments past the
age horizon into immutable cold segments carrying precomputed
per-keyword aggregate sidecars, and prunes the interner pool to the
hot+warm working set — steady-state tick cost and RSS stay bounded by
the retention window, not the stream's age.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_retention.py -q

The workload profile comes from ``$S10_PROFILE`` (``full`` | ``smoke``,
default ``full``).  The full profile is the acceptance run: a 5-year
700k-post stream, a >= 5x steady-state tick-latency gate and a <= 0.5x
peak-RSS ratio against the flat phase.  The smoke profile is the CI
run: same kernels and equivalence checks on a 2-year stream, gated at
the proportionally lower floors its younger corpus can show (the flat
side's per-tick compaction cost grows with corpus age, so a short
stream understates the long-horizon gap).

Equivalence is twofold: both phases must raise identical alert
sequences and finish on the identical SAI table, and a tiered sharded
``replay_scenario`` audit must hold parity (plus checkpoint resume and
bounded memory) against the paper's batch monitor.

``test_s10_retention_latency_rss_and_equivalence`` writes
``BENCH_retention.json`` (see docs/BENCHMARKS.md for the schema).
"""

import os

from repro.analysis.benchjson import load_bench_result
from repro.analysis.benchkit import (
    S10_PROFILES,
    S10_RSS_RATIO_BUDGET,
    run_retention_bench,
)

PROFILE = os.environ.get("S10_PROFILE", "full")

#: Steady-state tick-latency gate per profile (flat mean over tiered
#: mean, final 20% of ticks).  ``full`` is the acceptance claim;
#: ``smoke`` gates the floor a 2-year stream can demonstrate.
GATES = {"full": 5.0, "smoke": 1.4}


def test_s10_retention_latency_rss_and_equivalence(bench_report):
    result = run_retention_bench(profile=PROFILE)
    path = bench_report(result)
    payload = load_bench_result(path)
    print("\nS10 summary: " + str(payload))

    assert result.equivalent, (
        "tiered phase diverged from the flat phase or the batch-monitor "
        "replay audit failed"
    )
    assert result.speedup >= GATES[PROFILE], payload
    extra = payload["extra"]
    assert extra["phase_alert_parity"], extra
    assert extra["replay_ok"], extra
    assert extra["rss_within_budget"], extra
    assert extra["rss_ratio_budget"] == S10_RSS_RATIO_BUDGET[PROFILE]
    assert extra["tiered_segments"]["layout"] == "tiered"
    assert extra["tiered_segments"]["cold_seals"] > 0
    assert "peak_rss_kb" in extra  # the writer's satellite-wide stamp
    dims = S10_PROFILES[PROFILE]
    expected_posts = dims["years"] * 365 * dims["posts_per_day"]
    assert payload["workload"]["posts"] == expected_posts
    assert payload["workload"]["profile"] == PROFILE
    assert payload["bench"] == "retention"
