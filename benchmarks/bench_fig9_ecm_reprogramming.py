"""E5 — Fig. 9: the three G.9 tables for ECM reprogramming.

(A) the original static table, (B) the PSP revision over the full post
history, (C) the PSP revision over posts since 2022.  Benchmarks the
two-window comparison; asserts the paper's physical→local trend
inversion between (B) and (C).
"""

from repro import TimeWindow
from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import standard_table


def _print_table(title, table):
    print(title)
    for vector, rating in table.items():
        print(f"  {vector.value:<9} -> {rating.label()}")


def test_fig9_ecm_reprogramming(benchmark, ecm_framework):
    full = TimeWindow.full_history()
    recent = TimeWindow.since_year(2022)

    def compare():
        return ecm_framework.compare_windows(full, recent)

    before, after, inversions = benchmark(compare)

    print()
    _print_table("Fig. 9-A — original G.9 table:", standard_table())
    _print_table("Fig. 9-B — PSP revision, full history:", before.insider_table)
    _print_table("Fig. 9-C — PSP revision, since 2022:", after.insider_table)
    for inversion in inversions:
        print(f"  inversion: {inversion.describe()}")

    table_b = before.insider_table
    table_c = after.insider_table
    # (B): physical reprogramming is the dominant insider attack.
    assert table_b.rating(AttackVector.PHYSICAL) is FeasibilityRating.HIGH
    assert table_b.rating(AttackVector.PHYSICAL) > table_b.rating(AttackVector.LOCAL)
    # (C): local via OBD has overtaken physical.
    assert table_c.rating(AttackVector.LOCAL) is FeasibilityRating.HIGH
    assert table_c.rating(AttackVector.LOCAL) > table_c.rating(AttackVector.PHYSICAL)
    assert any(
        inv.risen is AttackVector.LOCAL and inv.fallen is AttackVector.PHYSICAL
        for inv in inversions
    )
