"""E10 — §II claim: the static model under-rates powertrain insider threats.

Runs two complete TARAs over the Fig. 4 reference architecture (static
G.9 vs PSP-tuned insider table) and prints the disagreement summary;
benchmarks the full dual-run + diff.
"""

from repro.analysis import summarize_disagreements
from repro.tara import TaraEngine, compare_runs
from repro.vehicle.domains import VehicleDomain


def test_e10_static_vs_psp_tara(benchmark, fig4_network, ecm_framework):
    insider_table = ecm_framework.run(learn=False).insider_table

    def dual_tara():
        static = TaraEngine(fig4_network).run()
        tuned = TaraEngine(fig4_network, insider_table=insider_table).run()
        return static, compare_runs(fig4_network, static, tuned)

    static, disagreements = benchmark(dual_tara)
    summary = summarize_disagreements(len(static.records), disagreements)

    print("\nE10 — static vs PSP full-vehicle TARA:")
    print(f"  threat scenarios: {len(static.records)}")
    print(f"  rated differently: {len(disagreements)} "
          f"({summary.disagreement_rate:.0%})")
    for domain, count in sorted(
        summary.by_domain().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {domain.value:<14} {count}")
    print(f"  under-rated by the static model: {len(summary.underestimated())}")

    assert disagreements
    assert summary.dominant_domain() is VehicleDomain.POWERTRAIN
    assert all(d.underestimated for d in disagreements)
