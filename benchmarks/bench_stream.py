"""S7 — one streaming tick vs full rebuild + full pipeline re-run.

The continuous-operation workload: a corpus has been analysed, and a
micro-batch of new posts arrives.  The pre-stream reaction (the
monitor's grow-window behaviour) rebuilds the corpus and its inverted
index from scratch and re-runs the whole query→sai→split→tune pipeline
— O(corpus) per tick.  The streaming runtime
(:mod:`repro.stream.runtime`) appends the batch to the delta-segment
index, folds it into the running per-keyword aggregates and re-tunes
only when a dirty keyword is insider-classified — O(new posts).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_stream.py -q

``test_stream_tick_speedup_and_equivalence`` asserts a >= 10x speedup
on the incremental tick, post-for-post index equivalence with a
from-scratch rebuild, identical insider tables/SAI rows, and writes
``BENCH_stream.json`` (see docs/BENCHMARKS.md for the schema).
"""

import pytest

from repro.analysis.benchjson import load_bench_result
from repro.analysis.benchkit import (
    fleet_workload,
    rebuild_and_rerun_pass,
    run_stream_bench,
)
from repro.core.config import TargetApplication
from repro.core.timewindow import TimeWindow
from repro.stream.feed import SyntheticFeed
from repro.stream.runtime import StreamRuntime

TICK_POSTS = 150


@pytest.fixture(scope="module")
def workload():
    return fleet_workload(years=tuple(range(2012, 2024)))


def test_s7_naive_rebuild_rerun(benchmark, workload):
    posts = sorted(workload.corpus.posts, key=lambda p: (p.created_at, p.post_id))
    target = TargetApplication("fleet_member", "europe", "fleet")

    def run():
        return rebuild_and_rerun_pass(
            posts, workload.database, target, TimeWindow.full_history()
        )

    sai, table = benchmark(run)
    print(f"\nS7 — full rebuild + pipeline re-run: {len(posts)} posts, "
          f"{len(workload.database)} keywords")
    assert len(sai) == len(workload.database)


def test_s7_stream_tick(benchmark, workload):
    posts = sorted(workload.corpus.posts, key=lambda p: (p.created_at, p.post_id))
    target = TargetApplication("fleet_member", "europe", "fleet")
    head = len(posts) - TICK_POSTS

    feed = SyntheticFeed(posts)
    runtime = StreamRuntime(feed, workload.database, target=target)
    runtime.ingest(feed.events_after(-1, limit=head))
    tail_events = feed.events_after(runtime.cursor)

    # benchmark.pedantic: a tick consumes its events, so re-ingesting is
    # a duplicate-id error by design — run the timed kernel exactly once.
    tick = benchmark.pedantic(
        runtime.ingest, args=(tail_events,), iterations=1, rounds=1
    )
    print(f"\nS7 — streaming tick: +{tick.accepted} posts, "
          f"{len(tick.dirty)} dirty keywords, retuned={tick.retuned}")
    assert tick.accepted == TICK_POSTS


def test_stream_tick_speedup_and_equivalence(workload, bench_report):
    result = run_stream_bench(workload=workload, tick_posts=TICK_POSTS)
    path = bench_report(result)
    payload = load_bench_result(path)
    print("\nS7 summary: " + str(payload))

    assert result.equivalent, (
        "streamed index/table/SAI diverged from the full rebuild"
    )
    # The acceptance gate: an incremental tick must beat the full
    # rebuild + full pipeline re-run >= 10x (typical margin is ~15-25x).
    assert result.speedup >= 10.0, payload
    assert payload["bench"] == "stream"
    assert payload["extra"]["retuned"] is True
