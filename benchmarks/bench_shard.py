"""S8 — sharded merged ticks vs per-feed single-runtime ticks.

The platform-scale workload: N region/platform-sharded feeds each
deliver a micro-batch per arrival round on top of an already-analysed
history.  Before sharding, the only way to consume them was one
:class:`~repro.stream.runtime.StreamRuntime` ticking once *per shard
batch* — every arrival pays its own per-post keyword probing plus a full
conditional retune (and a TARA rescore whenever the table shifts).  The
:class:`~repro.stream.sharding.ShardedStreamRuntime` ingests the same
batches as **one merged tick per round**: per-shard arena-sweep
:class:`~repro.stream.deltas.SignalDelta` jobs (dispatched through the
pluggable executor — parallel across shards on multi-core hosts, serial
on this box when it has one CPU), a pure-sum merge, and a single shared
evaluation per round regardless of shard count.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_shard.py -q

``test_shard_speedup_and_equivalence`` asserts the >= 2.5x gate at
4 shards, alert/table/TARA/SAI parity with the equivalent single-feed
run at matching evaluation points, and writes ``BENCH_shard.json``
(schema in docs/BENCHMARKS.md).  The committed record's
``extra.scaling_fixed_shard_volume`` documents how the merged-tick cost
grows as shards are added at fixed per-shard volume.
"""

import pytest

from repro.analysis.benchjson import load_bench_result
from repro.analysis.benchkit import fleet_workload, run_shard_bench


@pytest.fixture(scope="module")
def workload():
    return fleet_workload(years=tuple(range(2012, 2024)))


@pytest.fixture(scope="module")
def shard_result(workload):
    return run_shard_bench(workload=workload)


def test_shard_speedup_and_equivalence(shard_result, bench_report):
    result = shard_result
    path = bench_report(result)
    payload = load_bench_result(path)
    print("\nS8 summary: " + str(payload))

    assert result.equivalent, (
        "sharded merged run diverged from the single-feed run "
        "(alerts/table/TARA/SAI)"
    )
    # The acceptance gate: 4 shards' arrival rounds through the merged
    # sharded tick must beat the sequential per-batch single-runtime
    # path >= 2.5x (typical margin on one CPU is ~3-4.5x; multi-core
    # hosts add executor parallelism on top).
    assert result.speedup >= 2.5, payload
    assert payload["bench"] == "shard"
    assert payload["extra"]["engine_evaluations"] < (
        payload["extra"]["naive_evaluations"]
    )


def test_shard_scaling_recorded(shard_result):
    curve = shard_result.extra["scaling_fixed_shard_volume"]
    assert set(curve) == {"1", "2", "4", "8"}
    # Fixed per-shard volume: 8 shards carry 8x the posts of 1 shard;
    # the merged tick must grow clearly sub-linearly even without
    # multi-core parallelism (one shared evaluation, sweep-dominated
    # shard jobs).
    assert curve["8"] < 8 * max(curve["1"], 1e-4)
