"""S1 — scaling: SAI computation vs corpus size.

Generates synthetic corpora of growing size and benchmarks the full SAI
computation (search + engagement aggregation + sentiment + normalisation)
at each size.  The kernel should scale roughly linearly in post count.
"""

import pytest

from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.sai import SAIComputer
from repro.iso21434.enums import AttackVector
from repro.social import InMemoryClient
from repro.social.synthetic import AttackTopicSpec, generate_corpus

SIZES = (200, 1000, 5000)


def _corpus_of(total_posts: int):
    per_topic = total_posts // 4
    specs = [
        AttackTopicSpec(
            keyword=f"topic{i}",
            vector=list(AttackVector)[i % 4],
            owner_approved=True,
            yearly_volume={2022: per_topic},
        )
        for i in range(4)
    ]
    return generate_corpus(specs), specs


@pytest.mark.parametrize("size", SIZES)
def test_s1_sai_scaling(benchmark, size):
    corpus, specs = _corpus_of(size)
    client = InMemoryClient(corpus)
    db = KeywordDatabase(
        [
            AttackKeyword(keyword=s.keyword, vector=s.vector, owner_approved=True)
            for s in specs
        ]
    )
    computer = SAIComputer(client)

    sai = benchmark(computer.compute, db)

    total_posts = sum(e.post_count for e in sai)
    print(f"\nS1 — corpus size {size}: {total_posts} posts scored, "
          f"{len(sai)} SAI entries")
    assert total_posts == (size // 4) * 4
