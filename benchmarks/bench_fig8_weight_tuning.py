"""E4 — Fig. 8: outsider weights unchanged, insider weights PSP-tuned.

Runs the full Fig. 7 pipeline on the ECM corpus and benchmarks the
classification + tuning stage.  Prints both tables side by side as the
paper's Fig. 8-A/B does.
"""

from repro.core.classification import InsiderOutsiderClassifier
from repro.core.weights import WeightTuner
from repro.iso21434.enums import AttackVector
from repro.iso21434.feasibility.attack_vector import standard_table


def test_fig8_weight_tuning(benchmark, ecm_framework, ecm_client):
    sai = ecm_framework.compute_sai()
    classifier = InsiderOutsiderClassifier(ecm_client)
    tuner = WeightTuner()

    def classify_and_tune():
        split = classifier.split(sai)
        return tuner.tune(split, window_label="full history")

    outcome = benchmark(classify_and_tune)

    print("\nFig. 8-A — outsider threats (standard weights):")
    for vector, rating in outcome.outsider_table.items():
        print(f"  {vector.value:<9} -> {rating.label()}")
    print("Fig. 8-B — insider threats (PSP-tuned weights):")
    for vector, rating in outcome.insider_table.items():
        print(f"  {vector.value:<9} -> {rating.label()}")

    assert outcome.outsider_table.ratings == standard_table().ratings
    # physical raised above the standard's Very Low; priority reordered.
    assert outcome.insider_table.rating(AttackVector.PHYSICAL) > (
        standard_table().rating(AttackVector.PHYSICAL)
    )
    assert outcome.insider_table.rating(AttackVector.NETWORK) < (
        standard_table().rating(AttackVector.NETWORK)
    )
