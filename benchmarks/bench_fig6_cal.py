"""E3 — Fig. 6: CAL determination matrix.

Regenerates the impact x attack-vector CAL table and checks the
structural property the paper critiques: the physical column never
exceeds CAL2.
"""

from repro.iso21434.cal import determine_cal, physical_ceiling
from repro.iso21434.enums import CAL, AttackVector, ImpactRating


def test_fig6_cal_matrix(benchmark):
    pairs = [
        (impact, vector)
        for impact in ImpactRating
        for vector in AttackVector
    ] * 1000

    def determine_all():
        return [determine_cal(i, v) for i, v in pairs]

    cals = benchmark(determine_all)

    print("\nFig. 6 — CAL determination (impact x attack vector):")
    header = "  {:<12}".format("impact") + "".join(
        f"{v.value:>10}" for v in (
            AttackVector.PHYSICAL, AttackVector.LOCAL,
            AttackVector.ADJACENT, AttackVector.NETWORK,
        )
    )
    print(header)
    for impact in (ImpactRating.SEVERE, ImpactRating.MAJOR,
                   ImpactRating.MODERATE, ImpactRating.NEGLIGIBLE):
        row = "  {:<12}".format(impact.label())
        for vector in (AttackVector.PHYSICAL, AttackVector.LOCAL,
                       AttackVector.ADJACENT, AttackVector.NETWORK):
            row += f"{determine_cal(impact, vector).label():>10}"
        print(row)
    print(f"  physical-vector ceiling: {physical_ceiling().label()}")

    assert len(cals) == len(pairs)
    assert physical_ceiling() is CAL.CAL2
    assert determine_cal(ImpactRating.SEVERE, AttackVector.NETWORK) is CAL.CAL4
