"""S3 — scaling: complete TARA runs vs architecture size.

Benchmarks the full pipeline (asset enumeration → STRIDE threats →
path analysis → risk/CAL/treatment) on synthetic architectures of
growing size.
"""

import pytest

from repro.tara import TaraEngine
from repro.vehicle.architecture import scaled_architecture

SHAPES = ((2, 4), (4, 6), (6, 8))


@pytest.mark.parametrize("domains,ecus", SHAPES)
def test_s3_tara_scaling(benchmark, domains, ecus):
    network = scaled_architecture(domains=domains, ecus_per_domain=ecus)
    engine = TaraEngine(network)

    data = benchmark(engine.run)

    print(f"\nS3 — TARA over {domains}x{ecus} architecture: "
          f"{len(network.ecus)} ECUs, {len(data.records)} threat scenarios")
    # 4 assets per ECU, threats per asset depend on protected properties;
    # every record is fully assessed.
    assert len(data.records) >= 4 * len(network.ecus)
    assert all(1 <= r.risk_value <= 5 for r in data.records)
