"""A2 — ablation: keyword auto-learning on/off.

Measures how many attack topics the framework covers starting from the
paper's six-hashtag manual seed, with and without the co-occurrence
learning loop (paper Fig. 7, block 5).
"""

from repro.analysis.sweep import learning_coverage
from repro.core.keywords import paper_seed_database


def test_a2_keyword_learning_coverage(benchmark, excavator_client):
    texts = [p.text for p in excavator_client.corpus]

    def run_coverage():
        return learning_coverage(
            excavator_client, paper_seed_database, texts
        )

    coverage = benchmark(run_coverage)

    print("\nA2 — keyword auto-learning ablation:")
    print(f"  manual seed only  : {coverage['without_learning']} keywords")
    print(f"  with learning loop: {coverage['with_learning']} keywords")
    print(f"  auto-learned      : {coverage['learned']} keywords")

    assert coverage["without_learning"] == 6
    assert coverage["learned"] > 0
    assert coverage["with_learning"] > coverage["without_learning"]
