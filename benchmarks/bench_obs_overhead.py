"""S11 — telemetry overhead: instrumented ticks vs the NullRegistry path.

The unified telemetry layer (:mod:`repro.obs`) promises "free when off,
cheap when on": every streaming hot path defaults to the no-op
:class:`~repro.obs.registry.NullRegistry`, and enabling a full
:class:`~repro.obs.registry.MetricsRegistry` — counters, gauges,
histograms *and* per-stage span tracing on every tick — must cost at
most :data:`~repro.analysis.benchkit.OBS_OVERHEAD_BUDGET_PCT` percent
of tick latency.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -q

``test_obs_overhead_gate`` drives the identical fleet-scale feed
through identical runtimes with and without a live registry
(interleaved rounds, min-of-rounds per side), asserts the instrumented
run stays within the overhead budget, that both runs produce identical
tables/SAI/stats (the instrumentation is purely observational), that
the registry's counters agree with the legacy ``stream_stats`` dict,
and writes ``BENCH_obs_overhead.json``.
"""

from repro.analysis.benchjson import load_bench_result
from repro.analysis.benchkit import (
    OBS_OVERHEAD_BUDGET_PCT,
    run_obs_overhead_bench,
)
from repro.obs.export import lint_prometheus, prometheus_text
from repro.obs.registry import MetricsRegistry


def test_obs_overhead_gate(bench_report):
    result = run_obs_overhead_bench()
    path = bench_report(result)
    payload = load_bench_result(path)
    print("\nS11 summary: " + str(payload))

    assert result.equivalent, (
        "instrumented run diverged from the NullRegistry run — the "
        "telemetry layer must be purely observational"
    )
    extra = payload["extra"]
    assert extra["registry_matches_legacy_stats"] is True
    # The acceptance gate: full instrumentation costs <= 3% tick latency.
    assert extra["overhead_pct"] <= OBS_OVERHEAD_BUDGET_PCT, payload
    assert extra["within_budget"] is True, payload
    # The embedded snapshot restores into a registry whose Prometheus
    # exposition parses cleanly — the artifact CI uploads is well-formed.
    restored = MetricsRegistry()
    restored.restore(extra["metrics"])
    problems = lint_prometheus(prometheus_text(restored))
    assert problems == [], problems
