"""E6 — Fig. 11: the break-even diagram.

Regenerates the revenue/cost curves, locates the crossover (BEP) and
checks the profitable/loss zone split; benchmarks curve generation.
"""

import pytest

from repro.core.financial import BreakEvenAnalysis


def test_fig11_break_even_diagram(benchmark):
    # The paper's DPF case: FC from Eq. 7, PPIA 360, VCU 50, n = 3.
    analysis = BreakEvenAnalysis(fc=145286.67, ppia=360.0, vcu=50.0, n=3)

    def build_curves():
        return analysis.curve(max_units=2 * analysis.break_even, points=200)

    curve = benchmark(build_curves)

    bep = analysis.break_even
    print("\nFig. 11 — break-even geometry (DPF delete case):")
    print(f"  break-even point: {bep:,.0f} units")
    for units, revenue, cost in curve[:: len(curve) // 8]:
        zone = "profitable" if revenue > cost else "loss"
        print(f"  units={units:8.0f}  revenue={revenue:12.0f}  "
              f"cost={cost:12.0f}  {zone}")

    assert bep == pytest.approx(1406.0, rel=1e-4)
    # Below the BEP: loss zone; above: profitable (blue) zone.
    assert not analysis.is_profitable(0.9 * bep)
    assert analysis.is_profitable(1.1 * bep)
    # revenue and cost curves cross exactly once (linear, distinct slopes)
    signs = [revenue - cost > 0 for _, revenue, cost in curve]
    assert signs.count(True) > 0 and signs.count(False) > 0
    crossings = sum(1 for a, b in zip(signs, signs[1:]) if a != b)
    assert crossings == 1
