"""S5 — the indexed corpus engine vs the pre-index matching loop.

The innermost hot path of the whole reproduction: matching every attack
keyword of the database against every post of every analysis window.
The pre-index path (seed ``Corpus.matching``) re-normalizes, re-stems
and re-joins each post's text for every ``(keyword, post)`` pair; the
indexed engine precomputes one :class:`~repro.nlp.analysis.PostAnalysis`
per post, confirms hashtag/token/stem hits straight from inverted
posting lists (date-sorted, window-sliced by bisection) and resolves the
free-text residue for *all* keywords in a single sweep of precomputed
haystacks.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_indexed_corpus.py -q

``test_s5_speedup_and_equivalence`` asserts post-for-post identical
results to the naive scan, a >= 5x speedup on the 56-keyword x 5-window
acceptance workload, and writes ``BENCH_indexed_corpus.json`` (see
docs/BENCHMARKS.md for the schema).
"""

import pytest

from repro.analysis.benchjson import load_bench_result
from repro.analysis.benchkit import (
    fleet_workload,
    indexed_matching_pass,
    naive_matching_pass,
    run_indexed_corpus_bench,
)


@pytest.fixture(scope="module")
def workload():
    return fleet_workload()


def test_s5_naive_matching_loop(benchmark, workload):
    results = benchmark(
        naive_matching_pass, workload.corpus, workload.keywords, workload.windows
    )
    print(f"\nS5 — pre-index matching loop: {len(workload.database)} keywords x "
          f"{len(workload.windows)} windows, {len(workload.corpus)} posts")
    assert len(results) == len(workload.windows)


def test_s5_indexed_engine(benchmark, workload):
    results = benchmark(
        indexed_matching_pass,
        workload.corpus,
        workload.keywords,
        workload.windows,
    )
    print(f"\nS5 — indexed engine: {len(workload.database)} keywords x "
          f"{len(workload.windows)} windows, {len(workload.corpus)} posts")
    assert len(results) == len(workload.windows)


def test_s5_speedup_and_equivalence(workload, bench_report):
    result = run_indexed_corpus_bench(workload)
    path = bench_report(result)
    payload = load_bench_result(path)
    print("\nS5 summary: " + str(payload))

    assert result.equivalent, "indexed engine diverged from the naive scan"
    # The acceptance gate: one-pass indexed matching must beat the
    # pre-index Corpus.matching loop >= 5x on the fleet-scale workload
    # (typical margin is ~20-30x).
    assert result.speedup >= 5.0, payload
    assert payload["bench"] == "indexed_corpus"
