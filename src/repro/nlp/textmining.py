"""Text mining: extract structured facts from unstructured text.

Two extractors back the PSP financial model (paper §III):

* :func:`extract_prices` pulls monetary amounts from listing/post text —
  the raw material for PPIA clustering.
* :func:`extract_counts` pulls labelled integer quantities from
  cybersecurity-report prose ("1,406 potential attackers were identified",
  "3 competing sellers") — the raw material for PAE and competitor count.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.nlp.tokenizer import prices as raw_price_tokens

_AMOUNT_RE = re.compile(r"\d[\d,]*(?:\.\d+)?")

#: Currency symbols/codes and their ISO code.
_CURRENCIES = (
    ("€", "EUR"), ("$", "USD"), ("£", "GBP"),
    ("EUR", "EUR"), ("USD", "USD"), ("GBP", "GBP"),
    ("eur", "EUR"), ("usd", "USD"), ("gbp", "GBP"),
)


@dataclass(frozen=True)
class PriceObservation:
    """One monetary amount extracted from text."""

    amount: float
    currency: str

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValueError("amount must be non-negative")
        if len(self.currency) != 3:
            raise ValueError(f"currency must be a 3-letter code, got {self.currency!r}")


def _parse_price_token(token: str) -> Optional[PriceObservation]:
    match = _AMOUNT_RE.search(token)
    if match is None:
        return None
    amount = float(match.group().replace(",", ""))
    currency = "EUR"
    for marker, code in _CURRENCIES:
        if marker in token:
            currency = code
            break
    return PriceObservation(amount=amount, currency=currency)


def extract_prices(text: str) -> List[PriceObservation]:
    """Extract every monetary amount from ``text``.

    Recognises symbol-prefixed ("€360"), symbol-suffixed ("360€") and
    code-annotated ("360 EUR") forms.
    """
    observations = []
    for token in raw_price_tokens(text):
        parsed = _parse_price_token(token)
        if parsed is not None:
            observations.append(parsed)
    return observations


def extract_prices_many(
    texts: Sequence[str], *, currency: Optional[str] = None
) -> List[float]:
    """Extract price amounts from many texts, optionally currency-filtered."""
    amounts = []
    for text in texts:
        for obs in extract_prices(text):
            if currency is None or obs.currency == currency:
                amounts.append(obs.amount)
    return amounts


@dataclass(frozen=True)
class CountObservation:
    """A labelled integer quantity extracted from report prose."""

    value: int
    label: str

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("count must be non-negative")


#: number followed, within a few words, by a label phrase.
_COUNT_RE = re.compile(
    r"(?P<value>\d[\d,]*)\s+(?:(?:\w+)\s+){0,3}?(?P<label>"
    r"potential attackers|attackers|competitors|competing sellers|incidents|"
    r"vehicles sold|units sold|vehicles|devices|sellers|reports)",
    re.IGNORECASE,
)


def extract_counts(text: str) -> List[CountObservation]:
    """Extract labelled counts such as "1,406 potential attackers".

    The label vocabulary covers the quantities the PSP financial model
    reads from cybersecurity annual reports: attacker counts, competitor
    counts, incident counts and sales figures.
    """
    observations = []
    for match in _COUNT_RE.finditer(text):
        value = int(match.group("value").replace(",", ""))
        label = " ".join(match.group("label").lower().split())
        observations.append(CountObservation(value=value, label=label))
    return observations


def find_count(
    texts: Sequence[str], label: str
) -> Optional[int]:
    """Find the first count whose label contains ``label`` (lower-cased).

    Returns None when no text mentions the quantity.
    """
    needle = label.lower()
    for text in texts:
        for obs in extract_counts(text):
            if needle in obs.label:
                return obs.value
    return None


def sum_counts(texts: Sequence[str], label: str) -> int:
    """Sum every count whose label contains ``label`` over all texts."""
    needle = label.lower()
    total = 0
    for text in texts:
        for obs in extract_counts(text):
            if needle in obs.label:
                total += obs.value
    return total
