"""Precomputed per-post text analysis shared across the PSP hot paths.

Keyword matching, SAI sentiment scoring and keyword auto-learning all
start from the same derived views of a post's text: the normalized form,
the space-squashed form the folded matcher searches, the stemmed token
stream, the canonical hashtag set and the typed token list.  The seed
implementation recomputed each view at every consumer — once per
``(keyword, post)`` pair in the worst case.  This module computes them
exactly once per distinct text and hands every consumer the same
:class:`PostAnalysis` sidecar:

* :class:`~repro.social.index.CorpusIndex` matches keywords against the
  precomputed :attr:`~PostAnalysis.haystack`,
* :class:`~repro.core.sai.SAIComputer` scores sentiment from
  :attr:`~PostAnalysis.tokens` (the result memoized per analyzer
  fingerprint, so a post is scored once per corpus lifetime),
* keyword learning and :attr:`~repro.social.post.Post.hashtags` read the
  canonical :attr:`~PostAnalysis.hashtags`.

Analyses are keyed by the text itself (every derived view is a pure
function of the text), so identical posts across sub-corpora, region
views and cache layers share one analysis object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, Hashable, Optional, Tuple

from repro.nlp.normalize import canonical_keyword, normalize_text, stem
from repro.nlp.tokenizer import Token, TokenType, tokenize

#: Separator between the squashed and stemmed halves of the match
#: haystack.  Canonical keywords are alphanumeric-only, so no keyword can
#: straddle it.
_HAYSTACK_SEPARATOR = "\n"


@dataclass(frozen=True)
class PostAnalysis:
    """Every derived view of one post text, behind one object.

    Only the views the hot paths probe *repeatedly* are stored —
    matching reads :attr:`haystack` per keyword, keyword learning reads
    :attr:`hashtags` — plus the per-analyzer sentiment memo.  The
    remaining views (the token stream, the word set, the
    normalized/stemmed intermediates) are recomputed on access: each
    has consumers that read it once per analysis (sentiment scoring
    memoizes its result; voice voting and index builds ingest a post
    once), while *retaining* them would dominate resident memory on
    long-horizon streams, where one analysis per warm text stays alive
    for days of stream time.  Every view is a pure function of
    ``text``, so lazy and stored views are interchangeable by value.

    Attributes:
        text: the original post text.
        haystack: the space-squashed normalized text and the
            concatenated stems joined by a non-keyword separator, so
            one substring probe answers the whole folded-match
            question (catching inflected variants, "deleting" →
            "delet").
        hashtags: canonical hashtags in order of appearance, duplicates
            preserved (they signal emphasis and count for frequency).
        hashtag_set: the distinct canonical hashtags.
    """

    text: str
    haystack: str
    hashtags: Tuple[str, ...]
    hashtag_set: FrozenSet[str]
    #: Per-analyzer-fingerprint sentiment memo; a mutable cache, not part
    #: of the analysis value (excluded from equality and hashing).
    _sentiment: Dict[Hashable, object] = field(
        default_factory=dict, compare=False, repr=False
    )

    @property
    def normalized(self) -> str:
        """Lower-cased, separator-folded text, word boundaries kept."""
        return normalize_text(self.text)

    @property
    def squashed(self) -> str:
        """``normalized`` with the spaces removed — the folded-match
        haystack's first half."""
        return self.normalized.replace(" ", "")

    @property
    def words(self) -> Tuple[str, ...]:
        """The normalized words, in order."""
        return tuple(self.normalized.split())

    @property
    def word_set(self) -> FrozenSet[str]:
        """The distinct normalized words (voice voting, token index)."""
        return frozenset(self.normalized.split())

    @property
    def stems(self) -> Tuple[str, ...]:
        """The stemmed words, in order."""
        return tuple(stem(word) for word in self.words)

    @property
    def stemmed_joined(self) -> str:
        """The stems concatenated — the haystack's second half."""
        return "".join(self.stems)

    @property
    def tokens(self) -> "Tuple[Token, ...]":
        """The typed token stream (sentiment scoring, price mining)."""
        return tuple(tokenize(self.text))

    def matches_keyword(self, canonical: str) -> bool:
        """Whether the canonical keyword occurs under folded matching.

        Equivalent to :func:`~repro.nlp.normalize.keyword_in_text` on the
        original text, but answered with one substring probe over the
        precomputed haystack instead of re-normalizing and re-stemming.
        """
        return bool(canonical) and canonical in self.haystack

    def cached_sentiment(self, fingerprint: Hashable) -> Optional[object]:
        """The memoized sentiment result for one analyzer fingerprint."""
        return self._sentiment.get(fingerprint)

    def remember_sentiment(self, fingerprint: Hashable, result: object) -> None:
        """Memoize a sentiment result under the analyzer's fingerprint."""
        self._sentiment[fingerprint] = result


@lru_cache(maxsize=32768)
def analyze_text(text: str) -> PostAnalysis:
    """The :class:`PostAnalysis` of ``text``, computed at most once.

    The cache is keyed by the text itself: analyses are pure, so posts
    sharing a text — across corpora, region views and cached query
    layers — share one analysis object (and its sentiment memo).
    """
    normalized = normalize_text(text)
    squashed = normalized.replace(" ", "")
    stemmed_joined = "".join(stem(word) for word in normalized.split())
    hashtags = tuple(
        canonical_keyword(token.text)
        for token in tokenize(text)
        if token.type is TokenType.HASHTAG
    )
    return PostAnalysis(
        text=text,
        haystack=squashed + _HAYSTACK_SEPARATOR + stemmed_joined,
        hashtags=hashtags,
        hashtag_set=frozenset(hashtags),
    )
