"""Precomputed per-post text analysis shared across the PSP hot paths.

Keyword matching, SAI sentiment scoring and keyword auto-learning all
start from the same derived views of a post's text: the normalized form,
the space-squashed form the folded matcher searches, the stemmed token
stream, the canonical hashtag set and the typed token list.  The seed
implementation recomputed each view at every consumer — once per
``(keyword, post)`` pair in the worst case.  This module computes them
exactly once per distinct text and hands every consumer the same
:class:`PostAnalysis` sidecar:

* :class:`~repro.social.index.CorpusIndex` matches keywords against the
  precomputed :attr:`~PostAnalysis.haystack`,
* :class:`~repro.core.sai.SAIComputer` scores sentiment from the
  precomputed :attr:`~PostAnalysis.tokens` (memoized per analyzer
  fingerprint, so a post is scored once per corpus lifetime),
* keyword learning and :attr:`~repro.social.post.Post.hashtags` read the
  canonical :attr:`~PostAnalysis.hashtags`.

Analyses are keyed by the text itself (every derived view is a pure
function of the text), so identical posts across sub-corpora, region
views and cache layers share one analysis object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, Hashable, Optional, Tuple

from repro.nlp.normalize import canonical_keyword, normalize_text, stem
from repro.nlp.tokenizer import Token, TokenType, tokenize

#: Separator between the squashed and stemmed halves of the match
#: haystack.  Canonical keywords are alphanumeric-only, so no keyword can
#: straddle it.
_HAYSTACK_SEPARATOR = "\n"


@dataclass(frozen=True)
class PostAnalysis:
    """Every derived view of one post text, computed once.

    Attributes:
        text: the original post text.
        normalized: lower-cased, separator-folded text with word
            boundaries preserved (:func:`~repro.nlp.normalize.normalize_text`).
        squashed: ``normalized`` with the spaces removed — the string the
            folded free-text matcher searches for canonical keywords.
        words: the normalized words, in order.
        word_set: the distinct normalized words (voice-marker voting,
            token index).
        stems: the stemmed words, in order.
        stemmed_joined: the stems concatenated — the second matcher
            haystack, catching inflected variants ("deleting" → "delet").
        haystack: ``squashed`` and ``stemmed_joined`` joined by a
            non-keyword separator, so one substring probe answers the
            whole folded-match question.
        hashtags: canonical hashtags in order of appearance, duplicates
            preserved (they signal emphasis and count for frequency).
        hashtag_set: the distinct canonical hashtags.
        tokens: the typed token stream (sentiment scoring, price mining).
    """

    text: str
    normalized: str
    squashed: str
    words: Tuple[str, ...]
    word_set: FrozenSet[str]
    stems: Tuple[str, ...]
    stemmed_joined: str
    haystack: str
    hashtags: Tuple[str, ...]
    hashtag_set: FrozenSet[str]
    tokens: Tuple[Token, ...]
    #: Per-analyzer-fingerprint sentiment memo; a mutable cache, not part
    #: of the analysis value (excluded from equality and hashing).
    _sentiment: Dict[Hashable, object] = field(
        default_factory=dict, compare=False, repr=False
    )

    def matches_keyword(self, canonical: str) -> bool:
        """Whether the canonical keyword occurs under folded matching.

        Equivalent to :func:`~repro.nlp.normalize.keyword_in_text` on the
        original text, but answered with one substring probe over the
        precomputed haystack instead of re-normalizing and re-stemming.
        """
        return bool(canonical) and canonical in self.haystack

    def cached_sentiment(self, fingerprint: Hashable) -> Optional[object]:
        """The memoized sentiment result for one analyzer fingerprint."""
        return self._sentiment.get(fingerprint)

    def remember_sentiment(self, fingerprint: Hashable, result: object) -> None:
        """Memoize a sentiment result under the analyzer's fingerprint."""
        self._sentiment[fingerprint] = result


@lru_cache(maxsize=32768)
def analyze_text(text: str) -> PostAnalysis:
    """The :class:`PostAnalysis` of ``text``, computed at most once.

    The cache is keyed by the text itself: analyses are pure, so posts
    sharing a text — across corpora, region views and cached query
    layers — share one analysis object (and its sentiment memo).
    """
    normalized = normalize_text(text)
    words = tuple(normalized.split())
    squashed = normalized.replace(" ", "")
    stems = tuple(stem(word) for word in words)
    stemmed_joined = "".join(stems)
    tokens = tuple(tokenize(text))
    hashtags = tuple(
        canonical_keyword(token.text)
        for token in tokens
        if token.type is TokenType.HASHTAG
    )
    return PostAnalysis(
        text=text,
        normalized=normalized,
        squashed=squashed,
        words=words,
        word_set=frozenset(words),
        stems=stems,
        stemmed_joined=stemmed_joined,
        haystack=squashed + _HAYSTACK_SEPARATOR + stemmed_joined,
        hashtags=hashtags,
        hashtag_set=frozenset(hashtags),
        tokens=tokens,
    )
