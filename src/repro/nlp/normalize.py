"""Text normalization for matching attack keywords against posts.

Social-media attack keywords appear in many surface forms: ``#dpfdelete``,
``DPF delete``, ``dpf-delete``, ``dpf_delete``.  PSP's keyword database
stores one canonical form and this module folds every surface form onto
it: lower-case, strip the hashtag sigil, collapse separators, and apply a
light suffix stemmer for plural/gerund variants ("deletes", "deleting" →
"delete").
"""

from __future__ import annotations

import functools
import re
from typing import Iterable, List

_SEPARATORS = re.compile(r"[\s\-_/.]+")
_NON_ALNUM = re.compile(r"[^a-z0-9 ]+")


@functools.lru_cache(maxsize=8192)
def canonical_keyword(raw: str) -> str:
    """Fold a keyword or hashtag onto its canonical form.

    ``"#DPF_Delete"`` → ``"dpfdelete"``; ``"egr removal"`` → ``"egrremoval"``.
    The canonical form is the lower-cased concatenation with separators
    removed, which makes hashtag and free-text forms collide as intended.
    """
    lowered = raw.strip().lower().lstrip("#@")
    collapsed = _SEPARATORS.sub("", lowered)
    return _NON_ALNUM.sub("", collapsed.replace(" ", ""))


def normalize_text(text: str) -> str:
    """Normalize free post text for matching: lower-case, fold separators.

    Unlike :func:`canonical_keyword`, word boundaries are preserved as
    single spaces so that multi-word phrase matching still works.
    """
    lowered = text.strip().lower()
    spaced = _SEPARATORS.sub(" ", lowered)
    return _NON_ALNUM.sub("", spaced).strip()


_SUFFIXES = ("ing", "ers", "ies", "ed", "er", "es", "s")


@functools.lru_cache(maxsize=65536)
def stem(word: str) -> str:
    """Light suffix stemmer for keyword variants.

    Handles the inflections observed in tuning-scene posts ("deleting",
    "deletes", "tuners") without the complexity of a full Porter stemmer.
    Words of four characters or fewer are returned untouched.

    Both :func:`stem` and :func:`canonical_keyword` are pure and called
    millions of times over a small distinct-input set (post vocabulary,
    keyword database), so they are memoized with
    :func:`functools.lru_cache`; the bounds cap memory on adversarial
    vocabularies while keeping real workloads entirely cached.
    """
    lowered = word.lower()
    if len(lowered) <= 4:
        return lowered
    for suffix in _SUFFIXES:
        if lowered.endswith(suffix) and len(lowered) - len(suffix) >= 3:
            stemmed = lowered[: -len(suffix)]
            if suffix == "ies":
                return stemmed + "y"
            return stemmed
    # Final-e stripping makes "delete" collide with "deleting"/"deletes".
    if lowered.endswith("e") and len(lowered) - 1 >= 4:
        return lowered[:-1]
    return lowered


def stem_all(tokens: Iterable[str]) -> List[str]:
    """Stem every token in ``tokens`` (order preserved)."""
    return [stem(t) for t in tokens]


def keyword_in_text(keyword: str, text: str) -> bool:
    """Whether ``keyword`` occurs in ``text`` under canonical folding.

    Matches both hashtag-style occurrences (``#dpfdelete``) and free-text
    phrase occurrences ("my dpf delete kit") by comparing canonical forms
    over a sliding window of words.
    """
    target = canonical_keyword(keyword)
    if not target:
        return False
    normalized = normalize_text(text)
    if target in normalized.replace(" ", ""):
        return True
    word_list = normalized.split()
    stemmed = stem_all(word_list)
    joined = "".join(stemmed)
    return target in joined
