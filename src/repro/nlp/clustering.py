"""One-dimensional k-means clustering for price estimation.

The PSP financial model estimates PPIA — "the maximum purchase price a
vehicle owner would be willing to pay for an insider attack" — by
clustering adversary device/service prices found online (paper §III,
Fig. 10 block 2).  Online listings mix retail defeat devices, professional
installation services and outliers (scams, unrelated products); clustering
separates those price regimes so the dominant cluster's centre can be
reported as the representative price.

The implementation is deterministic: initial centroids are placed by
quantile, and Lloyd iterations run to convergence or ``max_iter``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PriceCluster:
    """One price regime discovered by clustering."""

    center: float
    members: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a cluster must have >= 1 member")
        object.__setattr__(self, "members", tuple(sorted(self.members)))

    @property
    def size(self) -> int:
        """Number of price observations in this cluster."""
        return len(self.members)

    @property
    def spread(self) -> float:
        """Max - min price within the cluster."""
        return self.members[-1] - self.members[0]


def _quantile_seeds(values: Sequence[float], k: int) -> List[float]:
    """Deterministic initial centroids at the k evenly spaced quantiles."""
    ordered = sorted(values)
    n = len(ordered)
    seeds = []
    for i in range(k):
        # midpoints of k equal probability bands
        q = (2 * i + 1) / (2 * k)
        seeds.append(ordered[min(n - 1, int(q * n))])
    return seeds


def kmeans_1d(
    values: Sequence[float], k: int, *, max_iter: int = 100
) -> List[PriceCluster]:
    """Cluster 1-D ``values`` into ``k`` groups with deterministic k-means.

    Args:
        values: price observations; must contain at least ``k`` items.
        k: number of clusters (>= 1).
        max_iter: Lloyd iteration cap.

    Returns:
        Clusters sorted by ascending centre.  Empty clusters cannot occur:
        if an iteration would empty a cluster, its centroid is re-seeded to
        the point farthest from its assigned centroid.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if len(values) < k:
        raise ValueError(f"need >= {k} values to form {k} clusters, got {len(values)}")
    if any(v < 0 for v in values):
        raise ValueError("prices must be non-negative")

    centroids = _quantile_seeds(values, k)
    assignment: List[int] = [0] * len(values)
    for _ in range(max_iter):
        changed = False
        buckets: List[List[float]] = [[] for _ in range(k)]
        for i, v in enumerate(values):
            nearest = min(range(k), key=lambda c: (abs(v - centroids[c]), c))
            if nearest != assignment[i]:
                changed = True
            assignment[i] = nearest
            buckets[nearest].append(v)
        for c in range(k):
            if buckets[c]:
                centroids[c] = sum(buckets[c]) / len(buckets[c])
            else:
                # re-seed an emptied cluster at the globally farthest point
                farthest = max(
                    range(len(values)),
                    key=lambda i: abs(values[i] - centroids[assignment[i]]),
                )
                centroids[c] = values[farthest]
                changed = True
        if not changed:
            break

    buckets = [[] for _ in range(k)]
    for i, v in enumerate(values):
        nearest = min(range(k), key=lambda c: (abs(v - centroids[c]), c))
        buckets[nearest].append(v)
    clusters = [
        PriceCluster(center=sum(b) / len(b), members=tuple(b))
        for b in buckets
        if b
    ]
    clusters.sort(key=lambda c: c.center)
    return clusters


def dominant_cluster(clusters: Sequence[PriceCluster]) -> PriceCluster:
    """The cluster with the most members (lowest centre wins ties)."""
    if not clusters:
        raise ValueError("no clusters given")
    return max(clusters, key=lambda c: (c.size, -c.center))


def representative_price(
    prices: Sequence[float], *, k: Optional[int] = None
) -> float:
    """Representative market price for a set of online listings.

    Clusters the listings (default k = 3 regimes: budget device,
    professional service, outliers — reduced when there are few
    observations) and returns the dominant cluster's centre.  This is the
    PPIA estimator used by the PSP financial model.
    """
    if not prices:
        raise ValueError("cannot estimate a price from zero listings")
    effective_k = k if k is not None else min(3, len(prices))
    clusters = kmeans_1d(prices, effective_k)
    return dominant_cluster(clusters).center
