"""Lexicon-based sentiment classification for tuning-scene posts.

The PSP paper uses "social sentiment analysis to evaluate the real threat
risk levels": a post praising a DPF delete signals attack demand, a post
complaining about fines or failed inspections signals deterrence.  This
module implements a deterministic lexicon scorer in the VADER style —
signed word valences, a negation flip, intensity boosters and an emoji
table — with a lexicon curated for the aftermarket-tuning domain.

Scores are normalised to [-1, +1]; :func:`classify` buckets them into
POSITIVE / NEUTRAL / NEGATIVE with a symmetric neutral band.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.nlp.normalize import stem
from repro.nlp.tokenizer import Token, TokenType, tokenize

#: Signed valence lexicon (stemmed form -> valence).  Positive valence on
#: an attack-related post means *enthusiasm for the attack* — the signal
#: PSP interprets as social attraction.
DEFAULT_LEXICON: Dict[str, float] = {
    # enthusiasm / success
    "love": 2.0, "awesome": 2.5, "great": 1.8, "best": 2.0, "perfect": 2.2,
    "happy": 1.7, "recommend": 1.5, "easy": 1.2, "cheap": 1.0, "win": 1.6,
    "gain": 1.4, "power": 1.0, "boost": 1.3, "smooth": 1.1, "works": 1.2,
    "amazing": 2.4, "excellent": 2.3, "good": 1.5, "nice": 1.3, "fast": 1.0,
    "strong": 1.1, "improv": 1.4, "success": 1.8, "worth": 1.4, "save": 1.2,
    "proud": 1.5, "finally": 0.8, "legal": 0.5, "clean": 0.6,
    # deterrence / failure
    "hate": -2.0, "terrible": -2.4, "worst": -2.2, "awful": -2.3,
    "broke": -1.8, "broken": -1.8, "fail": -1.9, "failed": -1.9,
    "fine": -1.5, "fined": -2.0, "caught": -1.7, "bust": -1.9,
    "illegal": -1.2, "risk": -0.8, "danger": -1.4, "expensive": -1.0,
    "scam": -2.2, "regret": -1.9, "problem": -1.3, "issue": -1.1,
    "warranty": -0.6, "void": -1.0, "inspect": -0.7, "reject": -1.6,
    "limp": -1.4, "stall": -1.5, "smoke": -0.9, "bad": -1.5,
    "avoid": -1.3, "never": -0.8, "crash": -1.8, "costly": -1.1,
}

#: Words that flip the sign of the following valence word.
NEGATIONS = frozenset({"not", "no", "never", "dont", "don't", "cant", "can't",
                       "wont", "won't", "isnt", "isn't", "without"})

#: Intensity multipliers applied to the following valence word.
BOOSTERS: Dict[str, float] = {
    "very": 1.3, "really": 1.3, "so": 1.2, "super": 1.4, "extremely": 1.5,
    "totally": 1.3, "absolutely": 1.5, "slightly": 0.7, "somewhat": 0.8,
    "barely": 0.6, "kinda": 0.8,
}

#: Emoji-ish sentiment tokens recognised by the tokenizer.
EMOJI_VALENCE: Dict[str, float] = {
    ":)": 1.5, ":-)": 1.5, ":D": 2.0, ":-D": 2.0,
    ":(": -1.5, ":-(": -1.5, ":/": -0.8, ":-/": -0.8, ":|": -0.2,
}

#: How many tokens back a negation/booster remains in scope.
_SCOPE = 3


class SentimentLabel(enum.Enum):
    """Three-way sentiment classification."""

    NEGATIVE = "negative"
    NEUTRAL = "neutral"
    POSITIVE = "positive"


@dataclass(frozen=True)
class SentimentResult:
    """Outcome of scoring one text."""

    score: float
    label: SentimentLabel
    hits: int

    def __post_init__(self) -> None:
        if not -1.0 <= self.score <= 1.0:
            raise ValueError(f"normalised score must be in [-1, 1], got {self.score}")
        if self.hits < 0:
            raise ValueError("hits must be >= 0")


def _normalise(raw: float, hits: int) -> float:
    """Squash a raw valence sum into [-1, 1] (VADER-style alpha norm)."""
    if hits == 0:
        return 0.0
    alpha = 15.0
    return raw / math.sqrt(raw * raw + alpha)


class SentimentAnalyzer:
    """Deterministic lexicon sentiment scorer.

    Args:
        lexicon: stemmed-word -> valence map; defaults to the tuning-domain
            lexicon.
        neutral_band: |score| below this classifies as NEUTRAL.
    """

    def __init__(
        self,
        lexicon: Optional[Dict[str, float]] = None,
        *,
        neutral_band: float = 0.1,
    ) -> None:
        if not 0.0 <= neutral_band < 1.0:
            raise ValueError(f"neutral_band must be in [0, 1), got {neutral_band}")
        self._lexicon = dict(DEFAULT_LEXICON if lexicon is None else lexicon)
        self._neutral_band = neutral_band
        self._refresh_fingerprint()

    def _refresh_fingerprint(self) -> None:
        self._fingerprint = (
            "sentiment",
            self._neutral_band,
            tuple(sorted(self._lexicon.items())),
        )

    @property
    def fingerprint(self) -> tuple:
        """Value-based identity of this analyzer's scoring behaviour.

        Two analyzers with the same lexicon and neutral band produce the
        same fingerprint, so per-post sentiment memos
        (:meth:`score_analysis`) are shared across analyzer instances and
        invalidated when :meth:`extend_lexicon` changes the behaviour.
        """
        return self._fingerprint

    def score(self, text: str) -> SentimentResult:
        """Score ``text`` and return the normalised sentiment result."""
        tokens = tokenize(text)
        raw, hits = self._raw_score(tokens)
        normalised = _normalise(raw, hits)
        return SentimentResult(
            score=normalised, label=self._label(normalised), hits=hits
        )

    def score_analysis(self, analysis) -> SentimentResult:
        """Score a precomputed :class:`~repro.nlp.analysis.PostAnalysis`.

        Reuses the analysis' token stream (no re-tokenization) and
        memoizes the result on the analysis keyed by this analyzer's
        :attr:`fingerprint` — so each distinct post text is scored at
        most once per scoring behaviour, however many SAI windows,
        weight-mix sweeps or fleet members revisit it.
        """
        cached = analysis.cached_sentiment(self._fingerprint)
        if cached is not None:
            return cached
        raw, hits = self._raw_score(analysis.tokens)
        normalised = _normalise(raw, hits)
        result = SentimentResult(
            score=normalised, label=self._label(normalised), hits=hits
        )
        analysis.remember_sentiment(self._fingerprint, result)
        return result

    def score_many(self, texts: Sequence[str]) -> List[SentimentResult]:
        """Score several texts."""
        return [self.score(t) for t in texts]

    def mean_score(self, texts: Sequence[str]) -> float:
        """Mean normalised score over ``texts`` (0.0 for an empty input)."""
        if not texts:
            return 0.0
        return sum(r.score for r in self.score_many(texts)) / len(texts)

    def _raw_score(self, tokens: Sequence[Token]) -> tuple:
        raw = 0.0
        hits = 0
        window: List[str] = []
        for token in tokens:
            if token.type is TokenType.EMOJI_SENTIMENT:
                valence = EMOJI_VALENCE.get(token.text)
                if valence is not None:
                    raw += valence
                    hits += 1
                continue
            if token.type is not TokenType.WORD:
                continue
            lowered = token.text.lower()
            stemmed = stem(lowered)
            valence = self._lexicon.get(stemmed, self._lexicon.get(lowered))
            if valence is not None:
                multiplier = 1.0
                for prior in window[-_SCOPE:]:
                    if prior in NEGATIONS:
                        multiplier *= -1.0
                    elif prior in BOOSTERS:
                        multiplier *= BOOSTERS[prior]
                raw += valence * multiplier
                hits += 1
            window.append(lowered)
        return raw, hits

    def _label(self, score: float) -> SentimentLabel:
        if score > self._neutral_band:
            return SentimentLabel.POSITIVE
        if score < -self._neutral_band:
            return SentimentLabel.NEGATIVE
        return SentimentLabel.NEUTRAL

    def extend_lexicon(self, entries: Dict[str, float]) -> None:
        """Add or override lexicon entries (keys are stemmed internally)."""
        for word, valence in entries.items():
            self._lexicon[stem(word.lower())] = float(valence)
        self._refresh_fingerprint()
