"""Hashtag extraction and co-occurrence mining.

Supports PSP's keyword auto-learning loop (paper Fig. 7, block 5): posts
matching known attack keywords are mined for *co-occurring* hashtags,
which become candidate new keywords for future runs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.nlp.analysis import analyze_text
from repro.nlp.normalize import canonical_keyword


def extract_hashtags(text: str) -> List[str]:
    """Extract canonical hashtag keywords from post text.

    ``"Just did my #DPF_delete!"`` → ``["dpfdelete"]``.  Duplicates within
    one post are preserved (they signal emphasis and count for frequency).
    Reads the shared :func:`~repro.nlp.analysis.analyze_text` sidecar, so
    repeated extraction over one text (hashtag indexing, co-occurrence
    mining, :attr:`~repro.social.post.Post.hashtags`) tokenizes it once.
    """
    return list(analyze_text(text).hashtags)


@dataclass(frozen=True)
class CooccurrenceResult:
    """A candidate keyword discovered by co-occurrence mining."""

    keyword: str
    count: int
    support: float

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be >= 0")
        if not 0.0 <= self.support <= 1.0:
            raise ValueError(f"support must be in [0, 1], got {self.support}")


def cooccurring_hashtags(
    texts: Sequence[str],
    known_keywords: Iterable[str],
    *,
    min_support: float = 0.02,
    max_candidates: int = 50,
) -> List[CooccurrenceResult]:
    """Mine hashtags that co-occur with known attack keywords.

    Args:
        texts: post texts to mine.
        known_keywords: current attack-keyword database contents.
        min_support: minimum fraction of matching posts a candidate must
            appear in to be reported.
        max_candidates: cap on the number of candidates returned.

    Returns:
        Candidates sorted by descending count (ties broken alphabetically),
        excluding the already-known keywords.
    """
    known = {canonical_keyword(k) for k in known_keywords}
    counter: Counter = Counter()
    matching_posts = 0
    for text in texts:
        tags = extract_hashtags(text)
        tag_set = set(tags)
        if not tag_set & known:
            continue
        matching_posts += 1
        for tag in tag_set - known:
            counter[tag] += 1
    if matching_posts == 0:
        return []
    results = [
        CooccurrenceResult(keyword=tag, count=count, support=count / matching_posts)
        for tag, count in counter.items()
        if count / matching_posts >= min_support
    ]
    results.sort(key=lambda r: (-r.count, r.keyword))
    return results[:max_candidates]


def hashtag_frequencies(texts: Sequence[str]) -> Dict[str, int]:
    """Count canonical hashtag occurrences over ``texts``."""
    counter: Counter = Counter()
    for text in texts:
        counter.update(extract_hashtags(text))
    return dict(counter)


def top_hashtags(texts: Sequence[str], n: int = 10) -> List[Tuple[str, int]]:
    """The ``n`` most frequent canonical hashtags over ``texts``."""
    counter = Counter(hashtag_frequencies(texts))
    return counter.most_common(n)
