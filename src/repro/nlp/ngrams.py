"""N-gram phrase mining for keyword discovery from free text.

Hashtag co-occurrence (:mod:`repro.nlp.hashtags`) only discovers
keywords that already appear *as hashtags*.  Attack jargon often shows up
first as free-text phrases ("adblue emulator", "speed limiter off")
before the scene hashtags them.  This module mines frequent word bigrams
and trigrams from post text — stop-word filtered and stemmed — and scores
them by frequency, yielding candidate keywords for analyst review.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.nlp.normalize import canonical_keyword, stem
from repro.nlp.stopwords import remove_stopwords
from repro.nlp.tokenizer import words


@dataclass(frozen=True)
class PhraseCandidate:
    """One mined phrase with its evidence."""

    phrase: str
    keyword: str
    count: int
    support: float

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if not 0.0 <= self.support <= 1.0:
            raise ValueError(f"support must be in [0, 1], got {self.support}")


def _content_words(text: str) -> List[str]:
    """Lower-cased, stop-word-filtered content words of one text."""
    return [w.lower() for w in remove_stopwords(words(text))]


def _ngrams(tokens: Sequence[str], n: int) -> Iterable[Tuple[str, ...]]:
    for i in range(len(tokens) - n + 1):
        yield tuple(tokens[i : i + n])


def mine_phrases(
    texts: Sequence[str],
    *,
    sizes: Tuple[int, ...] = (2, 3),
    min_count: int = 3,
    max_candidates: int = 30,
    known_keywords: Iterable[str] = (),
) -> List[PhraseCandidate]:
    """Mine frequent n-gram phrases from post texts.

    Phrases are counted once per post (stemmed, so inflected variants
    merge), folded to canonical keywords, and filtered against the
    already-known keyword set.

    Args:
        texts: the post texts to mine.
        sizes: n-gram sizes to consider.
        min_count: minimum number of posts a phrase must appear in.
        max_candidates: cap on returned candidates.
        known_keywords: keywords (any surface form) to exclude.

    Returns:
        Candidates sorted by descending count, ties broken alphabetically.
    """
    if min_count < 1:
        raise ValueError(f"min_count must be >= 1, got {min_count}")
    if not sizes or any(n < 2 for n in sizes):
        raise ValueError("sizes must contain n-gram sizes >= 2")
    known = {canonical_keyword(k) for k in known_keywords}
    counter: Counter = Counter()
    surface: dict = {}
    for text in texts:
        tokens = _content_words(text)
        stemmed = [stem(t) for t in tokens]
        seen_in_post = set()
        for n in sizes:
            for start in range(len(stemmed) - n + 1):
                gram = tuple(stemmed[start : start + n])
                if gram in seen_in_post:
                    continue
                seen_in_post.add(gram)
                counter[gram] += 1
                surface.setdefault(gram, " ".join(tokens[start : start + n]))
    total = len(texts)
    candidates = []
    for gram, count in counter.items():
        if count < min_count:
            continue
        # Fold the first observed *surface* form, not the stemmed merge
        # key, so the candidate keyword reads naturally ("adblueemulator",
        # not "adbluemulator").
        keyword = canonical_keyword(surface[gram])
        if not keyword or keyword in known:
            continue
        candidates.append(
            PhraseCandidate(
                phrase=surface[gram],
                keyword=keyword,
                count=count,
                support=count / total if total else 0.0,
            )
        )
    candidates.sort(key=lambda c: (-c.count, c.keyword))
    return candidates[:max_candidates]
