"""English stop-word list for the NLP substrate.

A compact, hand-curated list sufficient for social-media post processing.
Domain-significant words that a generic list would drop but PSP needs to
keep (e.g. "off" in "egr off", "delete" in "dpf delete") are explicitly
excluded from the list.
"""

from __future__ import annotations

from typing import FrozenSet

#: Words removed by :func:`remove_stopwords`.
STOPWORDS: FrozenSet[str] = frozenset(
    """
    a about above after again against all am an and any are aren't as at be
    because been before being below between both but by can't cannot could
    couldn't did didn't do does doesn't doing don't down during each few for
    from further had hadn't has hasn't have haven't having he he'd he'll
    he's her here here's hers herself him himself his how how's i i'd i'll
    i'm i've if in into is isn't it it's its itself let's me more most
    mustn't my myself no nor not of on once only or other ought our ours
    ourselves out over own same shan't she she'd she'll she's should
    shouldn't so some such than that that's the their theirs them themselves
    then there there's these they they'd they'll they're they've this those
    through to too under until up very was wasn't we we'd we'll we're we've
    were weren't what what's when when's where where's which while who who's
    whom why why's with won't would wouldn't you you'd you'll you're you've
    your yours yourself yourselves
    """.split()
)

#: Domain words that must never be treated as stop words even if a generic
#: list contains them ("off" matters in "egr off").
DOMAIN_KEEP: FrozenSet[str] = frozenset({"off", "on", "out", "delete", "removal"})


def is_stopword(token: str) -> bool:
    """Whether ``token`` (lower-cased) is a stop word."""
    lowered = token.lower()
    if lowered in DOMAIN_KEEP:
        return False
    return lowered in STOPWORDS


def remove_stopwords(tokens):
    """Return ``tokens`` with stop words removed (order preserved)."""
    return [t for t in tokens if not is_stopword(t)]
