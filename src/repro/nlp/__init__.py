"""From-scratch NLP substrate for the PSP framework.

Implements the language processing the paper delegates to its "PSP NLP
component" (Fig. 7, block 2): social-media-aware tokenization, keyword
normalization, hashtag co-occurrence mining (keyword auto-learning),
lexicon sentiment scoring, TF-IDF relevance, 1-D price clustering (PPIA
estimation) and text mining of prices and counts from report prose.
"""

from repro.nlp.analysis import PostAnalysis, analyze_text
from repro.nlp.clustering import (
    PriceCluster,
    dominant_cluster,
    kmeans_1d,
    representative_price,
)
from repro.nlp.hashtags import (
    CooccurrenceResult,
    cooccurring_hashtags,
    extract_hashtags,
    hashtag_frequencies,
    top_hashtags,
)
from repro.nlp.ngrams import PhraseCandidate, mine_phrases
from repro.nlp.normalize import (
    canonical_keyword,
    keyword_in_text,
    normalize_text,
    stem,
    stem_all,
)
from repro.nlp.sentiment import (
    SentimentAnalyzer,
    SentimentLabel,
    SentimentResult,
)
from repro.nlp.stopwords import STOPWORDS, is_stopword, remove_stopwords
from repro.nlp.textmining import (
    CountObservation,
    PriceObservation,
    extract_counts,
    extract_prices,
    extract_prices_many,
    find_count,
    sum_counts,
)
from repro.nlp.tfidf import TfIdfDocument, TfIdfVectorizer, cosine_similarity
from repro.nlp.tokenizer import Token, TokenType, hashtags, prices, tokenize, words

__all__ = [
    "CooccurrenceResult",
    "CountObservation",
    "PhraseCandidate",
    "PostAnalysis",
    "PriceCluster",
    "PriceObservation",
    "STOPWORDS",
    "SentimentAnalyzer",
    "SentimentLabel",
    "SentimentResult",
    "TfIdfDocument",
    "TfIdfVectorizer",
    "Token",
    "TokenType",
    "analyze_text",
    "canonical_keyword",
    "cooccurring_hashtags",
    "cosine_similarity",
    "dominant_cluster",
    "extract_counts",
    "extract_hashtags",
    "extract_prices",
    "extract_prices_many",
    "find_count",
    "hashtag_frequencies",
    "hashtags",
    "is_stopword",
    "keyword_in_text",
    "kmeans_1d",
    "mine_phrases",
    "normalize_text",
    "prices",
    "remove_stopwords",
    "representative_price",
    "stem",
    "stem_all",
    "sum_counts",
    "tokenize",
    "top_hashtags",
    "words",
]
