"""TF-IDF vectorizer over tokenised documents.

Used by the PSP NLP component for keyword relevance ranking: given the
corpus of posts matching a target application, TF-IDF surfaces the terms
that distinguish one attack's posts from the rest, supporting both the
SAI "post outline" matching and keyword learning diagnostics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nlp.normalize import stem
from repro.nlp.stopwords import remove_stopwords
from repro.nlp.tokenizer import words


def _prepare(text: str) -> List[str]:
    """Tokenise, stop-word-filter and stem a document."""
    return [stem(w.lower()) for w in remove_stopwords(words(text))]


@dataclass(frozen=True)
class TfIdfDocument:
    """A scored document: sparse term -> tf-idf weight map."""

    index: int
    weights: Dict[str, float]

    def top_terms(self, n: int = 10) -> List[Tuple[str, float]]:
        """The ``n`` heaviest terms of this document."""
        ranked = sorted(self.weights.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]


class TfIdfVectorizer:
    """Smoothed TF-IDF with L2 normalisation.

    idf(t) = ln((1 + N) / (1 + df(t))) + 1 (scikit-learn-compatible
    smoothing so unseen terms never divide by zero).
    """

    def __init__(self) -> None:
        self._idf: Optional[Dict[str, float]] = None
        self._n_docs = 0

    @property
    def vocabulary(self) -> Tuple[str, ...]:
        """Sorted fitted vocabulary (empty before :meth:`fit`)."""
        if self._idf is None:
            return ()
        return tuple(sorted(self._idf))

    def fit(self, documents: Sequence[str]) -> "TfIdfVectorizer":
        """Learn document frequencies from ``documents``."""
        if not documents:
            raise ValueError("cannot fit TF-IDF on an empty corpus")
        df: Dict[str, int] = {}
        for doc in documents:
            for term in set(_prepare(doc)):
                df[term] = df.get(term, 0) + 1
        n = len(documents)
        self._n_docs = n
        self._idf = {
            term: math.log((1 + n) / (1 + count)) + 1.0
            for term, count in df.items()
        }
        return self

    def transform(self, documents: Sequence[str]) -> List[TfIdfDocument]:
        """Score ``documents`` against the fitted idf table."""
        if self._idf is None:
            raise RuntimeError("TfIdfVectorizer.transform called before fit")
        scored = []
        for index, doc in enumerate(documents):
            terms = _prepare(doc)
            if not terms:
                scored.append(TfIdfDocument(index=index, weights={}))
                continue
            tf: Dict[str, int] = {}
            for term in terms:
                tf[term] = tf.get(term, 0) + 1
            weights = {
                term: (count / len(terms)) * self._idf.get(term, self._default_idf())
                for term, count in tf.items()
            }
            norm = math.sqrt(sum(w * w for w in weights.values()))
            if norm > 0:
                weights = {t: w / norm for t, w in weights.items()}
            scored.append(TfIdfDocument(index=index, weights=weights))
        return scored

    def fit_transform(self, documents: Sequence[str]) -> List[TfIdfDocument]:
        """Fit on ``documents`` then transform them."""
        return self.fit(documents).transform(documents)

    def _default_idf(self) -> float:
        """idf assigned to terms unseen at fit time (max smoothing)."""
        return math.log((1 + self._n_docs) / 1.0) + 1.0


def cosine_similarity(a: TfIdfDocument, b: TfIdfDocument) -> float:
    """Cosine similarity between two L2-normalised sparse documents."""
    if len(a.weights) > len(b.weights):
        a, b = b, a
    return sum(w * b.weights.get(t, 0.0) for t, w in a.weights.items())
