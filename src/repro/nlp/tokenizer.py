"""Social-media-aware tokenizer.

Splits post text into typed tokens, preserving the entities PSP consumes:
hashtags (``#dpfdelete``), mentions (``@workshop``), URLs, prices
(``360 EUR``, ``€360``), plain numbers and words.  The tokenizer is
regex-based and deterministic; it performs no normalization beyond
classification (see :mod:`repro.nlp.normalize` for lower-casing etc.).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List, Tuple


class TokenType(enum.Enum):
    """Classification of a token produced by :func:`tokenize`."""

    WORD = "word"
    HASHTAG = "hashtag"
    MENTION = "mention"
    URL = "url"
    PRICE = "price"
    NUMBER = "number"
    EMOJI_SENTIMENT = "emoji_sentiment"


@dataclass(frozen=True)
class Token:
    """A typed token with its source text and position."""

    text: str
    type: TokenType
    position: int

    def __post_init__(self) -> None:
        if not self.text:
            raise ValueError("token text must be non-empty")


#: Token patterns tried in priority order (first match wins).
_TOKEN_PATTERNS: Tuple[Tuple[TokenType, str], ...] = (
    (TokenType.URL, r"https?://\S+"),
    (TokenType.HASHTAG, r"#\w+"),
    (TokenType.MENTION, r"@\w+"),
    # "€360", "360€", "360 EUR", "EUR 360", "$1,200.50"
    (TokenType.PRICE, r"[€$£]\s?\d[\d,]*(?:\.\d+)?"),
    (TokenType.PRICE, r"\d[\d,]*(?:\.\d+)?\s?[€$£]"),
    (TokenType.PRICE, r"\d[\d,]*(?:\.\d+)?\s?(?:EUR|USD|GBP|eur|usd|gbp)\b"),
    (TokenType.PRICE, r"(?:EUR|USD|GBP)\s?\d[\d,]*(?:\.\d+)?"),
    (TokenType.NUMBER, r"\d[\d,]*(?:\.\d+)?"),
    (TokenType.EMOJI_SENTIMENT, r"[:;]-?[)(D/|]"),
    (TokenType.WORD, r"[A-Za-z][A-Za-z'\-]*"),
)

_MASTER_RE = re.compile(
    "|".join(f"(?P<g{i}>{pattern})" for i, (_, pattern) in enumerate(_TOKEN_PATTERNS))
)
_GROUP_TYPES = {f"g{i}": tt for i, (tt, _) in enumerate(_TOKEN_PATTERNS)}


def iter_tokens(text: str) -> Iterator[Token]:
    """Yield typed tokens from ``text`` in order of appearance."""
    position = 0
    for match in _MASTER_RE.finditer(text):
        group_name = match.lastgroup
        if group_name is None:
            continue
        yield Token(text=match.group(), type=_GROUP_TYPES[group_name], position=position)
        position += 1


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` into a list of typed tokens."""
    return list(iter_tokens(text))


def words(text: str) -> List[str]:
    """Just the WORD token texts of ``text`` (original casing)."""
    return [t.text for t in iter_tokens(text) if t.type is TokenType.WORD]


def hashtags(text: str) -> List[str]:
    """Just the HASHTAG token texts of ``text`` (including ``#``)."""
    return [t.text for t in iter_tokens(text) if t.type is TokenType.HASHTAG]


def prices(text: str) -> List[str]:
    """Just the PRICE token texts of ``text`` (raw, unparsed)."""
    return [t.text for t in iter_tokens(text) if t.type is TokenType.PRICE]
