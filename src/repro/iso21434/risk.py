"""Risk value determination (ISO/SAE-21434 Clause 15.9).

Risk values range 1..5 and are determined from the overall impact rating
and the attack-feasibility rating via a risk matrix.  The standard leaves
the matrix to the organisation; this module ships the informative-annex
example matrix, which is the one the PSP paper implicitly assumes:

============  ========  ====  ======  ====
Impact \\ AF   Very Low  Low   Medium  High
============  ========  ====  ======  ====
Severe        2         3     4       5
Major         1         2     3       4
Moderate      1         2     2       3
Negligible    1         1     1       1
============  ========  ====  ======  ====

The matrix is monotone non-decreasing in both axes (property-tested), so a
PSP-driven feasibility raise can only raise or keep the risk value — the
mechanism by which PSP corrects the under-estimated powertrain risks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

from repro.iso21434.enums import FeasibilityRating, ImpactRating

#: Informative-annex risk matrix: (impact, feasibility) -> risk value.
DEFAULT_RISK_MATRIX: Mapping[Tuple[ImpactRating, FeasibilityRating], int] = {
    (ImpactRating.SEVERE, FeasibilityRating.VERY_LOW): 2,
    (ImpactRating.SEVERE, FeasibilityRating.LOW): 3,
    (ImpactRating.SEVERE, FeasibilityRating.MEDIUM): 4,
    (ImpactRating.SEVERE, FeasibilityRating.HIGH): 5,
    (ImpactRating.MAJOR, FeasibilityRating.VERY_LOW): 1,
    (ImpactRating.MAJOR, FeasibilityRating.LOW): 2,
    (ImpactRating.MAJOR, FeasibilityRating.MEDIUM): 3,
    (ImpactRating.MAJOR, FeasibilityRating.HIGH): 4,
    (ImpactRating.MODERATE, FeasibilityRating.VERY_LOW): 1,
    (ImpactRating.MODERATE, FeasibilityRating.LOW): 2,
    (ImpactRating.MODERATE, FeasibilityRating.MEDIUM): 2,
    (ImpactRating.MODERATE, FeasibilityRating.HIGH): 3,
    (ImpactRating.NEGLIGIBLE, FeasibilityRating.VERY_LOW): 1,
    (ImpactRating.NEGLIGIBLE, FeasibilityRating.LOW): 1,
    (ImpactRating.NEGLIGIBLE, FeasibilityRating.MEDIUM): 1,
    (ImpactRating.NEGLIGIBLE, FeasibilityRating.HIGH): 1,
}

MIN_RISK_VALUE = 1
MAX_RISK_VALUE = 5


@dataclass(frozen=True)
class RiskMatrix:
    """An (impact x feasibility) → risk-value matrix.

    A custom matrix may be supplied (the standard permits organisation-
    specific matrices) but is validated for completeness, range and
    monotonicity in both axes at construction time.
    """

    cells: Mapping[Tuple[ImpactRating, FeasibilityRating], int] = field(
        default_factory=lambda: dict(DEFAULT_RISK_MATRIX)
    )

    def __post_init__(self) -> None:
        cells = dict(self.cells)
        for impact in ImpactRating:
            for feasibility in FeasibilityRating:
                key = (impact, feasibility)
                if key not in cells:
                    raise ValueError(
                        f"risk matrix missing cell ({impact.label()}, "
                        f"{feasibility.label()})"
                    )
                value = cells[key]
                if not MIN_RISK_VALUE <= value <= MAX_RISK_VALUE:
                    raise ValueError(
                        f"risk value {value} out of range "
                        f"[{MIN_RISK_VALUE}, {MAX_RISK_VALUE}]"
                    )
        self._check_monotone(cells)
        object.__setattr__(self, "cells", cells)

    @staticmethod
    def _check_monotone(
        cells: Mapping[Tuple[ImpactRating, FeasibilityRating], int]
    ) -> None:
        impacts = sorted(ImpactRating, key=lambda r: r.level)
        feasibilities = sorted(FeasibilityRating, key=lambda r: r.level)
        for i, impact in enumerate(impacts):
            for j, feas in enumerate(feasibilities):
                value = cells[(impact, feas)]
                if i + 1 < len(impacts) and cells[(impacts[i + 1], feas)] < value:
                    raise ValueError("risk matrix not monotone in impact")
                if j + 1 < len(feasibilities) and cells[(impact, feasibilities[j + 1])] < value:
                    raise ValueError("risk matrix not monotone in feasibility")

    def risk_value(
        self, impact: ImpactRating, feasibility: FeasibilityRating
    ) -> int:
        """Risk value (1..5) for the given impact and feasibility."""
        return self.cells[(impact, feasibility)]


def risk_value(
    impact: ImpactRating,
    feasibility: FeasibilityRating,
    matrix: RiskMatrix = None,
) -> int:
    """Determine the risk value using ``matrix`` (default matrix if None)."""
    return (matrix or _DEFAULT).risk_value(impact, feasibility)


_DEFAULT = RiskMatrix()


def default_matrix() -> RiskMatrix:
    """The module-level default risk matrix instance."""
    return _DEFAULT
