"""Asset identification (ISO/SAE-21434 Clause 15.3).

The first TARA activity: enumerate the assets of the item under analysis
and the cybersecurity properties (confidentiality, integrity, availability)
whose compromise would lead to damage.  Assets typically include firmware
images, calibration/configuration data, communication messages, crypto
material and diagnostic interfaces of an ECU.

:class:`Asset` instances are hashable value objects keyed by ``asset_id``
so they can index dictionaries in the TARA engine and appear as nodes in
attack-path graphs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.iso21434.enums import CybersecurityProperty


class AssetKind(enum.Enum):
    """Coarse asset taxonomy used for threat enumeration heuristics."""

    FIRMWARE = "firmware"
    CALIBRATION_DATA = "calibration_data"
    COMMUNICATION = "communication"
    CRYPTO_MATERIAL = "crypto_material"
    DIAGNOSTIC_INTERFACE = "diagnostic_interface"
    SENSOR_DATA = "sensor_data"
    ACTUATION = "actuation"
    PERSONAL_DATA = "personal_data"


@dataclass(frozen=True)
class Asset:
    """An asset of the item under analysis.

    Attributes:
        asset_id: unique identifier, e.g. ``"ecm.firmware"``.
        name: human-readable name.
        kind: coarse taxonomy bucket used by threat enumeration.
        properties: cybersecurity properties that must be protected.
        ecu_id: identifier of the hosting ECU in the vehicle model, if any.
        description: free-text context for reports.
    """

    asset_id: str
    name: str
    kind: AssetKind
    properties: FrozenSet[CybersecurityProperty]
    ecu_id: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.asset_id:
            raise ValueError("asset_id must be non-empty")
        if not self.properties:
            raise ValueError(f"asset {self.asset_id!r} must protect >= 1 property")
        object.__setattr__(self, "properties", frozenset(self.properties))

    def protects(self, prop: CybersecurityProperty) -> bool:
        """Whether this asset requires protection of ``prop``."""
        return prop in self.properties


def make_asset(
    asset_id: str,
    name: str,
    kind: AssetKind,
    properties: Iterable[CybersecurityProperty],
    *,
    ecu_id: Optional[str] = None,
    description: str = "",
) -> Asset:
    """Convenience constructor accepting any property iterable."""
    return Asset(
        asset_id=asset_id,
        name=name,
        kind=kind,
        properties=frozenset(properties),
        ecu_id=ecu_id,
        description=description,
    )


#: Default properties worth protecting per asset kind, used by
#: :func:`standard_ecu_assets` and the TARA engine's auto-enumeration.
DEFAULT_PROPERTIES = {
    AssetKind.FIRMWARE: frozenset(
        {CybersecurityProperty.INTEGRITY, CybersecurityProperty.AVAILABILITY}
    ),
    AssetKind.CALIBRATION_DATA: frozenset(
        {CybersecurityProperty.INTEGRITY, CybersecurityProperty.CONFIDENTIALITY}
    ),
    AssetKind.COMMUNICATION: frozenset(
        {CybersecurityProperty.INTEGRITY, CybersecurityProperty.AVAILABILITY}
    ),
    AssetKind.CRYPTO_MATERIAL: frozenset(
        {CybersecurityProperty.CONFIDENTIALITY, CybersecurityProperty.INTEGRITY}
    ),
    AssetKind.DIAGNOSTIC_INTERFACE: frozenset(
        {CybersecurityProperty.INTEGRITY, CybersecurityProperty.CONFIDENTIALITY}
    ),
    AssetKind.SENSOR_DATA: frozenset({CybersecurityProperty.INTEGRITY}),
    AssetKind.ACTUATION: frozenset(
        {CybersecurityProperty.INTEGRITY, CybersecurityProperty.AVAILABILITY}
    ),
    AssetKind.PERSONAL_DATA: frozenset({CybersecurityProperty.CONFIDENTIALITY}),
}


def standard_ecu_assets(ecu_id: str, ecu_name: str) -> Tuple[Asset, ...]:
    """Enumerate the canonical asset set of a generic ECU.

    Produces the firmware, calibration-data, bus-communication and
    diagnostic-interface assets every ECU in the reference architecture
    carries, with the default property sets for each kind.
    """
    specs = (
        (AssetKind.FIRMWARE, "firmware", "Firmware image"),
        (AssetKind.CALIBRATION_DATA, "calibration", "Calibration data"),
        (AssetKind.COMMUNICATION, "bus_messages", "Bus communication"),
        (AssetKind.DIAGNOSTIC_INTERFACE, "diagnostics", "Diagnostic interface"),
    )
    return tuple(
        Asset(
            asset_id=f"{ecu_id}.{suffix}",
            name=f"{ecu_name} {label}",
            kind=kind,
            properties=DEFAULT_PROPERTIES[kind],
            ecu_id=ecu_id,
        )
        for kind, suffix, label in specs
    )


@dataclass
class AssetRegistry:
    """Mutable registry of identified assets, keyed by ``asset_id``."""

    _assets: dict = field(default_factory=dict)

    def register(self, asset: Asset) -> Asset:
        """Register an asset; rejects duplicate identifiers."""
        if asset.asset_id in self._assets:
            raise ValueError(f"duplicate asset id {asset.asset_id!r}")
        self._assets[asset.asset_id] = asset
        return asset

    def register_all(self, assets: Iterable[Asset]) -> None:
        """Register many assets at once."""
        for asset in assets:
            self.register(asset)

    def get(self, asset_id: str) -> Asset:
        """Look up an asset; raises KeyError with a helpful message."""
        try:
            return self._assets[asset_id]
        except KeyError:
            raise KeyError(f"unknown asset {asset_id!r}") from None

    def __contains__(self, asset_id: str) -> bool:
        return asset_id in self._assets

    def __len__(self) -> int:
        return len(self._assets)

    def __iter__(self):
        return iter(self._assets.values())

    def by_ecu(self, ecu_id: str) -> Tuple[Asset, ...]:
        """All assets hosted on the given ECU."""
        return tuple(a for a in self._assets.values() if a.ecu_id == ecu_id)

    def by_kind(self, kind: AssetKind) -> Tuple[Asset, ...]:
        """All assets of the given kind."""
        return tuple(a for a in self._assets.values() if a.kind is kind)
