"""Shared rating vocabulary for the ISO/SAE-21434 TARA substrate.

This module defines the enumerated rating scales used throughout Clause 15
of ISO/SAE-21434 and its annexes, as referenced by the PSP paper:

* :class:`AttackVector` — the four CVSS-style attack vectors used by the
  attack-vector-based feasibility model (paper Fig. 5) and by the CAL
  determination table (paper Fig. 6).
* :class:`FeasibilityRating` — the four-level attack-feasibility scale.
* :class:`ImpactRating` — the four-level impact scale.
* :class:`ImpactCategory` — the S/F/O/P damage categories.
* :class:`CAL` — Cybersecurity Assurance Levels CAL1..CAL4.
* :class:`CybersecurityProperty` — C/I/A properties attached to assets.
* :class:`StrideCategory` — STRIDE threat classification.
* :class:`AttackerProfile` — the attacker taxonomy quoted in §II of the
  paper (Insider, Outsider, Rational, Malicious, Active, Passive, Local).

All ordered scales expose ``level`` (an integer, higher = greater) so that
callers can compare ratings without relying on enum declaration order, and
``from_level`` to map back.
"""

from __future__ import annotations

import enum


class _OrderedRating(enum.Enum):
    """Base class for totally ordered rating scales.

    Members must be declared with increasing integer values.  Comparison
    operators compare those values, making every subclass a total order.
    """

    @property
    def level(self) -> int:
        """Integer severity level of this rating (higher = greater)."""
        return int(self.value)

    @classmethod
    def from_level(cls, level: int) -> "_OrderedRating":
        """Return the member whose level equals ``level``.

        Raises:
            ValueError: if no member has that level.
        """
        for member in cls:
            if member.level == level:
                return member
        raise ValueError(f"{cls.__name__} has no member with level {level}")

    @classmethod
    def clamp(cls, level: int) -> "_OrderedRating":
        """Return the member for ``level`` clamped into the valid range."""
        levels = sorted(m.level for m in cls)
        clamped = max(levels[0], min(levels[-1], level))
        return cls.from_level(clamped)

    def __lt__(self, other: object) -> bool:
        if isinstance(other, type(self)):
            return self.level < other.level
        return NotImplemented

    def __le__(self, other: object) -> bool:
        if isinstance(other, type(self)):
            return self.level <= other.level
        return NotImplemented

    def __gt__(self, other: object) -> bool:
        if isinstance(other, type(self)):
            return self.level > other.level
        return NotImplemented

    def __ge__(self, other: object) -> bool:
        if isinstance(other, type(self)):
            return self.level >= other.level
        return NotImplemented


class AttackVector(enum.Enum):
    """Attack vector classes used by ISO/SAE-21434 (paper Figs. 5 and 6).

    The ordering NETWORK > ADJACENT > LOCAL > PHYSICAL reflects *reach*, not
    feasibility: a network vector is reachable by the largest attacker
    population.  The PSP paper's central observation is that this reach
    ordering is a poor proxy for feasibility in the powertrain domain.
    """

    NETWORK = "network"
    ADJACENT = "adjacent"
    LOCAL = "local"
    PHYSICAL = "physical"

    @property
    def reach(self) -> int:
        """Attacker-population reach rank (3 = network ... 0 = physical)."""
        return _AV_REACH[self]


_AV_REACH = {
    AttackVector.NETWORK: 3,
    AttackVector.ADJACENT: 2,
    AttackVector.LOCAL: 1,
    AttackVector.PHYSICAL: 0,
}


class FeasibilityRating(_OrderedRating):
    """Attack-feasibility rating scale of ISO/SAE-21434 Clause 15.8."""

    VERY_LOW = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3

    def label(self) -> str:
        """Human-readable label matching the standard's tables."""
        return _FEASIBILITY_LABELS[self]


_FEASIBILITY_LABELS = {
    FeasibilityRating.VERY_LOW: "Very Low",
    FeasibilityRating.LOW: "Low",
    FeasibilityRating.MEDIUM: "Medium",
    FeasibilityRating.HIGH: "High",
}


class ImpactRating(_OrderedRating):
    """Impact rating scale of ISO/SAE-21434 Clause 15.5."""

    NEGLIGIBLE = 0
    MODERATE = 1
    MAJOR = 2
    SEVERE = 3

    def label(self) -> str:
        """Human-readable label matching the standard's tables."""
        return _IMPACT_LABELS[self]


_IMPACT_LABELS = {
    ImpactRating.NEGLIGIBLE: "Negligible",
    ImpactRating.MODERATE: "Moderate",
    ImpactRating.MAJOR: "Major",
    ImpactRating.SEVERE: "Severe",
}


class ImpactCategory(enum.Enum):
    """Damage categories rated independently per ISO/SAE-21434 §15.5."""

    SAFETY = "safety"
    FINANCIAL = "financial"
    OPERATIONAL = "operational"
    PRIVACY = "privacy"


class CAL(_OrderedRating):
    """Cybersecurity Assurance Level (paper Fig. 6).

    CAL4 is the highest assurance requirement, CAL1 the lowest.  ``NONE``
    represents "no CAL assigned" for negligible-impact items.
    """

    NONE = 0
    CAL1 = 1
    CAL2 = 2
    CAL3 = 3
    CAL4 = 4

    def label(self) -> str:
        """Human-readable label (e.g. ``"CAL3"``)."""
        return "-" if self is CAL.NONE else f"CAL{self.level}"


class CybersecurityProperty(enum.Enum):
    """Cybersecurity properties protected on an asset (C/I/A)."""

    CONFIDENTIALITY = "confidentiality"
    INTEGRITY = "integrity"
    AVAILABILITY = "availability"


class StrideCategory(enum.Enum):
    """STRIDE threat classification used for threat-scenario enumeration."""

    SPOOFING = "spoofing"
    TAMPERING = "tampering"
    REPUDIATION = "repudiation"
    INFORMATION_DISCLOSURE = "information_disclosure"
    DENIAL_OF_SERVICE = "denial_of_service"
    ELEVATION_OF_PRIVILEGE = "elevation_of_privilege"

    @property
    def violated_property(self) -> CybersecurityProperty:
        """The cybersecurity property this STRIDE category primarily violates."""
        return _STRIDE_PROPERTY[self]


_STRIDE_PROPERTY = {
    StrideCategory.SPOOFING: CybersecurityProperty.INTEGRITY,
    StrideCategory.TAMPERING: CybersecurityProperty.INTEGRITY,
    StrideCategory.REPUDIATION: CybersecurityProperty.INTEGRITY,
    StrideCategory.INFORMATION_DISCLOSURE: CybersecurityProperty.CONFIDENTIALITY,
    StrideCategory.DENIAL_OF_SERVICE: CybersecurityProperty.AVAILABILITY,
    StrideCategory.ELEVATION_OF_PRIVILEGE: CybersecurityProperty.INTEGRITY,
}


class AttackerProfile(enum.Enum):
    """Attacker taxonomy quoted in §II of the PSP paper.

    The paper classifies attackers as Insider (service/maintenance
    personnel), Outsider (black hats), Rational (car owners), Malicious
    (criminals), Active (thieves), Passive (rival/competitor) and Local
    (the vehicle's owner).
    """

    INSIDER = "insider"
    OUTSIDER = "outsider"
    RATIONAL = "rational"
    MALICIOUS = "malicious"
    ACTIVE = "active"
    PASSIVE = "passive"
    LOCAL = "local"

    @property
    def is_owner_approved(self) -> bool:
        """Whether attacks by this profile are typically owner-approved.

        The PSP paper defines *insider* attacks as "all attacks that the
        owner is aware of and approves, even if the attack comes from third
        parties" — which covers the Insider, Rational and Local profiles.
        """
        return self in (
            AttackerProfile.INSIDER,
            AttackerProfile.RATIONAL,
            AttackerProfile.LOCAL,
        )
