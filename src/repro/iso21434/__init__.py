"""ISO/SAE-21434 TARA substrate.

Implements the Clause-15 Threat Analysis and Risk Assessment building
blocks the PSP framework plugs into: asset identification, damage and
threat scenarios, impact rating, attack-path analysis, the three attack-
feasibility models, risk-value determination, CAL determination, risk
treatment and cybersecurity goals.
"""

from repro.iso21434.assets import (
    Asset,
    AssetKind,
    AssetRegistry,
    make_asset,
    standard_ecu_assets,
)
from repro.iso21434.attack_path import (
    AttackPath,
    AttackPathRegistry,
    AttackStep,
    threat_feasibility,
)
from repro.iso21434.cal import (
    DEFAULT_CAL_TABLE,
    PHYSICAL_CAL_CEILING,
    CalTable,
    determine_cal,
    physical_ceiling,
)
from repro.iso21434.controls import (
    Control,
    ControlCatalog,
    ResidualRiskRecord,
    apply_controls,
    default_catalog,
    residual_risk,
    select_controls_for_target,
)
from repro.iso21434.damage import DamageRegistry, DamageScenario
from repro.iso21434.enums import (
    CAL,
    AttackerProfile,
    AttackVector,
    CybersecurityProperty,
    FeasibilityRating,
    ImpactCategory,
    ImpactRating,
    StrideCategory,
)
from repro.iso21434.feasibility import (
    AttackPotentialInput,
    AttackPotentialModel,
    AttackVectorModel,
    CvssModel,
    CvssVector,
    FeasibilityModel,
    WeightTable,
    standard_table,
)
from repro.iso21434.goals import (
    CybersecurityClaim,
    CybersecurityGoal,
    GoalRegistry,
    goal_from_threat,
)
from repro.iso21434.impact import (
    ImpactProfile,
    impact_from_severity_class,
    safety_impact,
)
from repro.iso21434.risk import (
    DEFAULT_RISK_MATRIX,
    MAX_RISK_VALUE,
    MIN_RISK_VALUE,
    RiskMatrix,
    default_matrix,
    risk_value,
)
from repro.iso21434.threats import (
    ThreatRegistry,
    ThreatScenario,
    enumerate_stride_threats,
)
from repro.iso21434.treatment import (
    TreatmentOption,
    TreatmentPolicy,
    decide_treatment,
)

__all__ = [
    "Asset",
    "AssetKind",
    "AssetRegistry",
    "AttackPath",
    "AttackPathRegistry",
    "AttackPotentialInput",
    "AttackPotentialModel",
    "AttackStep",
    "AttackVector",
    "AttackVectorModel",
    "AttackerProfile",
    "CAL",
    "CalTable",
    "Control",
    "ControlCatalog",
    "CvssModel",
    "CvssVector",
    "CybersecurityClaim",
    "CybersecurityGoal",
    "CybersecurityProperty",
    "DamageRegistry",
    "DamageScenario",
    "DEFAULT_CAL_TABLE",
    "DEFAULT_RISK_MATRIX",
    "FeasibilityModel",
    "FeasibilityRating",
    "GoalRegistry",
    "ImpactCategory",
    "ImpactProfile",
    "ImpactRating",
    "MAX_RISK_VALUE",
    "MIN_RISK_VALUE",
    "PHYSICAL_CAL_CEILING",
    "ResidualRiskRecord",
    "RiskMatrix",
    "StrideCategory",
    "ThreatRegistry",
    "ThreatScenario",
    "TreatmentOption",
    "TreatmentPolicy",
    "WeightTable",
    "apply_controls",
    "decide_treatment",
    "default_catalog",
    "default_matrix",
    "determine_cal",
    "residual_risk",
    "select_controls_for_target",
    "enumerate_stride_threats",
    "goal_from_threat",
    "impact_from_severity_class",
    "make_asset",
    "physical_ceiling",
    "risk_value",
    "safety_impact",
    "standard_ecu_assets",
    "standard_table",
    "threat_feasibility",
]
