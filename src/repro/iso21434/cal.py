"""Cybersecurity Assurance Level (CAL) determination (paper Fig. 6).

ISO/SAE-21434 Annex E determines a CAL from the impact of a threat and the
attack vector through which it can be realised.  The PSP paper reproduces
the determination table as Fig. 6 and draws attention to one structural
property: **the physical-vector column never exceeds CAL2**, so attacks on
powertrain ECUs — predominantly physical — can never demand more than a
medium-low assurance level under the static standard, even when their
impact is severe (a DoS on a hard-real-time engine controller).

The table implemented here is reconstructed from the paper's description
and the standard's publicly documented structure:

===========  ========  =====  ========  =======
Impact \\ AV  Physical  Local  Adjacent  Network
===========  ========  =====  ========  =======
Severe       CAL2      CAL3   CAL4      CAL4
Major        CAL1      CAL2   CAL3      CAL3
Moderate     CAL1      CAL1   CAL2      CAL2
Negligible   —         —      —         —
===========  ========  =====  ========  =======
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

from repro.iso21434.enums import CAL, AttackVector, ImpactRating

#: Reconstructed CAL determination table (paper Fig. 6).
DEFAULT_CAL_TABLE: Mapping[Tuple[ImpactRating, AttackVector], CAL] = {
    (ImpactRating.SEVERE, AttackVector.PHYSICAL): CAL.CAL2,
    (ImpactRating.SEVERE, AttackVector.LOCAL): CAL.CAL3,
    (ImpactRating.SEVERE, AttackVector.ADJACENT): CAL.CAL4,
    (ImpactRating.SEVERE, AttackVector.NETWORK): CAL.CAL4,
    (ImpactRating.MAJOR, AttackVector.PHYSICAL): CAL.CAL1,
    (ImpactRating.MAJOR, AttackVector.LOCAL): CAL.CAL2,
    (ImpactRating.MAJOR, AttackVector.ADJACENT): CAL.CAL3,
    (ImpactRating.MAJOR, AttackVector.NETWORK): CAL.CAL3,
    (ImpactRating.MODERATE, AttackVector.PHYSICAL): CAL.CAL1,
    (ImpactRating.MODERATE, AttackVector.LOCAL): CAL.CAL1,
    (ImpactRating.MODERATE, AttackVector.ADJACENT): CAL.CAL2,
    (ImpactRating.MODERATE, AttackVector.NETWORK): CAL.CAL2,
    (ImpactRating.NEGLIGIBLE, AttackVector.PHYSICAL): CAL.NONE,
    (ImpactRating.NEGLIGIBLE, AttackVector.LOCAL): CAL.NONE,
    (ImpactRating.NEGLIGIBLE, AttackVector.ADJACENT): CAL.NONE,
    (ImpactRating.NEGLIGIBLE, AttackVector.NETWORK): CAL.NONE,
}

#: The structural ceiling the paper criticises: physical caps at CAL2.
PHYSICAL_CAL_CEILING = CAL.CAL2


@dataclass(frozen=True)
class CalTable:
    """An (impact x attack-vector) → CAL determination table."""

    cells: Mapping[Tuple[ImpactRating, AttackVector], CAL] = field(
        default_factory=lambda: dict(DEFAULT_CAL_TABLE)
    )

    def __post_init__(self) -> None:
        cells = dict(self.cells)
        for impact in ImpactRating:
            for vector in AttackVector:
                if (impact, vector) not in cells:
                    raise ValueError(
                        f"CAL table missing cell ({impact.label()}, {vector.value})"
                    )
        object.__setattr__(self, "cells", cells)

    def determine(self, impact: ImpactRating, vector: AttackVector) -> CAL:
        """Determine the CAL for the given impact and attack vector."""
        return self.cells[(impact, vector)]


_DEFAULT = CalTable()


def determine_cal(
    impact: ImpactRating, vector: AttackVector, table: CalTable = None
) -> CAL:
    """Determine the CAL using ``table`` (reconstructed Fig. 6 if None)."""
    return (table or _DEFAULT).determine(impact, vector)


def default_table() -> CalTable:
    """The module-level default CAL table instance."""
    return _DEFAULT


def physical_ceiling(table: CalTable = None) -> CAL:
    """The highest CAL reachable through the physical vector.

    For the default table this is CAL2 — the structural limitation the PSP
    paper highlights for powertrain threat scenarios.
    """
    resolved = table or _DEFAULT
    return max(
        (resolved.determine(impact, AttackVector.PHYSICAL) for impact in ImpactRating),
        key=lambda cal: cal.level,
    )
