"""Attack-path analysis (ISO/SAE-21434 Clause 15.6/15.7).

An attack path is an ordered sequence of attack steps from an entry point
(attack surface) to the targeted asset.  Feasibility aggregation follows
the standard's informative guidance:

* the feasibility of a *path* is the **minimum** over its steps (an
  attacker must complete every step, so the hardest step gates the path);
* the feasibility of a *threat scenario* is the **maximum** over its paths
  (the attacker picks the easiest path).

Path objects are produced both manually and by the vehicle-architecture
substrate's graph search (:mod:`repro.vehicle.attack_surface`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

from repro.iso21434.enums import AttackVector, FeasibilityRating


@dataclass(frozen=True)
class AttackStep:
    """One step of an attack path.

    Attributes:
        description: what the attacker does, e.g. "connect to OBD port".
        feasibility: rated feasibility of executing this step.
        vector: the attack vector class of this step, if meaningful.
        location: node in the vehicle graph where the step occurs, if any.
    """

    description: str
    feasibility: FeasibilityRating
    vector: Optional[AttackVector] = None
    location: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.description:
            raise ValueError("attack step description must be non-empty")


@dataclass(frozen=True)
class AttackPath:
    """An ordered sequence of attack steps realising a threat scenario."""

    path_id: str
    threat_id: str
    steps: Tuple[AttackStep, ...]

    def __post_init__(self) -> None:
        if not self.path_id:
            raise ValueError("path_id must be non-empty")
        if not self.steps:
            raise ValueError(f"attack path {self.path_id!r} must have >= 1 step")
        object.__setattr__(self, "steps", tuple(self.steps))

    @property
    def feasibility(self) -> FeasibilityRating:
        """Path feasibility: minimum over the step feasibilities."""
        return min((s.feasibility for s in self.steps), key=lambda r: r.level)

    @property
    def entry_vector(self) -> Optional[AttackVector]:
        """The attack vector of the first step (the entry point), if rated."""
        return self.steps[0].vector

    @property
    def length(self) -> int:
        """Number of steps in the path."""
        return len(self.steps)

    def describe(self) -> str:
        """One-line arrow-free description for reports."""
        hops = "; then ".join(s.description for s in self.steps)
        return f"[{self.path_id}] {hops} (feasibility {self.feasibility.label()})"


def threat_feasibility(
    paths: Sequence[AttackPath],
) -> Optional[FeasibilityRating]:
    """Aggregate path feasibilities to a threat-scenario feasibility.

    Returns the maximum path feasibility (attacker picks the easiest path),
    or None when no path is known.
    """
    if not paths:
        return None
    return max((p.feasibility for p in paths), key=lambda r: r.level)


@dataclass
class AttackPathRegistry:
    """Registry of attack paths keyed by ``path_id``."""

    _paths: dict = field(default_factory=dict)

    def register(self, path: AttackPath) -> AttackPath:
        """Register an attack path; rejects duplicate identifiers."""
        if path.path_id in self._paths:
            raise ValueError(f"duplicate attack path id {path.path_id!r}")
        self._paths[path.path_id] = path
        return path

    def register_all(self, paths: Iterable[AttackPath]) -> None:
        """Register many attack paths at once."""
        for path in paths:
            self.register(path)

    def get(self, path_id: str) -> AttackPath:
        """Look up an attack path by id."""
        try:
            return self._paths[path_id]
        except KeyError:
            raise KeyError(f"unknown attack path {path_id!r}") from None

    def __contains__(self, path_id: str) -> bool:
        return path_id in self._paths

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self):
        return iter(self._paths.values())

    def for_threat(self, threat_id: str) -> Tuple[AttackPath, ...]:
        """All registered paths realising the given threat scenario."""
        return tuple(
            p for p in self._paths.values() if p.threat_id == threat_id
        )

    def feasibility_for_threat(
        self, threat_id: str
    ) -> Optional[FeasibilityRating]:
        """Aggregated feasibility for a threat over its registered paths."""
        return threat_feasibility(self.for_threat(threat_id))
