"""Threat scenario identification (ISO/SAE-21434 Clause 15.4).

A threat scenario ties a damage scenario to a way of causing it: which
asset is targeted, which cybersecurity property is violated, through which
attack vector, by which attacker profile, and (for PSP) which social-media
attack keywords describe it in the wild.

:func:`enumerate_stride_threats` provides the systematic STRIDE-based
enumeration the HEAVENS methodology (paper ref. [15]) prescribes: for every
(asset, protected property) pair it proposes the STRIDE threats that
violate that property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple

from repro.iso21434.assets import Asset
from repro.iso21434.enums import (
    AttackerProfile,
    AttackVector,
    CybersecurityProperty,
    StrideCategory,
)


@dataclass(frozen=True)
class ThreatScenario:
    """A way of realising one or more damage scenarios.

    Attributes:
        threat_id: unique identifier, e.g. ``"ts.ecm.reprogramming"``.
        name: short human-readable name.
        asset_id: the targeted asset.
        violated_property: the cybersecurity property violated.
        stride: STRIDE classification of the threat.
        attack_vectors: vectors through which the threat can be realised.
        attacker_profiles: plausible attacker profiles (paper §II taxonomy).
        damage_scenario_ids: damage scenarios this threat can realise.
        keywords: social-media attack keywords/hashtags for PSP lookup
            (e.g. ``("#ecutuning", "#chiptuning")`` for ECM reprogramming).
        description: free-text context for reports.
    """

    threat_id: str
    name: str
    asset_id: str
    violated_property: CybersecurityProperty
    stride: StrideCategory
    attack_vectors: FrozenSet[AttackVector]
    attacker_profiles: FrozenSet[AttackerProfile] = frozenset()
    damage_scenario_ids: Tuple[str, ...] = ()
    keywords: Tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.threat_id:
            raise ValueError("threat_id must be non-empty")
        if not self.attack_vectors:
            raise ValueError(
                f"threat {self.threat_id!r} must have >= 1 attack vector"
            )
        object.__setattr__(self, "attack_vectors", frozenset(self.attack_vectors))
        object.__setattr__(
            self, "attacker_profiles", frozenset(self.attacker_profiles)
        )
        object.__setattr__(
            self, "damage_scenario_ids", tuple(self.damage_scenario_ids)
        )
        object.__setattr__(self, "keywords", tuple(self.keywords))

    @property
    def is_owner_approved(self) -> bool:
        """Whether any plausible attacker profile is owner-approved.

        This is the paper's *insider* notion: attacks the owner is aware of
        and approves (Insider / Rational / Local profiles).  Threats with
        no profile information default to False (treated as outsider, i.e.
        the standard's weights are retained — the conservative choice).
        """
        return any(p.is_owner_approved for p in self.attacker_profiles)


#: STRIDE categories that violate each cybersecurity property.  Used for
#: systematic enumeration; REPUDIATION is excluded because ISO/SAE-21434
#: TARAs rarely treat it as a standalone vehicle-level threat.
_PROPERTY_STRIDE = {
    CybersecurityProperty.INTEGRITY: (
        StrideCategory.SPOOFING,
        StrideCategory.TAMPERING,
        StrideCategory.ELEVATION_OF_PRIVILEGE,
    ),
    CybersecurityProperty.CONFIDENTIALITY: (
        StrideCategory.INFORMATION_DISCLOSURE,
    ),
    CybersecurityProperty.AVAILABILITY: (StrideCategory.DENIAL_OF_SERVICE,),
}


def enumerate_stride_threats(
    asset: Asset,
    *,
    attack_vectors: Iterable[AttackVector],
    attacker_profiles: Iterable[AttackerProfile] = (),
    damage_scenario_ids: Tuple[str, ...] = (),
) -> Tuple[ThreatScenario, ...]:
    """Systematically enumerate STRIDE threat scenarios for an asset.

    For every cybersecurity property the asset protects, one threat
    scenario is generated per STRIDE category capable of violating that
    property.  Identifiers follow ``ts.<asset_id>.<stride>``.
    """
    vectors = frozenset(attack_vectors)
    profiles = frozenset(attacker_profiles)
    threats = []
    for prop in sorted(asset.properties, key=lambda p: p.value):
        for stride in _PROPERTY_STRIDE[prop]:
            threats.append(
                ThreatScenario(
                    threat_id=f"ts.{asset.asset_id}.{stride.value}",
                    name=f"{stride.value.replace('_', ' ').title()} of {asset.name}",
                    asset_id=asset.asset_id,
                    violated_property=prop,
                    stride=stride,
                    attack_vectors=vectors,
                    attacker_profiles=profiles,
                    damage_scenario_ids=damage_scenario_ids,
                )
            )
    return tuple(threats)


@dataclass
class ThreatRegistry:
    """Registry of threat scenarios keyed by ``threat_id``."""

    _threats: dict = field(default_factory=dict)

    def register(self, threat: ThreatScenario) -> ThreatScenario:
        """Register a threat scenario; rejects duplicate identifiers."""
        if threat.threat_id in self._threats:
            raise ValueError(f"duplicate threat id {threat.threat_id!r}")
        self._threats[threat.threat_id] = threat
        return threat

    def register_all(self, threats: Iterable[ThreatScenario]) -> None:
        """Register many threat scenarios at once."""
        for threat in threats:
            self.register(threat)

    def get(self, threat_id: str) -> ThreatScenario:
        """Look up a threat scenario by id."""
        try:
            return self._threats[threat_id]
        except KeyError:
            raise KeyError(f"unknown threat scenario {threat_id!r}") from None

    def __contains__(self, threat_id: str) -> bool:
        return threat_id in self._threats

    def __len__(self) -> int:
        return len(self._threats)

    def __iter__(self):
        return iter(self._threats.values())

    def for_asset(self, asset_id: str) -> Tuple[ThreatScenario, ...]:
        """All threat scenarios targeting the given asset."""
        return tuple(t for t in self._threats.values() if t.asset_id == asset_id)

    def owner_approved(self) -> Tuple[ThreatScenario, ...]:
        """All threats with owner-approved (insider) attacker profiles."""
        return tuple(t for t in self._threats.values() if t.is_owner_approved)

    def with_vector(self, vector: AttackVector) -> Tuple[ThreatScenario, ...]:
        """All threats realisable through the given attack vector."""
        return tuple(
            t for t in self._threats.values() if vector in t.attack_vectors
        )
