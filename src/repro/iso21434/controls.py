"""Cybersecurity controls and residual risk (ISO/SAE-21434 Clause 9/15).

When a risk is treated by *reduction*, cybersecurity controls are
introduced and the TARA is reprocessed with the controls in place: each
control makes some attack steps harder, lowering attack feasibility and
hence the residual risk.  This module models that loop:

* :class:`Control` — a named mitigation with the attack vectors it
  hardens and its strength (how many feasibility levels it removes from
  attacks arriving through those vectors).
* :class:`ControlCatalog` — the canonical automotive controls referenced
  throughout the paper's problem domain (secure boot, flash signing,
  OBD authentication, CAN message authentication à la the authors'
  Ext-Taurum P2T, tamper-evident hardware, gateway filtering).
* :func:`apply_controls` — degrade a weight table under a control set,
  yielding the table to re-run the TARA with.
* :func:`residual_risk` — the post-control risk value for a threat.

Controls never *raise* feasibility and never lower it below Very Low
(property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.iso21434.enums import AttackVector, FeasibilityRating, ImpactRating
from repro.iso21434.feasibility.attack_vector import WeightTable
from repro.iso21434.risk import RiskMatrix, default_matrix


@dataclass(frozen=True)
class Control:
    """One cybersecurity control.

    Attributes:
        control_id: unique identifier, e.g. ``"ctl.secure_boot"``.
        name: human-readable name.
        hardened_vectors: attack vectors this control makes harder.
        strength: feasibility levels removed from attacks arriving via a
            hardened vector (1 = one level, 2 = two levels).
        description: what the control does, for reports.
    """

    control_id: str
    name: str
    hardened_vectors: FrozenSet[AttackVector]
    strength: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if not self.control_id:
            raise ValueError("control_id must be non-empty")
        if not self.hardened_vectors:
            raise ValueError(f"control {self.control_id!r} must harden >= 1 vector")
        if not 1 <= self.strength <= 3:
            raise ValueError(f"strength must be in 1..3, got {self.strength}")
        object.__setattr__(
            self, "hardened_vectors", frozenset(self.hardened_vectors)
        )

    def hardens(self, vector: AttackVector) -> bool:
        """Whether this control hardens the given vector."""
        return vector in self.hardened_vectors


class ControlCatalog:
    """A registry of available controls."""

    def __init__(self, controls: Iterable[Control] = ()) -> None:
        self._controls: Dict[str, Control] = {}
        for control in controls:
            self.add(control)

    def add(self, control: Control) -> Control:
        """Register a control; rejects duplicate identifiers."""
        if control.control_id in self._controls:
            raise ValueError(f"duplicate control id {control.control_id!r}")
        self._controls[control.control_id] = control
        return control

    def get(self, control_id: str) -> Control:
        """Look up a control by id."""
        try:
            return self._controls[control_id]
        except KeyError:
            raise KeyError(f"unknown control {control_id!r}") from None

    def __len__(self) -> int:
        return len(self._controls)

    def __iter__(self):
        return iter(self._controls.values())

    def __contains__(self, control_id: str) -> bool:
        return control_id in self._controls

    def for_vector(self, vector: AttackVector) -> Tuple[Control, ...]:
        """Controls that harden the given vector."""
        return tuple(c for c in self._controls.values() if c.hardens(vector))


def default_catalog() -> ControlCatalog:
    """The canonical automotive control set of the paper's domain."""
    return ControlCatalog(
        [
            Control(
                control_id="ctl.secure_boot",
                name="Secure Boot",
                hardened_vectors=frozenset(
                    {AttackVector.PHYSICAL, AttackVector.LOCAL}
                ),
                strength=1,
                description="Authenticated boot chain rejects modified firmware",
            ),
            Control(
                control_id="ctl.flash_signing",
                name="Signed Flash Updates",
                hardened_vectors=frozenset(
                    {AttackVector.PHYSICAL, AttackVector.LOCAL,
                     AttackVector.NETWORK}
                ),
                strength=1,
                description="Reprogramming requires OEM-signed images",
            ),
            Control(
                control_id="ctl.obd_auth",
                name="Authenticated OBD Access",
                hardened_vectors=frozenset({AttackVector.LOCAL}),
                strength=2,
                description="Diagnostic services gated by challenge-response",
            ),
            Control(
                control_id="ctl.can_auth",
                name="CAN Message Authentication",
                hardened_vectors=frozenset(
                    {AttackVector.LOCAL, AttackVector.ADJACENT}
                ),
                strength=1,
                description="MAC-protected frames on the powertrain CAN",
            ),
            Control(
                control_id="ctl.tamper_evidence",
                name="Tamper-Evident Hardware",
                hardened_vectors=frozenset({AttackVector.PHYSICAL}),
                strength=1,
                description="Seals and sensors make bench access detectable",
            ),
            Control(
                control_id="ctl.gateway_filtering",
                name="Gateway Traffic Filtering",
                hardened_vectors=frozenset(
                    {AttackVector.NETWORK, AttackVector.ADJACENT}
                ),
                strength=2,
                description="Domain gateway drops unauthorised cross-domain traffic",
            ),
        ]
    )


def apply_controls(
    table: WeightTable, controls: Iterable[Control]
) -> WeightTable:
    """Degrade a weight table under a set of deployed controls.

    Each vector's rating is lowered by the summed strength of the
    controls hardening it, saturating at Very Low.  Returns a new table
    with provenance recorded in ``source``/``note``.
    """
    control_list = list(controls)
    reductions: Dict[AttackVector, int] = {v: 0 for v in AttackVector}
    for control in control_list:
        for vector in control.hardened_vectors:
            reductions[vector] += control.strength
    ratings = {
        vector: FeasibilityRating.clamp(
            table.rating(vector).level - reductions[vector]
        )
        for vector in AttackVector
    }
    names = ", ".join(sorted(c.name for c in control_list)) or "none"
    return WeightTable(
        ratings,
        source=f"{table.source}+controls",
        note=f"controls applied: {names}",
    )


@dataclass(frozen=True)
class ResidualRiskRecord:
    """Risk before and after a control set, for one threat vector."""

    vector: AttackVector
    impact: ImpactRating
    initial_feasibility: FeasibilityRating
    residual_feasibility: FeasibilityRating
    initial_risk: int
    residual_risk: int

    @property
    def risk_reduction(self) -> int:
        """Risk levels removed by the controls (>= 0)."""
        return self.initial_risk - self.residual_risk


def residual_risk(
    vector: AttackVector,
    impact: ImpactRating,
    table: WeightTable,
    controls: Iterable[Control],
    *,
    matrix: Optional[RiskMatrix] = None,
) -> ResidualRiskRecord:
    """Compute the before/after risk for one threat vector.

    Args:
        vector: the attack vector the threat uses.
        impact: the threat's overall impact rating.
        table: the (possibly PSP-tuned) weight table in force.
        controls: deployed controls.
        matrix: risk matrix (default matrix if None).
    """
    resolved = matrix or default_matrix()
    hardened = apply_controls(table, controls)
    initial_feasibility = table.rating(vector)
    residual_feasibility = hardened.rating(vector)
    return ResidualRiskRecord(
        vector=vector,
        impact=impact,
        initial_feasibility=initial_feasibility,
        residual_feasibility=residual_feasibility,
        initial_risk=resolved.risk_value(impact, initial_feasibility),
        residual_risk=resolved.risk_value(impact, residual_feasibility),
    )


def select_controls_for_target(
    vector: AttackVector,
    impact: ImpactRating,
    table: WeightTable,
    catalog: ControlCatalog,
    *,
    target_risk: int,
    matrix: Optional[RiskMatrix] = None,
) -> Optional[List[Control]]:
    """Greedy control selection to push a threat's risk to ``target_risk``.

    Controls hardening the threat's vector are applied strongest-first
    until the residual risk reaches the target.  Returns the selected
    list, or None when the catalog cannot reach the target (e.g. the
    impact floor of the risk matrix is above it).
    """
    if not 1 <= target_risk <= 5:
        raise ValueError(f"target_risk must be in 1..5, got {target_risk}")
    candidates = sorted(
        catalog.for_vector(vector), key=lambda c: (-c.strength, c.control_id)
    )
    selected: List[Control] = []
    for control in candidates:
        record = residual_risk(vector, impact, table, selected, matrix=matrix)
        if record.residual_risk <= target_risk:
            break
        selected.append(control)
    record = residual_risk(vector, impact, table, selected, matrix=matrix)
    if record.residual_risk <= target_risk:
        return selected
    return None
