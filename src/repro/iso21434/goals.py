"""Cybersecurity goals and claims (ISO/SAE-21434 Clause 9.4).

When a risk is treated by *reduction*, the TARA yields cybersecurity
goals — top-level security requirements for the concept phase.  When a
risk is *retained* or *shared*, the rationale is recorded as a
cybersecurity claim.  Goals carry the CAL assigned to the threat so that
downstream development knows the assurance rigour required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.iso21434.enums import CAL, CybersecurityProperty
from repro.iso21434.treatment import TreatmentOption


@dataclass(frozen=True)
class CybersecurityGoal:
    """A top-level security requirement derived from a treated risk."""

    goal_id: str
    threat_id: str
    statement: str
    protected_property: CybersecurityProperty
    cal: CAL

    def __post_init__(self) -> None:
        if not self.goal_id:
            raise ValueError("goal_id must be non-empty")
        if not self.statement:
            raise ValueError("goal statement must be non-empty")


@dataclass(frozen=True)
class CybersecurityClaim:
    """A recorded rationale for retaining or sharing a risk."""

    claim_id: str
    threat_id: str
    rationale: str
    treatment: TreatmentOption

    def __post_init__(self) -> None:
        if self.treatment not in (TreatmentOption.RETAIN, TreatmentOption.SHARE):
            raise ValueError(
                "claims are only recorded for retained or shared risks, "
                f"got {self.treatment.value}"
            )


def goal_from_threat(
    threat_id: str,
    threat_name: str,
    protected_property: CybersecurityProperty,
    cal: CAL,
) -> CybersecurityGoal:
    """Derive a goal statement for a reduced risk.

    The statement follows the conventional template "The item shall
    preserve the <property> of <threatened element>".
    """
    return CybersecurityGoal(
        goal_id=f"cg.{threat_id}",
        threat_id=threat_id,
        statement=(
            f"The item shall preserve the {protected_property.value} "
            f"threatened by '{threat_name}'"
        ),
        protected_property=protected_property,
        cal=cal,
    )


@dataclass
class GoalRegistry:
    """Registry of goals and claims produced by a TARA run."""

    _goals: dict = field(default_factory=dict)
    _claims: dict = field(default_factory=dict)

    def add_goal(self, goal: CybersecurityGoal) -> CybersecurityGoal:
        """Record a cybersecurity goal; rejects duplicates."""
        if goal.goal_id in self._goals:
            raise ValueError(f"duplicate goal id {goal.goal_id!r}")
        self._goals[goal.goal_id] = goal
        return goal

    def add_claim(self, claim: CybersecurityClaim) -> CybersecurityClaim:
        """Record a cybersecurity claim; rejects duplicates."""
        if claim.claim_id in self._claims:
            raise ValueError(f"duplicate claim id {claim.claim_id!r}")
        self._claims[claim.claim_id] = claim
        return claim

    @property
    def goals(self) -> Tuple[CybersecurityGoal, ...]:
        """All recorded goals."""
        return tuple(self._goals.values())

    @property
    def claims(self) -> Tuple[CybersecurityClaim, ...]:
        """All recorded claims."""
        return tuple(self._claims.values())

    def goals_for_threat(self, threat_id: str) -> Tuple[CybersecurityGoal, ...]:
        """Goals derived from the given threat scenario."""
        return tuple(g for g in self._goals.values() if g.threat_id == threat_id)

    def highest_cal(self) -> CAL:
        """The most demanding CAL over all goals (NONE if no goals)."""
        if not self._goals:
            return CAL.NONE
        return max((g.cal for g in self._goals.values()), key=lambda c: c.level)
