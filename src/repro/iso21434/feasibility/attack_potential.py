"""Attack-potential-based feasibility model (ISO/SAE-21434 Annex G, paper Fig. 3).

The attack-potential approach is inherited from Common Criteria / ISO/IEC
18045.  An attack is described by five core factors; each factor level
carries a fixed weight (paper Fig. 3 — "Attack Potential weights model
extracted by ISO/SAE-21434").  The weights sum to an *attack potential
value*: the higher the value, the harder the attack and the lower its
feasibility.

Factor levels and weights (ISO/IEC 18045 table B.3, as adopted by
ISO/SAE-21434 Annex G):

=====================  ==============================================
Factor                 Levels (weight)
=====================  ==============================================
Elapsed time           ≤1 week (0), ≤1 month (1), ≤6 months (4),
                       ≤3 years (10), >3 years (19)
Specialist expertise   Layman (0), Proficient (3), Expert (6),
                       Multiple experts (8)
Knowledge of the item  Public (0), Restricted (3), Confidential (7),
                       Strictly confidential (11)
Window of opportunity  Unlimited (0), Easy (1), Moderate (4),
                       Difficult (10)
Equipment              Standard (0), Specialized (4), Bespoke (7),
                       Multiple bespoke (9)
=====================  ==============================================

The aggregate value maps to a feasibility rating (Annex G mapping):

=============  ===================
Sum of weights Feasibility rating
=============  ===================
0 – 13         High
14 – 19        Medium
20 – 24        Low
≥ 25           Very Low
=============  ===================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.iso21434.enums import FeasibilityRating
from repro.iso21434.feasibility.base import FeasibilityModel


class ElapsedTime(enum.Enum):
    """Time required to identify and exploit the vulnerability."""

    ONE_WEEK = 0
    ONE_MONTH = 1
    SIX_MONTHS = 4
    THREE_YEARS = 10
    MORE_THAN_THREE_YEARS = 19

    @property
    def weight(self) -> int:
        """Attack-potential weight contributed by this level."""
        return int(self.value)


class Expertise(enum.Enum):
    """Specialist expertise required of the attacker."""

    LAYMAN = 0
    PROFICIENT = 3
    EXPERT = 6
    MULTIPLE_EXPERTS = 8

    @property
    def weight(self) -> int:
        """Attack-potential weight contributed by this level."""
        return int(self.value)


class Knowledge(enum.Enum):
    """Knowledge of the item or component required by the attacker."""

    PUBLIC = 0
    RESTRICTED = 3
    CONFIDENTIAL = 7
    STRICTLY_CONFIDENTIAL = 11

    @property
    def weight(self) -> int:
        """Attack-potential weight contributed by this level."""
        return int(self.value)


class WindowOfOpportunity(enum.Enum):
    """Access conditions (time pressure, physical access constraints)."""

    UNLIMITED = 0
    EASY = 1
    MODERATE = 4
    DIFFICULT = 10

    @property
    def weight(self) -> int:
        """Attack-potential weight contributed by this level."""
        return int(self.value)


class Equipment(enum.Enum):
    """Equipment required to exploit the vulnerability."""

    STANDARD = 0
    SPECIALIZED = 4
    BESPOKE = 7
    MULTIPLE_BESPOKE = 9

    @property
    def weight(self) -> int:
        """Attack-potential weight contributed by this level."""
        return int(self.value)


#: Rating thresholds: (inclusive upper bound on the sum, rating).
_THRESHOLDS = (
    (13, FeasibilityRating.HIGH),
    (19, FeasibilityRating.MEDIUM),
    (24, FeasibilityRating.LOW),
)


@dataclass(frozen=True)
class AttackPotentialInput:
    """The five core factors describing one attack for this model."""

    elapsed_time: ElapsedTime
    expertise: Expertise
    knowledge: Knowledge
    window: WindowOfOpportunity
    equipment: Equipment

    @property
    def potential_value(self) -> int:
        """Sum of the five factor weights (the attack-potential value)."""
        return (
            self.elapsed_time.weight
            + self.expertise.weight
            + self.knowledge.weight
            + self.window.weight
            + self.equipment.weight
        )


def rating_from_potential(value: int) -> FeasibilityRating:
    """Map an attack-potential value to a feasibility rating.

    Args:
        value: sum of factor weights; must be non-negative.

    Returns:
        The feasibility rating per the Annex G mapping table.
    """
    if value < 0:
        raise ValueError(f"attack potential value must be >= 0, got {value}")
    for upper, rating in _THRESHOLDS:
        if value <= upper:
            return rating
    return FeasibilityRating.VERY_LOW


class AttackPotentialModel(FeasibilityModel):
    """Attack-potential-based feasibility model (paper Fig. 3)."""

    name = "attack-potential"

    def rate(self, attack: AttackPotentialInput) -> FeasibilityRating:
        """Rate feasibility from the five core factors."""
        if not isinstance(attack, AttackPotentialInput):
            raise TypeError(
                "AttackPotentialModel rates AttackPotentialInput, "
                f"got {type(attack).__name__}"
            )
        return rating_from_potential(attack.potential_value)

    def potential_value(self, attack: AttackPotentialInput) -> int:
        """Expose the raw attack-potential value for reporting."""
        return attack.potential_value
