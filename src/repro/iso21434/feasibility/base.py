"""Common interface for the three ISO/SAE-21434 attack-feasibility models.

ISO/SAE-21434 Clause 15.8 permits three approaches to rating attack
feasibility (paper §II):

* the **attack-potential-based** approach (Common Criteria style, paper
  Fig. 3) — :mod:`repro.iso21434.feasibility.attack_potential`;
* the **CVSS-based** approach (exploitability sub-score) —
  :mod:`repro.iso21434.feasibility.cvss`;
* the **attack-vector-based** approach (paper Fig. 5) —
  :mod:`repro.iso21434.feasibility.attack_vector`.

Every model maps a model-specific input description of an attack to a
:class:`~repro.iso21434.enums.FeasibilityRating`.  The PSP framework plugs
in at this layer: it keeps the model structure but replaces the *fixed*
vector→rating table with dynamically tuned weights for insider threats.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.iso21434.enums import FeasibilityRating


class FeasibilityModel(abc.ABC):
    """Abstract attack-feasibility model.

    Concrete models implement :meth:`rate` taking a model-specific
    description of an attack and returning a feasibility rating.
    """

    #: Short machine-readable model identifier, e.g. ``"attack-vector"``.
    name: str = "abstract"

    @abc.abstractmethod
    def rate(self, attack: Any) -> FeasibilityRating:
        """Rate the feasibility of ``attack``."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
