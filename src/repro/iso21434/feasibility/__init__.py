"""Attack-feasibility models of ISO/SAE-21434 Clause 15.8.

Three interchangeable models (paper §II):

* :class:`AttackPotentialModel` — Common-Criteria-style factor weights
  (paper Fig. 3).
* :class:`CvssModel` — CVSS v3.1 exploitability banding.
* :class:`AttackVectorModel` — fixed vector→rating table G.9 (paper
  Fig. 5); the table the PSP framework re-tunes dynamically.
"""

from repro.iso21434.feasibility.attack_potential import (
    AttackPotentialInput,
    AttackPotentialModel,
    ElapsedTime,
    Equipment,
    Expertise,
    Knowledge,
    WindowOfOpportunity,
    rating_from_potential,
)
from repro.iso21434.feasibility.attack_vector import (
    STANDARD_G9_TABLE,
    AttackVectorModel,
    WeightTable,
    standard_table,
)
from repro.iso21434.feasibility.base import FeasibilityModel
from repro.iso21434.feasibility.cvss import (
    AttackComplexity,
    CvssModel,
    CvssVector,
    PrivilegesRequired,
    UserInteraction,
    rating_from_exploitability,
)

__all__ = [
    "AttackComplexity",
    "AttackPotentialInput",
    "AttackPotentialModel",
    "AttackVectorModel",
    "CvssModel",
    "CvssVector",
    "ElapsedTime",
    "Equipment",
    "Expertise",
    "FeasibilityModel",
    "Knowledge",
    "PrivilegesRequired",
    "STANDARD_G9_TABLE",
    "UserInteraction",
    "WeightTable",
    "WindowOfOpportunity",
    "rating_from_exploitability",
    "rating_from_potential",
    "standard_table",
]
