"""CVSS-based feasibility model (ISO/SAE-21434 Annex G, CVSS v3.1).

ISO/SAE-21434 allows deriving attack feasibility from the *exploitability*
sub-score of CVSS v3.1:

    exploitability = 8.22 x AV x AC x PR x UI

with the standard CVSS v3.1 metric coefficients.  The exploitability score
ranges over (0, 3.89]; ISO/SAE-21434 maps score bands to feasibility
ratings.  The exact band boundaries are not reprinted in the PSP paper, so
this module uses the widely documented banding (recorded in DESIGN.md as a
reconstruction):

==================  ===================
Exploitability E    Feasibility rating
==================  ===================
E < 1.0             Very Low
1.0 <= E < 2.0      Low
2.0 <= E < 2.96     Medium
E >= 2.96           High
==================  ===================

The band edges are chosen so that the canonical extremes agree with the
attack-vector table: a network/low-complexity/no-privilege/no-interaction
attack scores 3.89 (High) and a physical/high-complexity/high-privilege/
user-interaction attack scores 0.16 (Very Low).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.base import FeasibilityModel

#: CVSS v3.1 Attack Vector coefficients.
_AV_COEFF = {
    AttackVector.NETWORK: 0.85,
    AttackVector.ADJACENT: 0.62,
    AttackVector.LOCAL: 0.55,
    AttackVector.PHYSICAL: 0.20,
}


class AttackComplexity(enum.Enum):
    """CVSS v3.1 Attack Complexity (AC) metric."""

    LOW = 0.77
    HIGH = 0.44

    @property
    def coefficient(self) -> float:
        """CVSS coefficient for this metric value."""
        return float(self.value)


class PrivilegesRequired(enum.Enum):
    """CVSS v3.1 Privileges Required (PR) metric (unchanged scope)."""

    NONE = 0.85
    LOW = 0.62
    HIGH = 0.27

    @property
    def coefficient(self) -> float:
        """CVSS coefficient for this metric value."""
        return float(self.value)


class UserInteraction(enum.Enum):
    """CVSS v3.1 User Interaction (UI) metric."""

    NONE = 0.85
    REQUIRED = 0.62

    @property
    def coefficient(self) -> float:
        """CVSS coefficient for this metric value."""
        return float(self.value)


@dataclass(frozen=True)
class CvssVector:
    """The four CVSS v3.1 exploitability metrics describing one attack."""

    attack_vector: AttackVector
    attack_complexity: AttackComplexity = AttackComplexity.LOW
    privileges_required: PrivilegesRequired = PrivilegesRequired.NONE
    user_interaction: UserInteraction = UserInteraction.NONE

    @property
    def exploitability(self) -> float:
        """CVSS v3.1 exploitability sub-score (8.22 x AV x AC x PR x UI)."""
        return (
            8.22
            * _AV_COEFF[self.attack_vector]
            * self.attack_complexity.coefficient
            * self.privileges_required.coefficient
            * self.user_interaction.coefficient
        )


#: Band boundaries: (exclusive upper bound, rating).
_BANDS = (
    (1.0, FeasibilityRating.VERY_LOW),
    (2.0, FeasibilityRating.LOW),
    (2.96, FeasibilityRating.MEDIUM),
)


def rating_from_exploitability(score: float) -> FeasibilityRating:
    """Map a CVSS exploitability score to a feasibility rating."""
    if score < 0:
        raise ValueError(f"exploitability must be >= 0, got {score}")
    for upper, rating in _BANDS:
        if score < upper:
            return rating
    return FeasibilityRating.HIGH


class CvssModel(FeasibilityModel):
    """CVSS-based attack-feasibility model."""

    name = "cvss"

    def rate(self, attack: CvssVector) -> FeasibilityRating:
        """Rate feasibility from the CVSS exploitability metrics."""
        if not isinstance(attack, CvssVector):
            raise TypeError(
                f"CvssModel rates CvssVector inputs, got {type(attack).__name__}"
            )
        return rating_from_exploitability(attack.exploitability)

    def exploitability(self, attack: CvssVector) -> float:
        """Expose the raw exploitability sub-score for reporting."""
        return attack.exploitability
