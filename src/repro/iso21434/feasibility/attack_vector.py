"""Attack-vector-based feasibility model (ISO/SAE-21434 Annex G, table G.9).

This is the model the PSP paper centres on (Fig. 5 and Fig. 9-A).  The
standard assigns a *fixed* feasibility rating to each attack vector:

======== ===================
Vector   Feasibility rating
======== ===================
Network  High
Adjacent Medium
Local    Low
Physical Very Low
======== ===================

The table encodes an enterprise-IT worldview: remote attacks are considered
easy, physical attacks hard.  The PSP paper's argument (§II) is that for
powertrain ECUs — attacked by their own Insider/Rational-Local owners with
unlimited physical access — this static mapping *inverts* reality.

:class:`AttackVectorModel` supports replacing the default table with a tuned
:class:`WeightTable`, which is exactly what the PSP framework generates for
insider threat scenarios (paper Fig. 8-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.base import FeasibilityModel

#: The standard's fixed table G.9 (paper Fig. 5 / Fig. 9-A).
STANDARD_G9_TABLE: Mapping[AttackVector, FeasibilityRating] = {
    AttackVector.NETWORK: FeasibilityRating.HIGH,
    AttackVector.ADJACENT: FeasibilityRating.MEDIUM,
    AttackVector.LOCAL: FeasibilityRating.LOW,
    AttackVector.PHYSICAL: FeasibilityRating.VERY_LOW,
}


@dataclass(frozen=True)
class WeightTable:
    """An attack-vector → feasibility-rating table.

    Instances are immutable; tuning produces a *new* table.  ``source``
    records provenance ("iso21434-g9" for the standard's table, "psp" for a
    PSP-tuned table) and ``note`` carries free-text context such as the time
    window used for tuning.
    """

    ratings: Mapping[AttackVector, FeasibilityRating]
    source: str = "iso21434-g9"
    note: str = ""

    def __post_init__(self) -> None:
        missing = [v for v in AttackVector if v not in self.ratings]
        if missing:
            names = ", ".join(v.value for v in missing)
            raise ValueError(f"WeightTable missing vectors: {names}")
        # Freeze the mapping so the dataclass is genuinely immutable.
        object.__setattr__(self, "ratings", dict(self.ratings))

    def rating(self, vector: AttackVector) -> FeasibilityRating:
        """Return the feasibility rating assigned to ``vector``."""
        return self.ratings[vector]

    def with_rating(
        self, vector: AttackVector, rating: FeasibilityRating, *, source: str, note: str = ""
    ) -> "WeightTable":
        """Return a copy of this table with one vector's rating replaced."""
        updated: Dict[AttackVector, FeasibilityRating] = dict(self.ratings)
        updated[vector] = rating
        return WeightTable(updated, source=source, note=note or self.note)

    def ranked_vectors(self) -> Tuple[AttackVector, ...]:
        """Vectors sorted by descending feasibility (ties broken by reach)."""
        return tuple(
            sorted(
                AttackVector,
                key=lambda v: (self.ratings[v].level, v.reach),
                reverse=True,
            )
        )

    def items(self) -> Iterator[Tuple[AttackVector, FeasibilityRating]]:
        """Iterate ``(vector, rating)`` pairs in standard table order."""
        for vector in (
            AttackVector.NETWORK,
            AttackVector.ADJACENT,
            AttackVector.LOCAL,
            AttackVector.PHYSICAL,
        ):
            yield vector, self.ratings[vector]

    def as_rows(self) -> Tuple[Tuple[str, str], ...]:
        """Render as ``(vector-label, rating-label)`` rows for reports."""
        return tuple((v.value.capitalize(), r.label()) for v, r in self.items())

    def differs_from(self, other: "WeightTable") -> Tuple[AttackVector, ...]:
        """Vectors whose rating differs between this table and ``other``."""
        return tuple(
            v for v in AttackVector if self.ratings[v] is not other.ratings[v]
        )


def standard_table() -> WeightTable:
    """Return a fresh copy of the standard's fixed G.9 table (Fig. 9-A)."""
    return WeightTable(dict(STANDARD_G9_TABLE), source="iso21434-g9",
                       note="ISO/SAE-21434 table G.9 (static)")


@dataclass
class AttackVectorModel(FeasibilityModel):
    """Attack-vector-based feasibility model.

    By default uses the standard's fixed table; a PSP-tuned
    :class:`WeightTable` can be supplied (or swapped later via
    :meth:`retune`) to obtain the dynamic behaviour of paper Fig. 8-B.
    """

    table: WeightTable = field(default_factory=standard_table)
    name: str = "attack-vector"

    def rate(self, attack: AttackVector) -> FeasibilityRating:
        """Rate feasibility of an attack given its attack vector."""
        if not isinstance(attack, AttackVector):
            raise TypeError(
                f"AttackVectorModel rates AttackVector inputs, got {type(attack).__name__}"
            )
        return self.table.rating(attack)

    def retune(self, table: WeightTable) -> Optional[WeightTable]:
        """Replace the weight table, returning the previous one."""
        previous = self.table
        self.table = table
        return previous
