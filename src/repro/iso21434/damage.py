"""Damage scenarios (ISO/SAE-21434 Clause 15.3).

A damage scenario describes the adverse consequence at vehicle level of
compromising a cybersecurity property of an asset — e.g. "loss of engine
control while driving" from compromising ECM firmware integrity.  Each
damage scenario carries an :class:`~repro.iso21434.impact.ImpactProfile`
rating its consequences in the S/F/O/P categories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

from repro.iso21434.enums import CybersecurityProperty, ImpactRating
from repro.iso21434.impact import ImpactProfile


@dataclass(frozen=True)
class DamageScenario:
    """A vehicle-level adverse consequence of compromising an asset.

    Attributes:
        scenario_id: unique identifier, e.g. ``"ds.ecm.loss_of_control"``.
        description: what goes wrong at vehicle level.
        asset_id: the compromised asset.
        violated_property: which cybersecurity property is violated.
        impact: per-category S/F/O/P impact profile.
    """

    scenario_id: str
    description: str
    asset_id: str
    violated_property: CybersecurityProperty
    impact: ImpactProfile

    def __post_init__(self) -> None:
        if not self.scenario_id:
            raise ValueError("scenario_id must be non-empty")
        if not self.asset_id:
            raise ValueError("asset_id must be non-empty")

    @property
    def overall_impact(self) -> ImpactRating:
        """Overall (max-over-category) impact rating."""
        return self.impact.overall


@dataclass
class DamageRegistry:
    """Registry of damage scenarios keyed by ``scenario_id``."""

    _scenarios: dict = field(default_factory=dict)

    def register(self, scenario: DamageScenario) -> DamageScenario:
        """Register a damage scenario; rejects duplicate identifiers."""
        if scenario.scenario_id in self._scenarios:
            raise ValueError(f"duplicate damage scenario id {scenario.scenario_id!r}")
        self._scenarios[scenario.scenario_id] = scenario
        return scenario

    def register_all(self, scenarios: Iterable[DamageScenario]) -> None:
        """Register many damage scenarios at once."""
        for scenario in scenarios:
            self.register(scenario)

    def get(self, scenario_id: str) -> DamageScenario:
        """Look up a damage scenario by id."""
        try:
            return self._scenarios[scenario_id]
        except KeyError:
            raise KeyError(f"unknown damage scenario {scenario_id!r}") from None

    def __contains__(self, scenario_id: str) -> bool:
        return scenario_id in self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)

    def __iter__(self):
        return iter(self._scenarios.values())

    def for_asset(self, asset_id: str) -> Tuple[DamageScenario, ...]:
        """All damage scenarios attached to the given asset."""
        return tuple(
            s for s in self._scenarios.values() if s.asset_id == asset_id
        )
