"""Risk treatment decisions (ISO/SAE-21434 Clause 15.10).

For each risk value the organisation decides one of four treatment
options: avoid the risk, reduce it (by introducing controls), share it
(contracts/insurance) or retain it.  This module implements a simple,
configurable policy: retain at low risk values, reduce in the middle of
the range, avoid at the top; sharing is selected for financially-dominated
impacts where transfer is meaningful.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.iso21434.enums import ImpactCategory
from repro.iso21434.impact import ImpactProfile
from repro.iso21434.risk import MAX_RISK_VALUE, MIN_RISK_VALUE


class TreatmentOption(enum.Enum):
    """The four ISO/SAE-21434 risk-treatment options."""

    AVOID = "avoid"
    REDUCE = "reduce"
    SHARE = "share"
    RETAIN = "retain"


@dataclass(frozen=True)
class TreatmentPolicy:
    """Thresholded risk-treatment policy.

    Attributes:
        retain_max: highest risk value that is retained without action.
        reduce_max: highest risk value treated by reduction; anything above
            is avoided (redesign / feature removal).
        share_financial: if True, risks whose dominant impact category is
            financial and that would otherwise be *reduced* are shared
            instead (risk transfer is meaningful for monetary damage only).
    """

    retain_max: int = 2
    reduce_max: int = 4
    share_financial: bool = True

    def __post_init__(self) -> None:
        if not MIN_RISK_VALUE <= self.retain_max <= MAX_RISK_VALUE:
            raise ValueError(f"retain_max out of range: {self.retain_max}")
        if not self.retain_max <= self.reduce_max <= MAX_RISK_VALUE:
            raise ValueError(
                f"reduce_max must be in [{self.retain_max}, {MAX_RISK_VALUE}], "
                f"got {self.reduce_max}"
            )

    def decide(
        self, risk_value: int, impact: ImpactProfile = None
    ) -> TreatmentOption:
        """Select a treatment option for ``risk_value``.

        Args:
            risk_value: risk value 1..5.
            impact: optional impact profile; used to route financially
                dominated medium risks to SHARE when enabled.
        """
        if not MIN_RISK_VALUE <= risk_value <= MAX_RISK_VALUE:
            raise ValueError(
                f"risk value must be in [{MIN_RISK_VALUE}, {MAX_RISK_VALUE}], "
                f"got {risk_value}"
            )
        if risk_value <= self.retain_max:
            return TreatmentOption.RETAIN
        if risk_value <= self.reduce_max:
            if (
                self.share_financial
                and impact is not None
                and impact.dominant_category is ImpactCategory.FINANCIAL
            ):
                return TreatmentOption.SHARE
            return TreatmentOption.REDUCE
        return TreatmentOption.AVOID


_DEFAULT = TreatmentPolicy()


def decide_treatment(
    risk_value: int, impact: ImpactProfile = None, policy: TreatmentPolicy = None
) -> TreatmentOption:
    """Decide a treatment with ``policy`` (module default if None)."""
    return (policy or _DEFAULT).decide(risk_value, impact)
