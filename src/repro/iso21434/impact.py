"""Impact rating (ISO/SAE-21434 Clause 15.5).

Damage scenarios are rated independently in four categories — Safety,
Financial, Operational, Privacy (S/F/O/P) — each on the four-level
:class:`~repro.iso21434.enums.ImpactRating` scale.  The overall impact of a
damage scenario is the maximum over the rated categories, which is the
aggregation the standard's informative annexes use for CAL and risk
determination.

Safety impact ratings can also be derived from ISO-26262 severity classes
(S0..S3) via :func:`impact_from_severity_class`, reflecting the standard's
alignment with functional safety.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.iso21434.enums import ImpactCategory, ImpactRating


@dataclass(frozen=True)
class ImpactProfile:
    """Per-category impact ratings for one damage scenario.

    Unrated categories default to :attr:`ImpactRating.NEGLIGIBLE`.
    """

    ratings: Mapping[ImpactCategory, ImpactRating] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "ratings", dict(self.ratings))

    def rating(self, category: ImpactCategory) -> ImpactRating:
        """Impact rating for ``category`` (NEGLIGIBLE if unrated)."""
        return self.ratings.get(category, ImpactRating.NEGLIGIBLE)

    @property
    def overall(self) -> ImpactRating:
        """Overall impact: the maximum over all categories."""
        if not self.ratings:
            return ImpactRating.NEGLIGIBLE
        return max(self.ratings.values(), key=lambda r: r.level)

    @property
    def dominant_category(self) -> Optional[ImpactCategory]:
        """The category achieving the overall rating (None if all unrated).

        Ties are broken in the fixed order Safety > Financial > Operational
        > Privacy, matching the standard's emphasis on safety impact.
        """
        if not self.ratings:
            return None
        order = (
            ImpactCategory.SAFETY,
            ImpactCategory.FINANCIAL,
            ImpactCategory.OPERATIONAL,
            ImpactCategory.PRIVACY,
        )
        overall = self.overall
        for category in order:
            if self.rating(category) is overall:
                return category
        return None

    def merged_with(self, other: "ImpactProfile") -> "ImpactProfile":
        """Category-wise maximum of two profiles.

        Used when several damage scenarios attach to one threat scenario:
        the threat inherits the worst impact per category.
        """
        merged: Dict[ImpactCategory, ImpactRating] = {}
        for category in ImpactCategory:
            mine = self.rating(category)
            theirs = other.rating(category)
            worst = mine if mine >= theirs else theirs
            if worst is not ImpactRating.NEGLIGIBLE:
                merged[category] = worst
        return ImpactProfile(merged)

    def as_rows(self) -> tuple:
        """Render as ``(category, rating-label)`` rows for reports."""
        return tuple(
            (category.value, self.rating(category).label())
            for category in ImpactCategory
        )


def safety_impact(rating: ImpactRating) -> ImpactProfile:
    """Shorthand for a profile with only a safety rating."""
    return ImpactProfile({ImpactCategory.SAFETY: rating})


def impact_from_severity_class(severity: int) -> ImpactRating:
    """Map an ISO-26262 severity class (S0..S3) to a safety impact rating.

    S0 (no injuries) → Negligible, S1 (light/moderate) → Moderate,
    S2 (severe, survival probable) → Major, S3 (life-threatening) → Severe.
    """
    mapping = {
        0: ImpactRating.NEGLIGIBLE,
        1: ImpactRating.MODERATE,
        2: ImpactRating.MAJOR,
        3: ImpactRating.SEVERE,
    }
    if severity not in mapping:
        raise ValueError(f"severity class must be 0..3, got {severity}")
    return mapping[severity]
