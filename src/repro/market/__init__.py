"""Market-data substrate: sales, annual reports and price listings.

The substitutions for the proprietary data sources the paper's financial
model consumes (sales databases, the Upstream annual report, online
device listings) — see DESIGN.md.
"""

from repro.market.pricing import (
    DEFAULT_VCU,
    PriceCatalog,
    PriceListing,
    default_price_catalog,
    variable_cost,
)
from repro.market.reports import (
    AnnualReport,
    IncidentStats,
    ReportLibrary,
    default_report_library,
)
from repro.market.sales import SalesDatabase, SalesRecord, default_sales_database
from repro.market.trends import TrendFit, fit_trend, projected_attackers, sales_trend

__all__ = [
    "AnnualReport",
    "DEFAULT_VCU",
    "IncidentStats",
    "PriceCatalog",
    "PriceListing",
    "ReportLibrary",
    "SalesDatabase",
    "SalesRecord",
    "TrendFit",
    "default_price_catalog",
    "fit_trend",
    "projected_attackers",
    "sales_trend",
    "default_report_library",
    "default_sales_database",
    "variable_cost",
]
