"""Sales-trend analysis and projection.

Eq. 2 of the paper ties PAE to "past year's vehicle sales (VS) *trend
reports*" — the attacker-population estimate should track where the fleet
is going, not just last year's snapshot.  This module fits a least-squares
linear trend to a sales series and projects the next years, so the
financial model can be evaluated forward ("what is the DPF-tampering
market worth in two years if sales keep growing?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.market.sales import SalesDatabase


@dataclass(frozen=True)
class TrendFit:
    """A least-squares linear fit over a (year, units) series."""

    slope: float
    intercept: float
    observations: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "observations", tuple(self.observations))

    @property
    def direction(self) -> str:
        """"growing", "shrinking" or "flat"."""
        if self.slope > 1e-9:
            return "growing"
        if self.slope < -1e-9:
            return "shrinking"
        return "flat"

    def predict(self, year: int) -> float:
        """Projected unit sales for ``year`` (clamped at zero)."""
        return max(0.0, self.slope * year + self.intercept)

    def residuals(self) -> List[float]:
        """Fit residuals per observation (observed minus predicted)."""
        return [units - self.predict(year) for year, units in self.observations]


def fit_trend(series: Sequence[Tuple[int, int]]) -> TrendFit:
    """Fit a least-squares line to a (year, units) series.

    Raises:
        ValueError: with fewer than two observations (no trend exists).
    """
    if len(series) < 2:
        raise ValueError(f"need >= 2 observations to fit a trend, got {len(series)}")
    years = [float(year) for year, _ in series]
    units = [float(u) for _, u in series]
    n = len(series)
    mean_x = sum(years) / n
    mean_y = sum(units) / n
    denominator = sum((x - mean_x) ** 2 for x in years)
    if denominator == 0:
        raise ValueError("all observations share one year; no trend exists")
    slope = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(years, units)
    ) / denominator
    intercept = mean_y - slope * mean_x
    return TrendFit(
        slope=slope,
        intercept=intercept,
        observations=tuple((int(year), int(u)) for year, u in series),
    )


def sales_trend(
    database: SalesDatabase, application: str, region: str
) -> TrendFit:
    """Fit the sales trend for one application/region from the database."""
    series = database.trend(application, region)
    if not series:
        raise ValueError(f"no sales records for {application!r} / {region!r}")
    return fit_trend(series)


def projected_attackers(
    database: SalesDatabase,
    application: str,
    region: str,
    *,
    year: int,
    attacker_rate: float,
) -> int:
    """Forward-looking PAE: trend-projected sales times the attacker rate.

    The trend-report reading of Eq. 2: instead of last year's snapshot,
    project unit sales to ``year`` and apply PEA.
    """
    if not 0.0 < attacker_rate <= 1.0:
        raise ValueError(f"attacker_rate must be in (0, 1], got {attacker_rate}")
    trend = sales_trend(database, application, region)
    return int(round(trend.predict(year) * attacker_rate))
