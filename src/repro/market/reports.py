"""Synthetic cybersecurity annual reports (the Upstream-report substitute).

The PSP financial model text-mines "vehicle cybersecurity annual reports"
for the percentage/count of potential attackers and the number of
competing attack sellers (paper §III; the excavator example cites 1,406
potential attackers and 3 competitors from the Upstream report).  The
real report is proprietary, so this module synthesises report *prose* with
the cited quantities embedded, exercising the same text-mining code path
(:mod:`repro.nlp.textmining`) the paper describes.

Reports also carry incident statistics by attack vector and year so the
attack-trend claims ("reprogramming via physical attack is no longer
mainstream") can be cross-checked, mirroring the paper's use of the
Upstream report to confirm the PSP trend inversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple

from repro.iso21434.enums import AttackVector


@dataclass(frozen=True)
class IncidentStats:
    """Incident counts by attack vector for one year."""

    year: int
    counts: Mapping[AttackVector, int]

    def __post_init__(self) -> None:
        if any(v < 0 for v in self.counts.values()):
            raise ValueError("incident counts must be >= 0")
        object.__setattr__(self, "counts", dict(self.counts))

    @property
    def total(self) -> int:
        """Total incidents across vectors."""
        return sum(self.counts.values())

    def share(self, vector: AttackVector) -> float:
        """Fraction of the year's incidents using ``vector`` (0 if none)."""
        total = self.total
        if total == 0:
            return 0.0
        return self.counts.get(vector, 0) / total


@dataclass(frozen=True)
class AnnualReport:
    """One synthetic cybersecurity annual report.

    Attributes:
        year: report year.
        application: vehicle application the report section covers.
        region: region the report section covers.
        prose: report text; quantities are embedded in prose so the
            text-mining extractors are exercised.
        incidents: per-year incident statistics by attack vector.
        attacker_rate: fraction of the vehicle population considered
            potential attackers (PEA in paper Eq. 2).
    """

    year: int
    application: str
    region: str
    prose: str
    incidents: Tuple[IncidentStats, ...] = ()
    attacker_rate: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 <= self.attacker_rate <= 1.0:
            raise ValueError(f"attacker_rate must be in [0, 1], got {self.attacker_rate}")
        object.__setattr__(self, "incidents", tuple(self.incidents))

    def incidents_for(self, year: int) -> Optional[IncidentStats]:
        """Incident stats for ``year`` if the report covers it."""
        for stats in self.incidents:
            if stats.year == year:
                return stats
        return None


class ReportLibrary:
    """Collection of annual reports with lookup by application/region."""

    def __init__(self, reports=()) -> None:
        self._reports: List[AnnualReport] = list(reports)

    def add(self, report: AnnualReport) -> None:
        """Add one report."""
        self._reports.append(report)

    def __len__(self) -> int:
        return len(self._reports)

    def __iter__(self):
        return iter(self._reports)

    def latest(
        self, application: str, region: str
    ) -> Optional[AnnualReport]:
        """The newest report covering (application, region)."""
        matches = [
            r
            for r in self._reports
            if r.application.lower() == application.lower()
            and r.region.lower() == region.lower()
        ]
        if not matches:
            return None
        return max(matches, key=lambda r: r.year)

    def prose_corpus(self, application: str, region: str) -> List[str]:
        """All report prose covering (application, region), newest first."""
        matches = [
            r
            for r in self._reports
            if r.application.lower() == application.lower()
            and r.region.lower() == region.lower()
        ]
        matches.sort(key=lambda r: r.year, reverse=True)
        return [r.prose for r in matches]


def default_report_library() -> ReportLibrary:
    """The synthetic report library used by the reproduction.

    The 2023 excavator/Europe report embeds the paper's cited quantities:
    1,406 potential attackers and 3 competing sellers (Eqs. 6-7).  The
    incident tables encode the physical→local trend inversion the paper
    says the Upstream report confirms.
    """
    excavator_2023 = AnnualReport(
        year=2023,
        application="excavator",
        region="europe",
        prose=(
            "European off-highway fleet analysis, 2023 edition. Our field "
            "telemetry identified 1,406 potential attackers among owners of "
            "the subject company's excavators, driven by aftermarket "
            "emission-defeat demand. The market is served by 3 competing "
            "sellers of defeat devices. During the reporting period we "
            "recorded 412 incidents of emission-system tampering across "
            "European soil excavators."
        ),
        incidents=(
            IncidentStats(
                year=2020,
                counts={
                    AttackVector.PHYSICAL: 310,
                    AttackVector.LOCAL: 85,
                    AttackVector.ADJACENT: 12,
                    AttackVector.NETWORK: 6,
                },
            ),
            IncidentStats(
                year=2021,
                counts={
                    AttackVector.PHYSICAL: 260,
                    AttackVector.LOCAL: 150,
                    AttackVector.ADJACENT: 15,
                    AttackVector.NETWORK: 9,
                },
            ),
            IncidentStats(
                year=2022,
                counts={
                    AttackVector.PHYSICAL: 170,
                    AttackVector.LOCAL: 295,
                    AttackVector.ADJACENT: 18,
                    AttackVector.NETWORK: 14,
                },
            ),
        ),
        attacker_rate=0.01,
    )
    passenger_2023 = AnnualReport(
        year=2023,
        application="passenger_car",
        region="europe",
        prose=(
            "European passenger-car threat landscape, 2023 edition. "
            "Telemetry attributes tuning intent to 9,840 potential attackers "
            "in the subject fleet. Aftermarket reflash services are offered "
            "by 12 competing sellers. We recorded 1,980 incidents across "
            "the reporting period."
        ),
        incidents=(
            IncidentStats(
                year=2022,
                counts={
                    AttackVector.PHYSICAL: 420,
                    AttackVector.LOCAL: 1190,
                    AttackVector.ADJACENT: 210,
                    AttackVector.NETWORK: 160,
                },
            ),
        ),
        attacker_rate=0.015,
    )
    return ReportLibrary([excavator_2023, passenger_2023])
