"""Vehicle sales and market-share data (ISO Eq. 2 inputs).

The PSP financial model estimates the potential-attacker population from
"past year's vehicle sales (VS) trend reports", replacing VS with market
share (MS) in non-monopolistic markets (paper Eq. 2).  Real sales
databases are commercial, so this module ships a small synthetic table
covering the paper's example (European excavators for a major company:
140,600 units, which together with a 1% potential-attacker rate yields
the paper's PAE = 1,406).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class SalesRecord:
    """One (application, region, year) sales observation.

    Attributes:
        application: vehicle application, e.g. ``"excavator"``.
        region: geographic region, e.g. ``"europe"``.
        year: calendar year of the record.
        units_sold: vehicles sold by the subject company (VS).
        market_share: the company's unit share of the regional market, in
            [0, 1]; used for MS in non-monopolistic markets.
        monopolistic: whether the regional market is monopolistic, which
            selects the VS branch of Eq. 2.
    """

    application: str
    region: str
    year: int
    units_sold: int
    market_share: float
    monopolistic: bool = False

    def __post_init__(self) -> None:
        if self.units_sold < 0:
            raise ValueError("units_sold must be >= 0")
        if not 0.0 <= self.market_share <= 1.0:
            raise ValueError(f"market_share must be in [0, 1], got {self.market_share}")

    @property
    def market_units(self) -> float:
        """Total regional market size implied by share (0 share → 0)."""
        if self.market_share == 0:
            return 0.0
        return self.units_sold / self.market_share


class SalesDatabase:
    """Queryable collection of sales records."""

    def __init__(self, records: Iterable[SalesRecord] = ()) -> None:
        self._records: List[SalesRecord] = list(records)

    def add(self, record: SalesRecord) -> None:
        """Add one record."""
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def lookup(
        self, application: str, region: str, year: Optional[int] = None
    ) -> Optional[SalesRecord]:
        """The record for (application, region, year); latest year if None."""
        matches = [
            r
            for r in self._records
            if r.application.lower() == application.lower()
            and r.region.lower() == region.lower()
        ]
        if not matches:
            return None
        if year is not None:
            for record in matches:
                if record.year == year:
                    return record
            return None
        return max(matches, key=lambda r: r.year)

    def trend(
        self, application: str, region: str
    ) -> List[Tuple[int, int]]:
        """(year, units_sold) series for the application/region, sorted."""
        series = [
            (r.year, r.units_sold)
            for r in self._records
            if r.application.lower() == application.lower()
            and r.region.lower() == region.lower()
        ]
        return sorted(series)


def default_sales_database() -> SalesDatabase:
    """The synthetic sales table used by the reproduction.

    The excavator/Europe rows are calibrated so the latest year carries
    140,600 units — with the default 1% potential-attacker rate this
    reproduces the paper's PAE = 1,406 (Eq. 6).
    """
    rows: Dict[Tuple[str, str], List[Tuple[int, int, float, bool]]] = {
        ("excavator", "europe"): [
            (2019, 118000, 0.34, False),
            (2020, 112500, 0.33, False),
            (2021, 131000, 0.34, False),
            (2022, 140600, 0.35, False),
        ],
        ("passenger_car", "europe"): [
            (2020, 620000, 0.08, False),
            (2021, 654000, 0.08, False),
            (2022, 688000, 0.09, False),
        ],
        ("light_truck", "europe"): [
            (2021, 96000, 0.12, False),
            (2022, 103000, 0.12, False),
        ],
        ("agricultural_tractor", "europe"): [
            (2021, 54000, 0.41, True),
            (2022, 56500, 0.42, True),
        ],
        ("excavator", "north_america"): [
            (2021, 98000, 0.22, False),
            (2022, 104500, 0.23, False),
        ],
    }
    db = SalesDatabase()
    for (application, region), series in rows.items():
        for year, units, share, mono in series:
            db.add(
                SalesRecord(
                    application=application,
                    region=region,
                    year=year,
                    units_sold=units,
                    market_share=share,
                    monopolistic=mono,
                )
            )
    return db
