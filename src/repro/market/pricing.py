"""Aftermarket attack-device and service price listings.

The PSP financial model estimates PPIA — the maximum purchase price a
vehicle owner would pay for an insider attack — by clustering "adversary
devices or services found online based on their prices" (paper §III).
This module provides the online-listing substitute: a catalogue of
listings per attack keyword, plus the variable-cost (VCU) table the BEP
equation needs.

The DPF-delete listings are calibrated so the dominant price cluster
centres at exactly 360 EUR and the VCU is 50 EUR, reproducing the paper's
PPIA = 360 and PPIA - VCU = 310 (Eqs. 6-7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.nlp.clustering import dominant_cluster, kmeans_1d
from repro.nlp.normalize import canonical_keyword


@dataclass(frozen=True)
class PriceListing:
    """One online listing of an attack device or service."""

    listing_id: str
    keyword: str
    title: str
    price: float
    currency: str = "EUR"

    def __post_init__(self) -> None:
        if self.price < 0:
            raise ValueError("price must be >= 0")
        object.__setattr__(self, "keyword", canonical_keyword(self.keyword))


class PriceCatalog:
    """Collection of listings with clustering-based price estimation."""

    def __init__(self, listings: Iterable[PriceListing] = ()) -> None:
        self._listings: List[PriceListing] = list(listings)

    def add(self, listing: PriceListing) -> None:
        """Add one listing."""
        self._listings.append(listing)

    def __len__(self) -> int:
        return len(self._listings)

    def __iter__(self):
        return iter(self._listings)

    def prices_for(self, keyword: str) -> List[float]:
        """All listed prices for ``keyword`` (canonical folding applied)."""
        canonical = canonical_keyword(keyword)
        return [l.price for l in self._listings if l.keyword == canonical]

    def estimate_ppia(self, keyword: str, *, k: Optional[int] = None) -> float:
        """PPIA estimate: dominant price-cluster centre for ``keyword``.

        Raises:
            ValueError: when no listings exist for the keyword.
        """
        prices = self.prices_for(keyword)
        if not prices:
            raise ValueError(f"no listings for keyword {keyword!r}")
        effective_k = k if k is not None else min(3, len(prices))
        clusters = kmeans_1d(prices, effective_k)
        return dominant_cluster(clusters).center


#: Variable cost per unit (VCU) of executing each insider attack: the
#: marginal cost of materials/installation per attacked vehicle.
DEFAULT_VCU: Dict[str, float] = {
    "dpfdelete": 50.0,
    "egrdelete": 35.0,
    "adbluedelete": 60.0,
    "chiptuning": 25.0,
    "speedlimiterremoval": 20.0,
    "hourmeterrollback": 15.0,
    "ecmreprogramming": 40.0,
    "obdtuning": 20.0,
}


def variable_cost(keyword: str) -> float:
    """VCU for ``keyword``; raises KeyError for unknown attacks."""
    canonical = canonical_keyword(keyword)
    try:
        return DEFAULT_VCU[canonical]
    except KeyError:
        raise KeyError(f"no variable-cost entry for attack {canonical!r}") from None


def default_price_catalog() -> PriceCatalog:
    """The synthetic listing catalogue used by the reproduction.

    The seven retail DPF-delete listings average exactly 360 EUR, so the
    dominant cluster of the 3-regime clustering (retail devices,
    professional installation services, scam/low-ball offers) reproduces
    the paper's PPIA = 360 EUR.
    """
    rows: Tuple[Tuple[str, str, float], ...] = (
        # keyword, title, price
        ("dpfdelete", "DPF delete pipe kit 8t excavator", 330.0),
        ("dpfdelete", "DPF removal emulator module", 340.0),
        ("dpfdelete", "DPF off kit with ECU patch", 350.0),
        ("dpfdelete", "DPF delete full kit", 360.0),
        ("dpfdelete", "DPF delete kit pro", 370.0),
        ("dpfdelete", "DPF defeat device stage 2", 380.0),
        ("dpfdelete", "DPF delete premium bundle", 390.0),
        ("dpfdelete", "Workshop DPF delete service incl. dyno", 1250.0),
        ("dpfdelete", "Mobile DPF delete service", 1400.0),
        ("dpfdelete", "DPF delete cheap untested", 45.0),
        ("dpfdelete", "DPF sticker bypass scam", 60.0),
        ("egrdelete", "EGR blanking plate kit", 180.0),
        ("egrdelete", "EGR delete harness", 210.0),
        ("egrdelete", "EGR off service", 240.0),
        ("adbluedelete", "AdBlue emulator box v5", 250.0),
        ("adbluedelete", "SCR delete module", 270.0),
        ("adbluedelete", "AdBlue off install service", 290.0),
        ("chiptuning", "Stage 1 remap file", 150.0),
        ("chiptuning", "Chip tuning box", 190.0),
        ("obdtuning", "OBD flash tool clone", 220.0),
        ("obdtuning", "OBD tuning session", 260.0),
        ("ecmreprogramming", "Bench flash service", 310.0),
        ("ecmreprogramming", "ECM reprogramming kit", 290.0),
        ("speedlimiterremoval", "Speed limiter off via OBD", 120.0),
        ("hourmeterrollback", "Hour meter adjustment tool", 90.0),
    )
    catalog = PriceCatalog()
    for index, (keyword, title, price) in enumerate(rows):
        catalog.add(
            PriceListing(
                listing_id=f"l{index:04d}",
                keyword=keyword,
                title=title,
                price=price,
            )
        )
    return catalog
