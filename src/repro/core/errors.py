"""Exception hierarchy of the PSP framework."""

from __future__ import annotations


class PSPError(Exception):
    """Base class for all PSP framework errors."""


class KeywordError(PSPError):
    """Raised for invalid keyword-database operations."""


class DataUnavailableError(PSPError):
    """Raised when a required external data source has no answer.

    Examples: no social posts match a keyword, no sales record exists for
    the target application/region, no price listings exist for an attack.
    """


class ModelInputError(PSPError):
    """Raised when a model equation receives out-of-domain inputs.

    Examples: PPIA not greater than VCU in the break-even equation, a
    non-positive number of competitors.
    """
