"""Social Attraction Index (SAI) computation (paper Fig. 7, blocks 6-7).

For every keyword in the attack database, the PSP NLP component queries
the social platform for matching posts and condenses them into one SAI
entry: a non-negative *score* built from views, interactions and post
volume (the paper's "views, interactions, and popularity"), amplified by
positive sentiment (enthusiastic posts signal attack demand).  Scores are
normalised across the list into the per-entry *attack probability
estimation* the paper describes.

Score definition (monotone in every own signal, property-tested)::

    share_x(k) = signal_x(k) / sum_j signal_x(j)      x in {views, inter, vol}
    base(k)    = (w_views * share_views(k)
                + w_inter * share_inter(k)
                + w_vol   * share_vol(k)) / (w_views + w_inter + w_vol)
    score(k)   = base(k) * (1 + gain * max(0, mean_sentiment(k)))

Each engagement signal is normalised to its *share* across the keyword
list before weighting, so the score measures how much of the scene's
total attention an attack topic holds — exactly the "popularity" reading
of the paper.  The sentiment factor only amplifies (never suppresses):
deterrence-heavy topics still register, because they are real attacks
being discussed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import PSPConfig
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.iso21434.enums import AttackVector
from repro.nlp.analysis import analyze_text
from repro.nlp.sentiment import SentimentAnalyzer
from repro.social.api import BatchQuery, SocialMediaClient
from repro.social.post import Engagement, Post


@dataclass(frozen=True)
class SAIEntry:
    """One attack keyword's Social Attraction Index record."""

    keyword: str
    vector: Optional[AttackVector]
    owner_approved: Optional[bool]
    score: float
    probability: float
    post_count: int
    engagement: Engagement
    mean_sentiment: float

    def __post_init__(self) -> None:
        if self.score < 0:
            raise ValueError("SAI score must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.post_count < 0:
            raise ValueError("post_count must be >= 0")


class SAIList:
    """The sorted SAI list (descending score) with normalised probabilities."""

    def __init__(self, entries: Sequence[SAIEntry]) -> None:
        self._entries: Tuple[SAIEntry, ...] = tuple(
            sorted(entries, key=lambda e: (-e.score, e.keyword))
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __getitem__(self, index: int) -> SAIEntry:
        return self._entries[index]

    @property
    def entries(self) -> Tuple[SAIEntry, ...]:
        """Entries in descending score order."""
        return self._entries

    def entry(self, keyword: str) -> SAIEntry:
        """Look up an entry by keyword."""
        for candidate in self._entries:
            if candidate.keyword == keyword:
                return candidate
        raise KeyError(f"no SAI entry for keyword {keyword!r}")

    def top(self, n: int = 5) -> Tuple[SAIEntry, ...]:
        """The ``n`` highest-scoring entries."""
        return self._entries[:n]

    def ranking(self) -> Tuple[str, ...]:
        """Keywords in descending score order."""
        return tuple(e.keyword for e in self._entries)

    def probability_by_vector(self) -> Dict[AttackVector, float]:
        """Total attack-probability mass per annotated attack vector.

        Entries without a vector annotation are excluded; the remaining
        mass is re-normalised so the shares sum to 1 (unless no entry is
        annotated, in which case the result is empty).
        """
        mass: Dict[AttackVector, float] = {}
        total = 0.0
        for entry in self._entries:
            if entry.vector is None:
                continue
            mass[entry.vector] = mass.get(entry.vector, 0.0) + entry.probability
            total += entry.probability
        if total <= 0:
            return {}
        return {vector: share / total for vector, share in mass.items()}

    def as_rows(self) -> Tuple[Tuple[str, float, float, int], ...]:
        """(keyword, score, probability, posts) rows for reports."""
        return tuple(
            (e.keyword, round(e.score, 3), round(e.probability, 4), e.post_count)
            for e in self._entries
        )


@dataclass(frozen=True)
class KeywordSignals:
    """One keyword's condensed SAI evidence (the additive signals).

    Everything the scorer needs about a keyword is additive over its
    posts — engagement counters, post count, summed sentiment — so a
    streaming consumer can maintain these as running aggregates
    (:class:`~repro.stream.deltas.DeltaTracker`) and hand them straight
    to :meth:`SAIComputer.compute_from_signals` without touching a
    single historical post.
    """

    engagement: Engagement
    mean_sentiment: float
    post_count: int

    def __post_init__(self) -> None:
        if self.post_count < 0:
            raise ValueError("post_count must be >= 0")


def _gather_signals(
    posts: Sequence[Post], analyzer: SentimentAnalyzer
) -> Tuple[Engagement, float]:
    """Total engagement and mean sentiment of one keyword's posts.

    Sentiment is read through the shared
    :func:`~repro.nlp.analysis.analyze_text` sidecar and the analyzer's
    per-fingerprint memo, so each distinct post text is tokenized and
    scored at most once per corpus lifetime — however many windows,
    weight mixes or fleet members revisit it.
    """
    total = Engagement()
    for post in posts:
        total = total.combined(post.engagement)
    if not posts:
        return total, 0.0
    mean = sum(
        analyzer.score_analysis(analyze_text(p.text)).score for p in posts
    ) / len(posts)
    return total, mean


def _share(value: float, total: float) -> float:
    """value/total with the zero-total convention of an empty scene."""
    return value / total if total > 0 else 0.0


class SAIComputer:
    """Computes SAI lists from a social client and keyword database."""

    def __init__(
        self,
        client: SocialMediaClient,
        *,
        config: Optional[PSPConfig] = None,
        analyzer: Optional[SentimentAnalyzer] = None,
    ) -> None:
        self._client = client
        self._config = config or PSPConfig()
        self._analyzer = analyzer or SentimentAnalyzer()

    def compute(
        self,
        database: KeywordDatabase,
        *,
        region: Optional[str] = None,
        since=None,
        until=None,
    ) -> SAIList:
        """Compute the SAI list over every keyword in ``database``.

        Posts are fetched with one batched
        :meth:`~repro.social.api.SocialMediaClient.search_many` call —
        identical per-keyword results to sequential searches, one
        platform round-trip.  Keywords with zero matching posts are
        retained with score 0 — an absent topic is itself a (negative)
        finding.

        Clients exposing a ``window_signals`` method (a
        :class:`~repro.core.cache.CachedClient` with sidecar aggregates
        attached) are probed first: when they can supply pre-aggregated
        :class:`KeywordSignals` for this exact window/region/analyzer,
        the list is scored through :meth:`compute_from_signals` without
        fetching a single post — the cold tiers of a spilled corpus
        answer from their sidecars.  A ``None`` probe result falls back
        to the post-scan path unchanged.
        """
        if not len(database):
            return SAIList([])
        window_signals = getattr(self._client, "window_signals", None)
        if callable(window_signals):
            signals = window_signals(
                database.keywords,
                region=region,
                since=since,
                until=until,
                analyzer=self._analyzer,
            )
            if signals is not None:
                return self.compute_from_signals(database, signals)
        batch = BatchQuery(
            keywords=database.keywords, region=region, since=since, until=until
        )
        result = self._client.search_many(batch)
        return self.compute_from_posts(database, result.posts_by_keyword)

    def compute_from_posts(
        self,
        database: KeywordDatabase,
        posts_by_keyword: Mapping[str, Sequence[Post]],
    ) -> SAIList:
        """Score a SAI list from already-fetched posts.

        This is the pure scoring half of :meth:`compute`: callers that
        batch-fetch once and evaluate many times — weight-mix ablation
        sweeps, fleet runs sharing one corpus, cached pipelines — feed
        the same ``posts_by_keyword`` mapping through different
        computers without touching the platform again.  Keywords missing
        from the mapping are treated as having no matching posts.
        """
        gathered: List[Tuple[AttackKeyword, Engagement, float, int]] = []
        for entry in database:
            posts = list(posts_by_keyword.get(entry.keyword, ()))
            engagement, sentiment = _gather_signals(posts, self._analyzer)
            gathered.append((entry, engagement, sentiment, len(posts)))
        return self._score_gathered(gathered)

    def compute_from_signals(
        self,
        database: KeywordDatabase,
        signals: Mapping[str, KeywordSignals],
    ) -> SAIList:
        """Score a SAI list from pre-aggregated per-keyword signals.

        The streaming counterpart of :meth:`compute_from_posts`: callers
        that maintain running per-keyword aggregates (the dirty-keyword
        tracker of :mod:`repro.stream.deltas`) re-score the whole list in
        O(keywords) — no post fetch, no sentiment pass.  Keywords missing
        from ``signals`` are treated as having no matching posts.  The
        share/score/probability arithmetic is the same code path as the
        post-fed variant.
        """
        gathered: List[Tuple[AttackKeyword, Engagement, float, int]] = []
        for entry in database:
            signal = signals.get(entry.keyword)
            if signal is None:
                gathered.append((entry, Engagement(), 0.0, 0))
            else:
                gathered.append(
                    (
                        entry,
                        signal.engagement,
                        signal.mean_sentiment,
                        signal.post_count,
                    )
                )
        return self._score_gathered(gathered)

    def _score_gathered(
        self,
        gathered: Sequence[Tuple[AttackKeyword, Engagement, float, int]],
    ) -> SAIList:
        """The shared scoring core: signals in, sorted SAI list out."""
        weights = self._config.sai_weights
        gain = self._config.sentiment_gain
        weight_sum = weights.views + weights.interactions + weights.volume
        total_views = sum(item[1].views for item in gathered)
        total_inter = sum(item[1].interactions for item in gathered)
        total_posts = sum(item[3] for item in gathered)

        scored: List[Tuple[AttackKeyword, float, Engagement, float, int]] = []
        for entry, engagement, sentiment, count in gathered:
            base = (
                weights.views * _share(engagement.views, total_views)
                + weights.interactions * _share(engagement.interactions, total_inter)
                + weights.volume * _share(count, total_posts)
            ) / weight_sum
            score = base * (1.0 + gain * max(0.0, sentiment))
            scored.append((entry, score, engagement, sentiment, count))

        total_score = sum(item[1] for item in scored)
        entries = []
        for entry, score, engagement, sentiment, count in scored:
            probability = score / total_score if total_score > 0 else 0.0
            entries.append(
                SAIEntry(
                    keyword=entry.keyword,
                    vector=entry.vector,
                    owner_approved=entry.owner_approved,
                    score=score,
                    probability=probability,
                    post_count=count,
                    engagement=engagement,
                    mean_sentiment=sentiment,
                )
            )
        return SAIList(entries)
