"""Combined feasibility: integrating the financial index into ISO models.

Paper §III closes the financial discussion with: "the FC index computed
by the PSP platform can serve as a new attack feasibility index
integrated into the general ISO-21434 models discussed earlier,
fine-tuning market demand to better reflect the attack trend."

:func:`combined_feasibility` implements that integration.  For an
insider threat the analyst has two PSP signals:

* the **social** rating — the PSP-tuned attack-vector table's rating for
  the threat's best vector (how much the scene talks about it);
* the **financial** rating — the MV/FC viability index (whether it is a
  profitable business).

The combination is the *maximum* of the two, because each signal is an
independent sufficient reason for attack pressure: a barely-profitable
attack with huge social momentum still happens (hobbyists), and a
quietly lucrative one attracts professional sellers before the hashtags
catch up.  An optional conservative mode takes the minimum instead
(both signals must agree) for organisations that prefer under-claiming.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.errors import ModelInputError
from repro.core.financial import FinancialAssessment
from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import WeightTable

if TYPE_CHECKING:  # avoid a circular import with framework.py
    from repro.core.framework import PSPRunResult


class CombinationMode(enum.Enum):
    """How the social and financial ratings are merged."""

    #: Either signal alone is sufficient (default; matches the paper's
    #: framing of FC as an additional feasibility *driver*).
    EITHER = "either"
    #: Both signals must support the rating (conservative).
    BOTH = "both"


@dataclass(frozen=True)
class CombinedFeasibility:
    """The merged feasibility verdict for one insider attack."""

    keyword: str
    vector: AttackVector
    social: FeasibilityRating
    financial: FeasibilityRating
    combined: FeasibilityRating
    mode: CombinationMode

    @property
    def driver(self) -> str:
        """Which signal set the combined rating ("social"/"financial"/"both")."""
        if self.social is self.financial:
            return "both"
        if self.combined is self.social:
            return "social"
        return "financial"

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.keyword} via {self.vector.value}: social "
            f"{self.social.label()}, financial {self.financial.label()} "
            f"-> {self.combined.label()} ({self.mode.value}, driven by "
            f"{self.driver})"
        )


def combined_feasibility(
    keyword: str,
    vector: AttackVector,
    insider_table: WeightTable,
    assessment: FinancialAssessment,
    *,
    mode: CombinationMode = CombinationMode.EITHER,
) -> CombinedFeasibility:
    """Merge the PSP social and financial feasibility signals.

    Args:
        keyword: the insider attack.
        vector: the attack vector under assessment.
        insider_table: the PSP-tuned weight table (social signal source).
        assessment: the financial assessment of the same attack.
        mode: EITHER (max, default) or BOTH (min).
    """
    social = insider_table.rating(vector)
    financial = assessment.feasibility
    if mode is CombinationMode.EITHER:
        merged = max(social, financial, key=lambda r: r.level)
    else:
        merged = min(social, financial, key=lambda r: r.level)
    return CombinedFeasibility(
        keyword=keyword,
        vector=vector,
        social=social,
        financial=financial,
        combined=merged,
        mode=mode,
    )


def combined_feasibility_for_run(
    result: "PSPRunResult",
    keyword: str,
    assessment: FinancialAssessment,
    *,
    mode: CombinationMode = CombinationMode.EITHER,
) -> CombinedFeasibility:
    """Merge the signals of one pipeline run's keyword.

    Convenience wiring between the stage pipeline and the ISO
    integration: the attack vector comes from the run's SAI entry
    annotation and the social rating from its tuned insider table, so
    callers holding a :class:`~repro.core.framework.PSPRunResult` (or a
    fleet member's equivalent) don't re-plumb tables by hand.

    Raises:
        ModelInputError: when the keyword has no SAI entry or its entry
            carries no attack-vector annotation.
    """
    try:
        entry = result.sai.entry(keyword)
    except KeyError as exc:
        raise ModelInputError(str(exc)) from exc
    if entry.vector is None:
        raise ModelInputError(
            f"keyword {keyword!r} has no attack-vector annotation; "
            "annotate it before combining feasibility signals"
        )
    return combined_feasibility(
        keyword,
        entry.vector,
        result.insider_table,
        assessment,
        mode=mode,
    )


def required_security_budget(
    assessment: FinancialAssessment, *, safety_factor: float = 1.0
) -> float:
    """The anti-tampering budget recommendation of the paper's example.

    "The development team should create a secure anti-tampering DPF
    architecture ... that can withstand an adversary's investment of up
    to 145,286 EUR" — the required FC, optionally scaled by an
    engineering safety factor.
    """
    if safety_factor <= 0:
        raise ValueError(f"safety_factor must be > 0, got {safety_factor}")
    return assessment.fc_required * safety_factor
