"""Post-authenticity filtering (paper §IV future work).

The paper's stated next step: "implementing a filtering strategy for
messages to ensure we process only authentic posts and prevent attackers
from poisoning the data".  An adversary who knows PSP reads social media
can inflate a keyword's SAI (making a vector look hot) or bury it.  This
module implements three deterministic authenticity heuristics:

* **Duplicate flood** — near-identical texts posted many times.  Texts
  are normalised and fingerprinted; fingerprints whose frequency exceeds
  ``max_duplicate_share`` of the keyword's posts are flagged beyond the
  first occurrence.
* **Author concentration** — one account responsible for more than
  ``max_author_share`` of a keyword's posts (with a minimum corpus size
  before the rule activates) is a amplification signature; the excess
  posts are flagged.
* **Engagement anomaly** — posts whose view count exceeds
  ``engagement_sigma`` standard deviations above the keyword's mean are
  flagged (bought-engagement signature).  Uses a robust threshold so a
  single organic viral post in a small sample is not discarded.

The filter is *transparent*: :class:`FilterReport` records every
rejected post and the rule that fired, so an analyst can audit it.
:class:`FilteringClient` wraps any :class:`SocialMediaClient` and applies
the filter to every search — the integration point for the SAI pipeline.
"""

from __future__ import annotations

import datetime as dt
import enum
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nlp.normalize import normalize_text
from repro.social.api import SearchQuery, SocialMediaClient
from repro.social.post import Post


class RejectionReason(enum.Enum):
    """Which authenticity rule rejected a post."""

    DUPLICATE_FLOOD = "duplicate_flood"
    AUTHOR_CONCENTRATION = "author_concentration"
    ENGAGEMENT_ANOMALY = "engagement_anomaly"


@dataclass(frozen=True)
class RejectedPost:
    """One filtered-out post with its audit trail."""

    post: Post
    reason: RejectionReason


@dataclass(frozen=True)
class FilterReport:
    """Outcome of filtering one post list."""

    accepted: Tuple[Post, ...]
    rejected: Tuple[RejectedPost, ...]

    @property
    def rejection_rate(self) -> float:
        """Fraction of input posts rejected."""
        total = len(self.accepted) + len(self.rejected)
        if total == 0:
            return 0.0
        return len(self.rejected) / total

    def rejected_by(self, reason: RejectionReason) -> Tuple[RejectedPost, ...]:
        """The posts rejected by a specific rule."""
        return tuple(r for r in self.rejected if r.reason is reason)


@dataclass(frozen=True)
class FilterConfig:
    """Tunables of the authenticity filter."""

    #: A normalised text fingerprint may cover at most this share of the
    #: posts; occurrences beyond the allowance are flagged.
    max_duplicate_share: float = 0.10
    #: One author may contribute at most this share of the posts...
    max_author_share: float = 0.20
    #: ...once the sample has at least this many posts.
    min_posts_for_author_rule: int = 10
    #: Views beyond mean + sigma * stdev are anomalous.
    engagement_sigma: float = 4.0
    #: Engagement rule needs a minimum sample to be meaningful.
    min_posts_for_engagement_rule: int = 10

    def __post_init__(self) -> None:
        if not 0.0 < self.max_duplicate_share <= 1.0:
            raise ValueError("max_duplicate_share must be in (0, 1]")
        if not 0.0 < self.max_author_share <= 1.0:
            raise ValueError("max_author_share must be in (0, 1]")
        if self.engagement_sigma <= 0:
            raise ValueError("engagement_sigma must be > 0")
        if self.min_posts_for_author_rule < 1:
            raise ValueError("min_posts_for_author_rule must be >= 1")
        if self.min_posts_for_engagement_rule < 2:
            raise ValueError("min_posts_for_engagement_rule must be >= 2")


def _fingerprint(text: str) -> str:
    """Normalised near-duplicate fingerprint of a post text."""
    return normalize_text(text)


class PostAuthenticityFilter:
    """Applies the three authenticity rules to a post list."""

    def __init__(self, config: Optional[FilterConfig] = None) -> None:
        self._config = config or FilterConfig()

    @property
    def config(self) -> FilterConfig:
        """The active configuration."""
        return self._config

    def filter(self, posts: Sequence[Post]) -> FilterReport:
        """Split ``posts`` into accepted and rejected, with reasons.

        Rules are applied in a fixed order (duplicates, author
        concentration, engagement); a post rejected by an earlier rule is
        not re-examined by later ones, so each rejection carries exactly
        one reason.
        """
        if not posts:
            return FilterReport(accepted=(), rejected=())
        rejected: List[RejectedPost] = []
        survivors = list(posts)

        survivors, dupes = self._apply_duplicate_rule(survivors)
        rejected.extend(dupes)
        survivors, flooded = self._apply_author_rule(survivors)
        rejected.extend(flooded)
        survivors, anomalous = self._apply_engagement_rule(survivors)
        rejected.extend(anomalous)

        return FilterReport(accepted=tuple(survivors), rejected=tuple(rejected))

    def _apply_duplicate_rule(
        self, posts: List[Post]
    ) -> Tuple[List[Post], List[RejectedPost]]:
        total = len(posts)
        allowance = max(1, int(self._config.max_duplicate_share * total))
        seen: Counter = Counter()
        accepted: List[Post] = []
        rejected: List[RejectedPost] = []
        for post in posts:
            fingerprint = _fingerprint(post.text)
            seen[fingerprint] += 1
            if seen[fingerprint] > allowance:
                rejected.append(
                    RejectedPost(post=post, reason=RejectionReason.DUPLICATE_FLOOD)
                )
            else:
                accepted.append(post)
        return accepted, rejected

    def _apply_author_rule(
        self, posts: List[Post]
    ) -> Tuple[List[Post], List[RejectedPost]]:
        if len(posts) < self._config.min_posts_for_author_rule:
            return posts, []
        allowance = max(1, int(self._config.max_author_share * len(posts)))
        per_author: Counter = Counter()
        accepted: List[Post] = []
        rejected: List[RejectedPost] = []
        for post in posts:
            per_author[post.author] += 1
            if per_author[post.author] > allowance:
                rejected.append(
                    RejectedPost(
                        post=post, reason=RejectionReason.AUTHOR_CONCENTRATION
                    )
                )
            else:
                accepted.append(post)
        return accepted, rejected

    def _apply_engagement_rule(
        self, posts: List[Post]
    ) -> Tuple[List[Post], List[RejectedPost]]:
        if len(posts) < self._config.min_posts_for_engagement_rule:
            return posts, []
        threshold = self._engagement_threshold(
            [post.engagement.views for post in posts]
        )
        if threshold is None:
            return posts, []
        accepted: List[Post] = []
        rejected: List[RejectedPost] = []
        for post in posts:
            if post.engagement.views > threshold:
                rejected.append(
                    RejectedPost(
                        post=post, reason=RejectionReason.ENGAGEMENT_ANOMALY
                    )
                )
            else:
                accepted.append(post)
        return accepted, rejected

    def _engagement_threshold(self, views: List[float]) -> Optional[float]:
        """Robust anomaly threshold: median + sigma * 1.4826 * MAD.

        A mean/stdev threshold suffers masking — the poison posts inflate
        the variance enough to hide themselves.  Median/MAD is immune as
        long as poisoned posts are a minority.  When MAD is zero (more
        than half the sample has identical views), fall back to a
        multiplicative band around the median; when the median itself is
        zero, the rule cannot say anything and stays inactive.
        """
        ordered = sorted(views)
        median = ordered[len(ordered) // 2]
        mad = sorted(abs(v - median) for v in ordered)[len(ordered) // 2]
        sigma = self._config.engagement_sigma
        if mad > 0:
            return median + sigma * 1.4826 * mad
        if median > 0:
            return median * (1.0 + sigma)
        return None


class FilteringClient(SocialMediaClient):
    """A client decorator that filters every search result.

    Plugging this between the platform client and the SAI computer makes
    the whole PSP pipeline poisoning-resistant without any pipeline
    change.  The last filter report is kept for auditing.
    """

    def __init__(
        self,
        inner: SocialMediaClient,
        *,
        post_filter: Optional[PostAuthenticityFilter] = None,
    ) -> None:
        self._inner = inner
        self._filter = post_filter or PostAuthenticityFilter()
        self._reports: Dict[str, FilterReport] = {}

    @property
    def inner(self) -> SocialMediaClient:
        """The wrapped client (decorator-unwrapping convention)."""
        return self._inner

    @property
    def post_filter(self) -> PostAuthenticityFilter:
        """The authenticity filter in force.

        Exposed so the streaming feed path can apply the *same* filter
        per micro-batch that this client applies per search (see
        :func:`repro.core.monitor._build_stream_runtime`).
        """
        return self._filter

    @property
    def reports(self) -> Dict[str, FilterReport]:
        """Filter reports per keyword from the searches served so far."""
        return dict(self._reports)

    def search(self, query: SearchQuery) -> List[Post]:
        """Search the inner client, then drop inauthentic posts."""
        report = self._filter.filter(self._inner.search(query))
        self._reports[query.keyword] = report
        return list(report.accepted)

    def count_by_year(self, query: SearchQuery) -> Dict[int, int]:
        """Per-year counts over the *filtered* result set."""
        counts: Dict[int, int] = {}
        for post in self.search(query):
            counts[post.year] = counts.get(post.year, 0) + 1
        return counts


def poison_corpus_with_flood(
    posts: Sequence[Post],
    *,
    keyword: str,
    copies: int,
    author: str = "botnet001",
    views: int = 50000,
    region: Optional[str] = None,
    created_at: Optional[dt.date] = None,
    id_prefix: str = "poison",
) -> List[Post]:
    """Inject a duplicate-flood poisoning campaign into a post list.

    Appends ``copies`` near-identical high-engagement posts for
    ``keyword`` from a single author — the attack the filter is designed
    to absorb.  ``region``/``created_at`` stamp the poison posts so a
    region-scoped pipeline actually sees them (unstamped posts fall
    outside region-scoped SAI buckets and would make the attack a no-op);
    ``created_at`` defaults to the newest organic post.  ``id_prefix``
    namespaces the synthetic post ids so audits and parity checks can
    identify the burst.
    """
    from repro.social.post import Engagement

    if copies < 0:
        raise ValueError("copies must be >= 0")
    poisoned = list(posts)
    base_date = created_at or max((p.created_at for p in posts), default=None)
    if base_date is None:
        raise ValueError("cannot poison an empty corpus")
    for index in range(copies):
        poisoned.append(
            Post(
                post_id=f"{id_prefix}{index:05d}",
                text=f"everyone is doing the #{keyword} now, get yours",
                author=author,
                created_at=base_date,
                region=region,
                engagement=Engagement(views=views, likes=views // 20),
            )
        )
    return poisoned
