"""Time-window handling and trend analysis.

"The social sentiment analysis time window plays a crucial role in the
PSP framework's analysis" (paper §III): the same threat scenario yields
different attack-feasibility tables when all posts are considered versus
only recent ones (Fig. 9-B vs 9-C).  This module provides the window value
object and the trend detector that surfaces such inversions — the paper's
example being ECM reprogramming moving from physical to local (OBD)
between the full history and the 2022+ window.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.sai import SAIList
from repro.iso21434.enums import AttackVector


@dataclass(frozen=True)
class TimeWindow:
    """An inclusive posting-date window; None bounds are open."""

    since: Optional[dt.date] = None
    until: Optional[dt.date] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.since and self.until and self.since > self.until:
            raise ValueError(
                f"empty window: since {self.since} > until {self.until}"
            )

    @classmethod
    def full_history(cls) -> "TimeWindow":
        """The unbounded window (paper Fig. 9-B's input)."""
        return cls(label="full history")

    @classmethod
    def since_year(cls, year: int) -> "TimeWindow":
        """Posts from 1 January ``year`` on (paper Fig. 9-C uses 2022)."""
        return cls(since=dt.date(year, 1, 1), label=f"since {year}")

    @classmethod
    def years(cls, first: int, last: int) -> "TimeWindow":
        """The inclusive calendar-year range [first, last]."""
        if first > last:
            raise ValueError(f"first year {first} > last year {last}")
        return cls(
            since=dt.date(first, 1, 1),
            until=dt.date(last, 12, 31),
            label=f"{first}-{last}",
        )

    def describe(self) -> str:
        """Human-readable label."""
        if self.label:
            return self.label
        left = self.since.isoformat() if self.since else "open"
        right = self.until.isoformat() if self.until else "open"
        return f"[{left}, {right}]"


@dataclass(frozen=True)
class VectorTrend:
    """Probability-share movement of one attack vector across windows."""

    vector: AttackVector
    share_before: float
    share_after: float

    @property
    def delta(self) -> float:
        """Share change (after - before)."""
        return self.share_after - self.share_before


@dataclass(frozen=True)
class TrendInversion:
    """Two vectors that swapped rank between the windows."""

    risen: AttackVector
    fallen: AttackVector

    def describe(self) -> str:
        """Human-readable statement of the inversion."""
        return (
            f"{self.risen.value} overtook {self.fallen.value} "
            "between the two analysis windows"
        )


def vector_trends(
    before: SAIList, after: SAIList
) -> Tuple[VectorTrend, ...]:
    """Per-vector probability-share movement between two SAI lists."""
    shares_before = before.probability_by_vector()
    shares_after = after.probability_by_vector()
    vectors = sorted(
        set(shares_before) | set(shares_after), key=lambda v: v.value
    )
    return tuple(
        VectorTrend(
            vector=vector,
            share_before=shares_before.get(vector, 0.0),
            share_after=shares_after.get(vector, 0.0),
        )
        for vector in vectors
    )


def detect_inversions(
    before: SAIList, after: SAIList
) -> List[TrendInversion]:
    """Vector pairs whose dominance order flipped between the windows.

    A pair (A, B) is an inversion when A's share was strictly below B's
    in the *before* window and strictly above it in the *after* window.
    The paper's example: local overtakes physical for ECM reprogramming
    when the window is restricted to 2022+.
    """
    shares_before = before.probability_by_vector()
    shares_after = after.probability_by_vector()
    vectors = sorted(
        set(shares_before) | set(shares_after), key=lambda v: v.value
    )
    inversions = []
    for risen in vectors:
        for fallen in vectors:
            if risen is fallen:
                continue
            was_below = shares_before.get(risen, 0.0) < shares_before.get(fallen, 0.0)
            now_above = shares_after.get(risen, 0.0) > shares_after.get(fallen, 0.0)
            if was_below and now_above:
                inversions.append(TrendInversion(risen=risen, fallen=fallen))
    return inversions


def yearly_shares(
    sai_by_year: Dict[int, SAIList]
) -> Dict[int, Dict[AttackVector, float]]:
    """Vector probability shares per year, for trend plots/benches."""
    return {
        year: sai.probability_by_vector() for year, sai in sorted(sai_by_year.items())
    }
