"""Runtime risk monitoring (paper §IV: "a runtime model environment").

The paper's conclusion positions PSP as a move "from static risk
assessment models ... to a runtime model environment.  This approach
allows for monitoring internal risks".  :class:`PSPMonitor` formalises
that loop: it re-runs the PSP pipeline over a growing time window at a
configurable cadence, diffs the resulting insider weight tables, and
emits :class:`TrendAlert` records — optionally recording a TARA
reprocessing on a :class:`~repro.tara.lifecycle.LifecycleTracker`.

The monitor is deliberately pull-based (the caller decides when a tick
happens) so it composes with any scheduler, test harness or batch job.

Monitoring windows grow: tick N covers ``start..N``, tick N+1 covers
``start..N+1`` — almost entirely overlapping.  Build the framework with
``cache=True`` (see :class:`~repro.core.framework.PSPFramework`) and
each tick re-mines only the newly covered year; the earlier years are
served from the year-segment query cache.  :attr:`PSPMonitor.cache_stats`
exposes the resulting hit rates for operators.

With ``stream=True`` the grow-window re-run is replaced entirely: ticks
are served by a :class:`~repro.stream.runtime.StreamRuntime` that
ingests the corpus as an event feed and recomputes only what each
micro-batch dirtied (index append, running SAI aggregates, conditional
retune/rescore).  The pull-based ``tick()`` API and the
:class:`TrendAlert` shape are unchanged — only the cost model moves
from O(corpus) per tick to O(new posts).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.framework import PSPFramework, PSPRunResult
from repro.core.timewindow import TimeWindow
from repro.obs.registry import ensure_registry
from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import WeightTable
from repro.tara.lifecycle import LifecycleTracker, ReprocessingEvent
from repro.tara.model import compile_threat_model
from repro.tara.scoring import BatchTaraScorer, TaraReportData
from repro.vehicle.network import VehicleNetwork


@dataclass(frozen=True)
class VectorChange:
    """One vector whose insider rating moved between two ticks."""

    vector: AttackVector
    before: FeasibilityRating
    after: FeasibilityRating

    @property
    def raised(self) -> bool:
        """True when the rating went up (more attack pressure)."""
        return self.after > self.before


@dataclass(frozen=True)
class TrendAlert:
    """Emitted when a tick changes the insider weight table."""

    upto_year: int
    changes: Tuple[VectorChange, ...]
    result: PSPRunResult
    #: The TARA re-scored with the shifted insider table over the
    #: monitor's compiled threat model (None without a monitored network).
    tara: Optional[TaraReportData] = None

    def describe(self) -> str:
        """One-line alert summary."""
        moved = ", ".join(
            f"{c.vector.value}: {c.before.label()} -> {c.after.label()}"
            for c in self.changes
        )
        return f"[{self.upto_year}] insider ratings moved: {moved}"


class PSPMonitor:
    """Re-runs PSP per tick and alerts on insider-table changes.

    Args:
        framework: the PSP framework to drive.
        start_year: first year covered by the analysis window.
        tracker: optional lifecycle tracker; when given, every alert also
            records a PSP_TREND_SHIFT reprocessing event on it.
        learn: whether each tick runs keyword auto-learning.
        network: optional vehicle architecture; when given, the monitor
            compiles its threat model once and every alert carries the
            TARA re-scored with the shifted insider table
            (:attr:`TrendAlert.tara`) — continuous TARA at the cost of a
            memoised scoring sweep per shift.
        stream: serve ticks from a streaming runtime instead of full
            pipeline re-runs.  Incompatible with ``learn=True``
            (streaming keyword learning is an open roadmap item).
        feed: event feed for stream mode; defaults to replaying the
            framework client's backing corpus in timestamp order.
        post_filter: authenticity filter for the stream-mode feed path.
            Defaults to the filter of a
            :class:`~repro.core.poisoning.FilteringClient` found in the
            framework's client stack, so a filtering batch monitor
            stays filtering when switched to ``stream=True``.
        shards: with ``stream=True`` and ``shards > 1``, the corpus
            feed is hash-partitioned into this many shard feeds served
            by a :class:`~repro.stream.sharding.ShardedStreamRuntime` —
            same ``tick()`` API and alerts, but per-shard ingest with
            one merged evaluation per tick.  Requires the default
            corpus-backed feed (pass pre-sharded feeds to the sharded
            runtime directly for custom topologies).
        workers: executor parallelism for the sharded runtime's shard
            jobs (resolved by
            :func:`~repro.core.executor.resolve_executor`).
        metrics: optional :class:`~repro.obs.registry.MetricsRegistry`.
            In stream mode it is threaded into the backing runtime
            (which owns the tick/alert counters and span tracing); in
            batch mode the monitor itself counts ``psp_ticks_total`` and
            ``psp_alerts_total`` so both modes expose the same health
            counters.
    """

    def __init__(
        self,
        framework: PSPFramework,
        *,
        start_year: int,
        tracker: Optional[LifecycleTracker] = None,
        learn: bool = False,
        network: Optional[VehicleNetwork] = None,
        stream: bool = False,
        feed=None,
        post_filter=None,
        shards: Optional[int] = None,
        workers: Optional[int] = None,
        metrics=None,
    ) -> None:
        self._framework = framework
        self._start_year = start_year
        self._tracker = tracker
        self._learn = learn
        self._last_table: Optional[WeightTable] = None
        self._alerts: List[TrendAlert] = []
        self._last_year: Optional[int] = None
        self._last_date: Optional[dt.date] = None
        self._scorer: Optional[BatchTaraScorer] = None
        self._runtime = None
        self._metrics = ensure_registry(metrics)
        if shards is not None and not stream:
            raise ValueError("shards= needs stream=True")
        if stream:
            if learn:
                raise ValueError(
                    "stream mode does not support keyword learning yet"
                )
            self._runtime = _build_stream_runtime(
                framework,
                start_year=start_year,
                tracker=tracker,
                network=network,
                feed=feed,
                post_filter=post_filter,
                shards=shards,
                workers=workers,
                metrics=metrics,
            )
            self._scorer = self._runtime.tara_scorer
            # The runtime owns psp_ticks_total / psp_alerts_total — the
            # monitor counting them again would double every tick.
            self._ticks_total = None
            self._alerts_total = None
        else:
            if network is not None:
                self._scorer = BatchTaraScorer(compile_threat_model(network))
            self._ticks_total = self._metrics.counter(
                "psp_ticks_total", "Stream ticks processed"
            )
            self._alerts_total = self._metrics.counter(
                "psp_alerts_total", "Trend alerts emitted"
            )

    @property
    def alerts(self) -> Tuple[TrendAlert, ...]:
        """All alerts emitted so far, oldest first."""
        return tuple(self._alerts)

    @property
    def current_table(self) -> Optional[WeightTable]:
        """The insider table from the latest tick (None before any tick)."""
        return self._last_table

    @property
    def cache_stats(self):
        """The driven framework's cache statistics (None when uncached)."""
        return self._framework.cache_stats

    @property
    def tara_scorer(self) -> Optional[BatchTaraScorer]:
        """The compiled-model scorer (None without a monitored network)."""
        return self._scorer

    @property
    def stream_runtime(self):
        """The backing streaming runtime (None in batch mode)."""
        return self._runtime

    @property
    def metrics(self):
        """The telemetry registry (a no-op NullRegistry by default)."""
        return self._metrics

    def baseline_tara(self) -> Optional[TaraReportData]:
        """The static-table TARA over the monitored architecture.

        Returns None when the monitor was built without a network.
        Repeated calls re-score from the warm feasibility memo.
        """
        if self._scorer is None:
            return None
        return self._scorer.score()

    def tick(self, upto_year: int) -> Optional[TrendAlert]:
        """Run one monitoring tick covering ``start_year..upto_year``.

        Returns the alert when the insider table changed versus the
        previous tick, else None.  The first tick establishes the
        baseline and never alerts.

        Raises:
            ValueError: when ticks go backwards in time.
        """
        if upto_year < self._start_year:
            raise ValueError(
                f"tick year {upto_year} precedes start year {self._start_year}"
            )
        if self._last_year is not None and upto_year <= self._last_year:
            raise ValueError(
                f"ticks must advance: {upto_year} after {self._last_year}"
            )
        return self._tick_until(
            dt.date(upto_year, 12, 31), upto_year=upto_year
        )

    def tick_date(self, until: dt.date) -> Optional[TrendAlert]:
        """Run one date-granular tick covering ``start_year-01-01..until``.

        The sub-year counterpart of :meth:`tick` — the replay harness
        (:mod:`repro.stream.replay`) drives monthly boundaries through
        it.  Same contract: the first tick establishes the baseline and
        never alerts, ticks must strictly advance (a ``tick_date`` may
        interleave with yearly :meth:`tick` calls as long as time moves
        forward).

        Raises:
            ValueError: when ticks go backwards in time.
        """
        if until.year < self._start_year:
            raise ValueError(
                f"tick date {until} precedes start year {self._start_year}"
            )
        return self._tick_until(until, upto_year=until.year)

    def _tick_until(
        self, until: dt.date, *, upto_year: int
    ) -> Optional[TrendAlert]:
        if self._last_date is not None and until <= self._last_date:
            raise ValueError(
                f"ticks must advance: {until} after {self._last_date}"
            )
        if self._runtime is not None:
            tick = self._runtime.advance_to(until, upto_year=upto_year)
            if tick.alert is not None:
                # The runtime already recorded the lifecycle event.
                self._alerts.append(tick.alert)
            self._last_table = self._runtime.current_table
            self._advance_clock(until)
            return tick.alert
        if until == dt.date(upto_year, 12, 31):
            window = TimeWindow.years(self._start_year, upto_year)
        else:
            window = TimeWindow(
                since=dt.date(self._start_year, 1, 1),
                until=until,
                label=f"{self._start_year}..{until.isoformat()}",
            )
        result = self._framework.run(window, learn=self._learn)
        if self._ticks_total is not None:
            self._ticks_total.inc()
        table = result.insider_table
        alert: Optional[TrendAlert] = None
        if self._last_table is not None:
            changed = table.differs_from(self._last_table)
            if changed:
                changes = tuple(
                    VectorChange(
                        vector=vector,
                        before=self._last_table.rating(vector),
                        after=table.rating(vector),
                    )
                    for vector in changed
                )
                tara = (
                    self._scorer.score(insider_table=table)
                    if self._scorer is not None
                    else None
                )
                alert = TrendAlert(
                    upto_year=upto_year,
                    changes=changes,
                    result=result,
                    tara=tara,
                )
                self._alerts.append(alert)
                if self._alerts_total is not None:
                    self._alerts_total.inc()
                if self._tracker is not None:
                    self._tracker.report_trend_shift(alert.describe())
        self._last_table = table
        self._advance_clock(until)
        return alert

    def _advance_clock(self, until: dt.date) -> None:
        """Record monitor time: full years covered plus the exact date."""
        self._last_date = until
        # The yearly guard tracks *fully covered* years, so a mid-year
        # tick_date(2020-06-30) still allows a later tick(2020).
        if until == dt.date(until.year, 12, 31):
            self._last_year = until.year
        else:
            self._last_year = until.year - 1

    def run_years(self, first: int, last: int) -> List[TrendAlert]:
        """Tick once per year from ``first`` to ``last`` inclusive."""
        if first > last:
            raise ValueError(f"first year {first} > last year {last}")
        alerts = []
        for year in range(first, last + 1):
            alert = self.tick(year)
            if alert is not None:
                alerts.append(alert)
        return alerts

    def reprocessing_events(self) -> Tuple[ReprocessingEvent, ...]:
        """The lifecycle events this monitor caused (empty without tracker)."""
        if self._tracker is None:
            return ()
        return tuple(
            event
            for event in self._tracker.events
            if event.trigger.value == "psp_trend_shift"
        )

    def close(self) -> None:
        """Release the backing runtime's resources (idempotent).

        A sharded stream runtime may hold an executor worker pool; batch
        and single-stream monitors close as a no-op.
        """
        if self._runtime is not None:
            self._runtime.close()

    def __enter__(self) -> "PSPMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _build_stream_runtime(
    framework: PSPFramework,
    *,
    start_year: int,
    tracker: Optional[LifecycleTracker],
    network: Optional[VehicleNetwork],
    feed,
    post_filter=None,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    metrics=None,
):
    """A stream runtime mirroring one framework's batch configuration.

    The framework's client stack is unwrapped along the decorator
    ``inner`` chain: a :class:`~repro.core.poisoning.FilteringClient`
    found on the way donates its authenticity filter to the feed path
    (unless an explicit ``post_filter`` overrides it), and the
    innermost corpus-backed client donates the default feed.  With
    ``shards``, the corpus is hash-partitioned into shard feeds and a
    :class:`~repro.stream.sharding.ShardedStreamRuntime` serves the
    ticks instead.

    Imports are local: the stream package depends on this module (for
    the alert shape), so the monitor reaches back lazily.
    """
    from repro.core.poisoning import FilteringClient
    from repro.stream.feed import SyntheticFeed
    from repro.stream.runtime import StreamRuntime
    from repro.stream.sharding import ShardedStreamRuntime, shard_feeds

    client = framework.client
    while True:
        if post_filter is None and isinstance(client, FilteringClient):
            post_filter = client.post_filter
        inner = getattr(client, "inner", None)
        if inner is None:
            break
        client = inner
    corpus = getattr(client, "corpus", None)
    if shards is not None and shards > 1:
        if feed is not None:
            raise ValueError(
                "shards= partitions the corpus feed itself; for custom "
                "feeds build a ShardedStreamRuntime with pre-sharded "
                "feeds instead"
            )
        if corpus is None:
            raise ValueError(
                "shards= needs a corpus-backed framework client to "
                "partition"
            )
        return ShardedStreamRuntime(
            shard_feeds(corpus.posts, shards),
            framework.database,
            target=framework.target,
            config=framework.config,
            since_year=start_year,
            network=network,
            tracker=tracker,
            post_filter=post_filter,
            workers=workers,
            metrics=metrics,
        )
    if feed is None:
        if corpus is None:
            raise ValueError(
                "stream=True needs an explicit feed= when the framework's "
                "client is not corpus-backed"
            )
        feed = SyntheticFeed.from_corpus(corpus)
    return StreamRuntime(
        feed,
        framework.database,
        target=framework.target,
        config=framework.config,
        since_year=start_year,
        network=network,
        tracker=tracker,
        post_filter=post_filter,
        metrics=metrics,
    )
