"""Pluggable map-style executors for embarrassingly parallel stages.

Several PSP stages are independent per work item — the per-shard ingest
of :class:`~repro.stream.sharding.ShardedStreamRuntime`, the per-member
sai→split→tune tail of :func:`~repro.core.pipeline.run_fleet`, the
per-table scoring sweep of :func:`~repro.tara.engine.fleet_taras`.  This
module gives them one tiny ordered-``map`` abstraction with three
interchangeable strategies:

* :class:`SerialExecutor` — plain in-process loop; zero overhead, the
  default, and the reference semantics every other executor must match;
* :class:`ThreadExecutor` — a shared :class:`~concurrent.futures.
  ThreadPoolExecutor`; right for stages touching shared in-memory state
  (caches, memo dicts) that pickling would have to copy;
* :class:`ProcessExecutor` — a :class:`~concurrent.futures.
  ProcessPoolExecutor`; right for pure CPU-bound kernels with picklable
  payloads (the sharded runtime's :class:`~repro.stream.deltas.
  SignalDelta` jobs are designed for exactly this).

:func:`resolve_executor` encodes the deployment policy: parallelism is
requested with a worker count but only *granted* when the hardware can
honour it — on a single-core host every strategy silently degrades to
serial rather than paying thread-switch or pickle/IPC overhead for no
wall-clock win.  Results are always returned in submission order, and a
worker exception propagates to the caller (after the batch settles), so
swapping strategies never changes observable behaviour — property of
every executor, asserted in ``tests/core/test_executor.py``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

_In = TypeVar("_In")
_Out = TypeVar("_Out")

#: Strategy names accepted by :func:`resolve_executor`.
EXECUTOR_KINDS = ("auto", "serial", "thread", "process")


class SerialExecutor:
    """The reference executor: an ordered in-process loop."""

    kind = "serial"
    workers = 1

    def map(
        self, fn: Callable[[_In], _Out], items: Sequence[_In]
    ) -> List[_Out]:
        """Apply ``fn`` to every item, in order."""
        return [fn(item) for item in items]

    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _PoolExecutor:
    """Shared lazy-pool plumbing of the thread and process executors."""

    kind = "pool"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    def map(
        self, fn: Callable[[_In], _Out], items: Sequence[_In]
    ) -> List[_Out]:
        """Apply ``fn`` to every item concurrently; ordered results.

        The pool is created on first use and reused across calls — a
        streaming runtime ticks thousands of times, so worker startup
        is paid once, not per tick.
        """
        items = list(items)
        if not items:
            return []
        if len(items) == 1:  # no concurrency to exploit; skip the pool
            return [fn(items[0])]
        if self._pool is None:
            self._pool = self._make_pool()
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ThreadExecutor(_PoolExecutor):
    """Ordered map over a lazily created thread pool."""

    kind = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessExecutor(_PoolExecutor):
    """Ordered map over a lazily created process pool.

    ``fn`` and every item/result must be picklable — the sharded
    runtime's shard jobs are module-level functions over plain-data
    payloads for exactly this reason.
    """

    kind = "process"

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.workers)


def available_cpus() -> int:
    """The CPUs this process may use (1 when undetectable)."""
    return os.cpu_count() or 1


def resolve_executor(
    workers: Optional[int] = None,
    *,
    kind: str = "auto",
    prefer: str = "process",
):
    """An executor honouring a requested worker count on this hardware.

    Args:
        workers: requested parallelism; ``None``, 0 or 1 mean serial.
        kind: ``"serial"``, ``"thread"``, ``"process"``, or ``"auto"``
            (pick ``prefer`` when parallelism is both requested and
            worth granting).
        prefer: the parallel strategy ``auto`` resolves to.

    ``auto`` degrades to :class:`SerialExecutor` on a single-CPU host:
    pure-Python kernels cannot go faster than serial there, so paying
    pool and pickling overhead would only slow the tick down.  Explicit
    ``kind="thread"``/``"process"`` always honour the request — tests
    and IO-bound callers know what they are doing.
    """
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}"
        )
    if prefer not in ("thread", "process"):
        raise ValueError(f"prefer must be 'thread' or 'process', got {prefer!r}")
    requested = int(workers) if workers else 1
    if requested < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if kind == "serial" or requested <= 1:
        return SerialExecutor()
    if kind == "auto":
        if available_cpus() <= 1:
            return SerialExecutor()
        kind = prefer
    if kind == "thread":
        return ThreadExecutor(requested)
    return ProcessExecutor(requested)
