"""Insider/outsider classification of SAI entries (paper Fig. 7, blocks 8-9).

The paper defines *insider* attacks as "all attacks that the owner is
aware of and approves, even if the attack comes from third parties (e.g.,
an untrusted service, a racing workshop)", and *outsider* attacks as those
"conducted by a third party only, where the owner is oblivious (e.g.,
criminal attacks, thefts, black hat attacks)".

Classification strategy, in priority order:

1. **Database annotation** — when the keyword entry carries an
   ``owner_approved`` flag, use it (the product security team knows its
   attacks).
2. **Text signals** — otherwise scan the matched posts: owner-voice
   markers ("my", "got", "installed", "worth it") vote insider;
   crime-voice markers ("stolen", "thieves", "police", "arrested") vote
   outsider.  Ties and empty evidence default to **outsider**, the
   conservative choice: outsider entries keep the standard's weights, so
   a mis-default can never inflate a rating.

The result is a partition: every entry lands in exactly one class
(property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.sai import SAIEntry, SAIList
from repro.nlp.analysis import analyze_text
from repro.social.api import SearchQuery, SocialMediaClient

#: First-person owner-voice markers (insider vote).
INSIDER_MARKERS = frozenset(
    {"my", "mine", "got", "installed", "did", "bought", "paid", "worth",
     "recommend", "mechanic", "workshop", "saved", "finally"}
)

#: Third-person crime-voice markers (outsider vote).
OUTSIDER_MARKERS = frozenset(
    {"stolen", "steal", "thieves", "theft", "police", "arrested", "gang",
     "criminals", "warning", "insurance", "investigators", "taken"}
)


@dataclass(frozen=True)
class ClassifiedEntry:
    """A SAI entry with its insider/outsider verdict and evidence."""

    entry: SAIEntry
    insider: bool
    from_annotation: bool
    insider_votes: int
    outsider_votes: int


@dataclass(frozen=True)
class InsiderOutsiderSplit:
    """The partition of a SAI list into insider and outsider entries."""

    insider: Tuple[ClassifiedEntry, ...]
    outsider: Tuple[ClassifiedEntry, ...]

    @property
    def insider_entries(self) -> Tuple[SAIEntry, ...]:
        """The raw SAI entries classified insider."""
        return tuple(c.entry for c in self.insider)

    @property
    def outsider_entries(self) -> Tuple[SAIEntry, ...]:
        """The raw SAI entries classified outsider."""
        return tuple(c.entry for c in self.outsider)

    @property
    def insider_probability_mass(self) -> float:
        """Total SAI probability mass held by insider entries."""
        return sum(e.probability for e in self.insider_entries)

    def all_keywords(self) -> Tuple[str, ...]:
        """Keywords of both classes (insider first), for partition checks."""
        return tuple(c.entry.keyword for c in self.insider + self.outsider)


def _text_votes(texts: Sequence[str]) -> Tuple[int, int]:
    """Count insider vs outsider marker votes over post texts.

    Reads the precomputed word set off the shared
    :func:`~repro.nlp.analysis.analyze_text` sidecar instead of
    re-normalizing each text.
    """
    insider_votes = 0
    outsider_votes = 0
    for text in texts:
        tokens = analyze_text(text).word_set
        if tokens & INSIDER_MARKERS:
            insider_votes += 1
        if tokens & OUTSIDER_MARKERS:
            outsider_votes += 1
    return insider_votes, outsider_votes


class InsiderOutsiderClassifier:
    """Classifies SAI entries using annotations, then text signals."""

    def __init__(self, client: Optional[SocialMediaClient] = None) -> None:
        self._client = client

    def classify_entry(self, entry: SAIEntry) -> ClassifiedEntry:
        """Classify one entry."""
        if entry.owner_approved is not None:
            return ClassifiedEntry(
                entry=entry,
                insider=entry.owner_approved,
                from_annotation=True,
                insider_votes=0,
                outsider_votes=0,
            )
        texts: Sequence[str] = ()
        if self._client is not None and entry.post_count > 0:
            posts = self._client.search(SearchQuery(keyword=entry.keyword))
            texts = [p.text for p in posts]
        insider_votes, outsider_votes = _text_votes(texts)
        return ClassifiedEntry(
            entry=entry,
            insider=insider_votes > outsider_votes,
            from_annotation=False,
            insider_votes=insider_votes,
            outsider_votes=outsider_votes,
        )

    def split(self, sai: SAIList) -> InsiderOutsiderSplit:
        """Partition a full SAI list."""
        insider = []
        outsider = []
        for entry in sai:
            classified = self.classify_entry(entry)
            if classified.insider:
                insider.append(classified)
            else:
                outsider.append(classified)
        return InsiderOutsiderSplit(
            insider=tuple(insider), outsider=tuple(outsider)
        )
