"""Query and SAI result caching for high-throughput PSP runs.

The PSP pipeline re-asks the social platform the same questions over and
over: sliding-window monitoring (:class:`~repro.core.monitor.PSPMonitor`)
re-mines ``start..N`` then ``start..N+1``, ablation sweeps evaluate five
weight mixes over identical posts, and fleet runs repeat every query per
target.  This module makes those repeats free:

* :class:`TTLCache` — a small generic cache with per-entry TTL, an
  injectable clock (tests use a fake), bounded size with FIFO eviction,
  and hit/miss/eviction statistics.
* :class:`CachedClient` — a :class:`~repro.social.api.SocialMediaClient`
  decorator caching search results keyed on
  ``(platform, keyword, region, time-window)``.  Year-aligned windows
  are decomposed into per-calendar-year segments so *overlapping*
  windows share cache entries: after mining 2015-2022, mining 2015-2023
  only touches the platform for 2023.
* :class:`SAICache` — memoises derived per-window results (SAI lists,
  full pipeline runs) keyed on the keyword-database
  :attr:`~repro.core.keywords.KeywordDatabase.version`, so keyword
  learning or re-annotation invalidates stale entries automatically.
* :class:`SidecarAggregates` — answers window-count and SAI-signal
  queries from a tiered index's cold-segment *sidecars* instead of post
  scans.  A spilled multi-year corpus then serves year-aligned
  ``count_by_year`` and whole-list SAI computations without hydrating a
  single cold segment from disk: the per-(keyword, year) bucket sums the
  sidecars already maintain are exactly the additive evidence
  :meth:`~repro.core.sai.SAIComputer.compute_from_signals` needs.

The decorator style follows :mod:`repro.social.resilience`: wrapping is
composable (``CachedClient(RetryingClient(platform))``) and the layers
above see the unchanged client interface.
"""

from __future__ import annotations

import datetime as dt
import threading
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.sai import KeywordSignals
from repro.nlp.analysis import analyze_text
from repro.nlp.normalize import canonical_keyword
from repro.nlp.sentiment import SentimentAnalyzer
from repro.social.api import (
    BatchQuery,
    BatchResult,
    SearchQuery,
    SocialMediaClient,
)
from repro.social.post import Engagement, Post


def _warm_analyses(posts: Iterable[Post]) -> None:
    """Precompute the text analysis of freshly fetched posts.

    A cache miss is the one moment a post is guaranteed new to this
    process, so the one-time :func:`~repro.nlp.analysis.analyze_text`
    cost (normalize, stem, tokenize) is paid here — with the fetch —
    rather than inside whichever downstream consumer (SAI sentiment,
    classification, keyword learning) first touches the post.  Cache
    hits return already-analyzed posts and skip this entirely.
    """
    for post in posts:
        analyze_text(post.text)


@dataclass
class CacheStats:
    """Observable cache behaviour, for tests, benches and operators."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups answered (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot for JSON reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


class TTLCache:
    """A bounded key→value cache with optional per-entry time-to-live.

    The store is safe under concurrent readers/writers (a parallel
    fleet's member tails classify through one shared cached client —
    see :func:`~repro.core.pipeline.run_fleet`): a lock serialises the
    expiry/eviction delete paths that would otherwise race.

    Args:
        ttl: seconds an entry stays valid; None means entries never
            expire by age.
        max_entries: size bound; the oldest entry is evicted when full
            (None = unbounded).
        clock: monotonic time source, injectable for deterministic tests.
    """

    def __init__(
        self,
        *,
        ttl: Optional[float] = None,
        max_entries: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._ttl = ttl
        self._max_entries = max_entries
        self._clock = clock
        self._entries: Dict[Hashable, Tuple[float, Any]] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def sibling(self) -> "TTLCache":
        """A fresh empty cache with the same TTL/size/clock policy.

        Lets one configured policy govern several stores (e.g. the query
        cache and the SAI cache of a framework) without them sharing
        entries or statistics.
        """
        return TTLCache(
            ttl=self._ttl, max_entries=self._max_entries, clock=self._clock
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return self.peek(key) is not _MISSING

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value, counting the lookup; ``default`` on miss."""
        with self._lock:
            value = self._peek_locked(key)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self.stats.hits += 1
            return value

    def peek(self, key: Hashable) -> Any:
        """Like :meth:`get` but without touching hit/miss statistics."""
        with self._lock:
            return self._peek_locked(key)

    def _peek_locked(self, key: Hashable) -> Any:
        """The lookup core; the caller holds the lock."""
        entry = self._entries.get(key)
        if entry is None:
            return _MISSING
        stored_at, value = entry
        if self._ttl is not None and self._clock() - stored_at > self._ttl:
            del self._entries[key]
            self.stats.expirations += 1
            return _MISSING
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value``, evicting the oldest entry when full."""
        with self._lock:
            if (
                self._max_entries is not None
                and key not in self._entries
                and len(self._entries) >= self._max_entries
            ):
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self.stats.evictions += 1
            self._entries[key] = (self._clock(), value)

    def invalidate(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``."""
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        return self.invalidate(lambda _key: True)


#: Sentinel distinguishing "cached None" from "not cached".
_MISSING = object()


def _year_span(query: SearchQuery) -> Optional[Tuple[int, int]]:
    """The (first, last) calendar years of a year-aligned bounded window.

    Returns None when the window is unbounded, not aligned to calendar
    years, or the query carries a limit (truncation does not distribute
    over segment concatenation).
    """
    if query.limit is not None:
        return None
    since, until = query.since, query.until
    if since is None or until is None:
        return None
    if (since.month, since.day) != (1, 1) or (until.month, until.day) != (12, 31):
        return None
    return since.year, until.year


@dataclass(frozen=True)
class _SegmentKey:
    """Cache key of one (platform, keyword, region, calendar-year) segment."""

    platform: str
    keyword: str
    region: Optional[str]
    year: int


@dataclass(frozen=True)
class _WindowKey:
    """Cache key of one non-decomposable whole-window query."""

    platform: str
    keyword: str
    region: Optional[str]
    since: Optional[dt.date]
    until: Optional[dt.date]
    limit: Optional[int]
    operation: str = "search"


def _aligned_years(
    since: Optional[dt.date], until: Optional[dt.date]
) -> Optional[Tuple[Optional[int], Optional[int]]]:
    """The (since_year, until_year) bounds of a year-resolvable window.

    Sidecar buckets are per-calendar-year, so only windows whose bounds
    sit exactly on year edges (or are absent) can be answered from them.
    Returns ``None`` for an unanswerable window — distinct from
    ``(None, None)``, the fully unbounded (answerable) one.
    """
    if since is not None and (since.month, since.day) != (1, 1):
        return None
    if until is not None and (until.month, until.day) != (12, 31):
        return None
    return (
        None if since is None else since.year,
        None if until is None else until.year,
    )


class SidecarAggregates:
    """Cold-sidecar-served aggregates for the batch query path.

    Wraps a :class:`~repro.stream.tiers.TieredCorpusIndex` (duck-typed:
    anything with ``signal_backfill``, ``sidecar_region``,
    ``sidecar_analyzer`` and ``__len__``) and answers per-year counts and
    per-keyword :class:`~repro.core.sai.KeywordSignals` from its
    aggregate sums.  Cold segments answer from their sidecars — a
    spilled index serves these queries without hydrating column data
    from disk; only warm/hot tiers are scanned, and only when the index
    has grown since the last build.

    The backfilled :class:`~repro.stream.deltas.SignalDelta` is memoised
    against the index size (posts are append-only, so ``len(index)`` is
    a complete freshness token) and the keyword set grows by union, so a
    fleet of queries over one database costs a single backfill.

    Answers are scoped exactly like the sidecars themselves: bucket sums
    are in-region for the index's ``sidecar_region`` and sentiment comes
    from its ``sidecar_analyzer`` — callers must check :attr:`region`
    and :meth:`analyzer_compatible` before trusting an answer
    (:class:`CachedClient` does).
    """

    def __init__(self, index: Any) -> None:
        self._index = index
        self._keywords: Tuple[str, ...] = ()
        self._known: set = set()
        self._delta: Any = None
        self._built_size: Optional[int] = None
        self._served_counts = 0
        self._served_signals = 0

    @property
    def index(self) -> Any:
        """The wrapped tiered index."""
        return self._index

    @property
    def region(self) -> Optional[str]:
        """The region scope of every answer (the sidecars' region)."""
        return self._index.sidecar_region

    @property
    def served_counts(self) -> int:
        """How many ``count_by_year`` answers came from sidecars."""
        return self._served_counts

    @property
    def served_signals(self) -> int:
        """How many ``window_signals`` answers came from sidecars."""
        return self._served_signals

    def analyzer_compatible(self, analyzer: Optional[SentimentAnalyzer]) -> bool:
        """Whether ``analyzer`` would score posts like the sidecars did.

        Sentiment sums are baked into the sidecar buckets with the
        index's own analyzer; an SAI computer carrying a *different*
        analyzer type must fall back to post scans.  ``None`` on either
        side means the deterministic default
        :class:`~repro.nlp.sentiment.SentimentAnalyzer`.
        """
        mine = self._index.sidecar_analyzer
        mine_type = type(mine) if mine is not None else SentimentAnalyzer
        their_type = type(analyzer) if analyzer is not None else SentimentAnalyzer
        return mine_type is their_type

    def _buckets(
        self, keywords: Sequence[str]
    ) -> Dict[str, Dict[int, List[float]]]:
        # Backfill and answer on canonical forms — the corpus search the
        # inner client runs folds query keywords the same way, so two
        # spellings sharing a canonical form share one bucket.
        requested = dict.fromkeys(
            canonical_keyword(keyword) for keyword in keywords
        )
        missing = [k for k in requested if k and k not in self._known]
        size = len(self._index)
        if missing or self._delta is None or self._built_size != size:
            if missing:
                self._keywords = self._keywords + tuple(missing)
                self._known.update(missing)
            self._delta = self._index.signal_backfill(
                self._keywords,
                region=self._index.sidecar_region,
                analyzer=self._index.sidecar_analyzer,
            )
            self._built_size = size
        return self._delta.buckets

    def ensure(self, keywords: Sequence[str]) -> None:
        """Make the sidecars cover ``keywords`` (the prewarm analogue).

        Triggers the one-off sidecar extension for keywords the cold
        segments have not met yet, so later queries are pure bucket
        reads.
        """
        self._buckets(keywords)

    def count_by_year(
        self,
        keyword: str,
        *,
        since_year: Optional[int] = None,
        until_year: Optional[int] = None,
    ) -> Dict[int, int]:
        """Per-year in-region post counts of one keyword.

        Mirrors :meth:`~repro.social.api.InMemoryClient.count_by_year`:
        only years with at least one matching post appear.
        """
        years = self._buckets((keyword,)).get(canonical_keyword(keyword), {})
        out: Dict[int, int] = {}
        for year in sorted(years):
            if since_year is not None and year < since_year:
                continue
            if until_year is not None and year > until_year:
                continue
            posts = int(years[year][4])
            if posts:
                out[year] = posts
        self._served_counts += 1
        return out

    def window_signals(
        self,
        keywords: Sequence[str],
        *,
        since_year: Optional[int] = None,
        until_year: Optional[int] = None,
    ) -> Dict[str, KeywordSignals]:
        """Per-keyword :class:`KeywordSignals` over a year window.

        Mirrors :meth:`~repro.stream.deltas.DeltaTracker.signals`:
        buckets are summed in ascending year order and keywords with no
        in-window posts are omitted
        (:meth:`~repro.core.sai.SAIComputer.compute_from_signals`
        treats them as empty).
        """
        buckets = self._buckets(keywords)
        out: Dict[str, KeywordSignals] = {}
        for keyword in dict.fromkeys(keywords):
            years = buckets.get(canonical_keyword(keyword), {})
            views = likes = reposts = replies = posts = 0
            sentiment_sum = 0.0
            for year in sorted(years):
                if since_year is not None and year < since_year:
                    continue
                if until_year is not None and year > until_year:
                    continue
                values = years[year]
                views += int(values[0])
                likes += int(values[1])
                reposts += int(values[2])
                replies += int(values[3])
                posts += int(values[4])
                sentiment_sum += float(values[5])
            if posts == 0:
                continue
            out[keyword] = KeywordSignals(
                engagement=Engagement(
                    views=views, likes=likes, reposts=reposts, replies=replies
                ),
                mean_sentiment=sentiment_sum / posts,
                post_count=posts,
            )
        self._served_signals += 1
        return out

    @property
    def stats(self) -> Dict[str, Any]:
        """Serve counters plus the memo's freshness token."""
        return {
            "served_counts": self._served_counts,
            "served_signals": self._served_signals,
            "keywords": len(self._keywords),
            "built_size": self._built_size,
        }


class CachedClient(SocialMediaClient):
    """Caching decorator over any :class:`SocialMediaClient`.

    Search results are cached per ``(platform, keyword, region,
    time-window)``.  Windows aligned to calendar years are stored as
    per-year *segments*: a query for 2015-2023 is answered by
    concatenating the nine year segments, fetching only the ones not yet
    cached.  Sliding and growing windows — the monitor's workload — thus
    re-mine only the years they newly cover instead of the whole window.

    Args:
        inner: the platform client actually hitting the backend.
        cache: the entry store; a fresh unbounded no-TTL
            :class:`TTLCache` by default.  Pass a shared instance to let
            several clients (or a client and its introspecting test)
            share entries and statistics.
        platform: label namespacing this client's keys inside a shared
            cache.
        aggregates: optional :class:`SidecarAggregates` over a tiered
            index holding the same corpus as ``inner``.  When attached,
            year-resolvable ``count_by_year`` queries and whole-list SAI
            signal requests (:meth:`window_signals`) are answered from
            cold-segment sidecars — no post fetch, no cold hydration —
            whenever the query's region matches the sidecars' region.
    """

    def __init__(
        self,
        inner: SocialMediaClient,
        *,
        cache: Optional[TTLCache] = None,
        platform: str = "default",
        aggregates: Optional[SidecarAggregates] = None,
    ) -> None:
        self._inner = inner
        self._cache = cache if cache is not None else TTLCache()
        self._platform = platform
        self._aggregates = aggregates

    @property
    def inner(self) -> SocialMediaClient:
        """The wrapped client."""
        return self._inner

    @property
    def aggregates(self) -> Optional[SidecarAggregates]:
        """The attached sidecar aggregates (None when post-scan only)."""
        return self._aggregates

    @property
    def cache(self) -> TTLCache:
        """The backing entry store (shared statistics live here)."""
        return self._cache

    @property
    def stats(self) -> CacheStats:
        """Hit/miss statistics of the backing store."""
        return self._cache.stats

    # -- key construction ----------------------------------------------------

    def _window_key(self, query: SearchQuery, operation: str = "search") -> _WindowKey:
        return _WindowKey(
            platform=self._platform,
            keyword=query.keyword,
            region=query.region,
            since=query.since,
            until=query.until,
            limit=query.limit,
            operation=operation,
        )

    def _segment_keys(self, query: SearchQuery) -> Optional[List[_SegmentKey]]:
        span = _year_span(query)
        if span is None:
            return None
        first, last = span
        return [
            _SegmentKey(
                platform=self._platform,
                keyword=query.keyword,
                region=query.region,
                year=year,
            )
            for year in range(first, last + 1)
        ]

    @staticmethod
    def _segment_query(query: SearchQuery, year: int) -> SearchQuery:
        return SearchQuery(
            keyword=query.keyword,
            since=dt.date(year, 1, 1),
            until=dt.date(year, 12, 31),
            region=query.region,
        )

    # -- client interface ----------------------------------------------------

    def search(self, query: SearchQuery) -> List[Post]:
        """Cached search; only uncovered year segments hit the platform."""
        segments = self._segment_keys(query)
        if segments is None:
            key = self._window_key(query)
            cached = self._cache.get(key, _MISSING)
            if cached is not _MISSING:
                return list(cached)
            posts = tuple(self._inner.search(query))
            _warm_analyses(posts)
            self._cache.put(key, posts)
            return list(posts)

        out: List[Post] = []
        for key in segments:
            cached = self._cache.get(key, _MISSING)
            if cached is _MISSING:
                cached = tuple(
                    self._inner.search(self._segment_query(query, key.year))
                )
                _warm_analyses(cached)
                self._cache.put(key, cached)
            out.extend(cached)
        return out

    def count_by_year(self, query: SearchQuery) -> Dict[int, int]:
        """Cached per-year counts (whole-window granularity).

        With :class:`SidecarAggregates` attached, year-resolvable
        windows in the sidecars' region are answered from bucket sums
        directly — always fresh against the index, so they bypass the
        TTL cache entirely.
        """
        aggregates = self._aggregates
        if (
            aggregates is not None
            and query.region == aggregates.region
            and query.limit is None
        ):
            span = _aligned_years(query.since, query.until)
            if span is not None:
                return aggregates.count_by_year(
                    query.keyword, since_year=span[0], until_year=span[1]
                )
        key = self._window_key(query, operation="count")
        cached = self._cache.get(key, _MISSING)
        if cached is not _MISSING:
            return dict(cached)
        counts = dict(self._inner.count_by_year(query))
        self._cache.put(key, counts)
        return dict(counts)

    def search_many(self, batch: BatchQuery) -> BatchResult:
        """Batched search fetching only the uncovered (keyword, year) cells.

        For year-aligned windows the batch is resolved as a keyword×year
        grid of cache segments; the missing cells are grouped by year and
        fetched as one inner batch per year, so platform-side batching
        (shared corpus scope, bulk endpoints) still applies and a growing
        window re-mines only its newest year.  Non-decomposable windows
        fall back to one whole-window inner batch over the missed
        keywords.
        """
        probe = batch.query_for(batch.keywords[0])
        span = _year_span(probe)
        if span is None:
            return self._search_many_whole_window(batch)

        first, last = span
        grid: Dict[Tuple[str, int], Tuple[Post, ...]] = {}
        missing_by_year: Dict[int, List[str]] = {}
        for keyword in batch.keywords:
            for year in range(first, last + 1):
                key = _SegmentKey(
                    platform=self._platform,
                    keyword=keyword,
                    region=batch.region,
                    year=year,
                )
                cached = self._cache.get(key, _MISSING)
                if cached is _MISSING:
                    missing_by_year.setdefault(year, []).append(keyword)
                else:
                    grid[(keyword, year)] = cached

        for year, keywords in missing_by_year.items():
            fetched = self._inner.search_many(
                BatchQuery(
                    keywords=tuple(keywords),
                    since=dt.date(year, 1, 1),
                    until=dt.date(year, 12, 31),
                    region=batch.region,
                )
            )
            for keyword in keywords:
                posts = fetched.posts(keyword)
                _warm_analyses(posts)
                self._cache.put(
                    _SegmentKey(
                        platform=self._platform,
                        keyword=keyword,
                        region=batch.region,
                        year=year,
                    ),
                    posts,
                )
                grid[(keyword, year)] = posts

        results: Dict[str, Tuple[Post, ...]] = {}
        for keyword in batch.keywords:
            out: List[Post] = []
            for year in range(first, last + 1):
                out.extend(grid[(keyword, year)])
            results[keyword] = tuple(out)
        return BatchResult(posts_by_keyword=results)

    def _search_many_whole_window(self, batch: BatchQuery) -> BatchResult:
        """Fallback batch path caching at whole-window granularity."""
        results: Dict[str, Tuple[Post, ...]] = {}
        missing: List[str] = []
        for keyword in batch.keywords:
            cached = self._cache.get(
                self._window_key(batch.query_for(keyword)), _MISSING
            )
            if cached is _MISSING:
                missing.append(keyword)
            else:
                results[keyword] = tuple(cached)
        if missing:
            fetched = self._inner.search_many(batch.restricted_to(missing))
            for keyword in missing:
                posts = fetched.posts(keyword)
                _warm_analyses(posts)
                self._cache.put(self._window_key(batch.query_for(keyword)), posts)
                results[keyword] = posts
        # Preserve batch keyword order in the result mapping.
        return BatchResult(
            posts_by_keyword={k: results[k] for k in batch.keywords}
        )

    def window_signals(
        self,
        keywords: Sequence[str],
        *,
        region: Optional[str] = None,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
        analyzer: Optional[SentimentAnalyzer] = None,
    ) -> Optional[Dict[str, KeywordSignals]]:
        """Sidecar-served SAI evidence for a keyword list, if possible.

        The batch-SAI fast path: :meth:`~repro.core.sai.SAIComputer.compute`
        probes this method before fetching posts.  Returns ``None`` —
        "fall back to post scans" — unless aggregates are attached, the
        window is year-resolvable, the region matches the sidecars'
        scope, and ``analyzer`` is compatible with the one that built
        the sidecar sentiment sums.
        """
        aggregates = self._aggregates
        if aggregates is None or region != aggregates.region:
            return None
        if not aggregates.analyzer_compatible(analyzer):
            return None
        span = _aligned_years(since, until)
        if span is None:
            return None
        return aggregates.window_signals(
            keywords, since_year=span[0], until_year=span[1]
        )

    def prewarm_segments(
        self,
        keywords: Sequence[str],
        first_year: int,
        last_year: int,
        *,
        region: Optional[str] = None,
    ) -> int:
        """Populate the (keyword × year) segment grid for a year span.

        Fleet and monitor cadences know their windows up front (every
        window of a growing-window sequence lives inside one known year
        span), so an operator can pay the whole span's platform cost in
        one batched pass per missing year — after which every
        overlapping window resolves entirely from cache.  Returns the
        number of segments fetched; already-cached cells cost nothing.
        Warming is not a query: cache statistics (hits/misses) are
        untouched, so hit rates keep measuring real lookups.

        With :class:`SidecarAggregates` attached (and the region
        matching their scope), warming prepares *sidecar coverage*
        instead of post segments: the one-off sidecar extension for any
        keyword the cold segments have not met yet is paid here, after
        which counts and SAI signals resolve from bucket sums without
        fetching a single post.  Returns 0 — no segments were fetched.
        """
        if first_year > last_year:
            raise ValueError(
                f"first_year {first_year} > last_year {last_year}"
            )
        aggregates = self._aggregates
        if aggregates is not None and region == aggregates.region:
            aggregates.ensure(keywords)
            return 0
        missing_by_year: Dict[int, List[str]] = {}
        for keyword in dict.fromkeys(keywords):
            for year in range(first_year, last_year + 1):
                key = _SegmentKey(
                    platform=self._platform,
                    keyword=keyword,
                    region=region,
                    year=year,
                )
                if self._cache.peek(key) is _MISSING:
                    missing_by_year.setdefault(year, []).append(keyword)
        fetched_segments = 0
        for year, missing in missing_by_year.items():
            fetched = self._inner.search_many(
                BatchQuery(
                    keywords=tuple(missing),
                    since=dt.date(year, 1, 1),
                    until=dt.date(year, 12, 31),
                    region=region,
                )
            )
            for keyword in missing:
                posts = fetched.posts(keyword)
                _warm_analyses(posts)
                self._cache.put(
                    _SegmentKey(
                        platform=self._platform,
                        keyword=keyword,
                        region=region,
                        year=year,
                    ),
                    posts,
                )
                fetched_segments += 1
        return fetched_segments

    def invalidate_keyword(self, keyword: str) -> int:
        """Drop every cached entry for one keyword (any window/region)."""
        return self._cache.invalidate(
            lambda key: getattr(key, "keyword", None) == keyword
            and getattr(key, "platform", None) == self._platform
        )


@dataclass(frozen=True)
class _SAIKey:
    """Cache key for a derived per-window result."""

    database_version: int
    region: Optional[str]
    since: Optional[dt.date]
    until: Optional[dt.date]
    tag: str


class SAICache:
    """Memoises SAI lists (or whole pipeline runs) per analysis window.

    Keys embed the keyword database's
    :attr:`~repro.core.keywords.KeywordDatabase.version`, so any
    mutation — a learned hashtag, a new manual entry, a re-annotation —
    makes previous entries unreachable: invalidation-on-keyword-learning
    without the database knowing about its caches.  Unreachable stale
    entries are garbage-collected on the next :meth:`put`.
    """

    def __init__(self, cache: Optional[TTLCache] = None) -> None:
        self._cache = cache if cache is not None else TTLCache()

    @property
    def stats(self) -> CacheStats:
        """Hit/miss statistics of the backing store."""
        return self._cache.stats

    @staticmethod
    def _key(
        database_version: int,
        *,
        region: Optional[str],
        since: Optional[dt.date],
        until: Optional[dt.date],
        tag: str,
    ) -> _SAIKey:
        return _SAIKey(
            database_version=database_version,
            region=region,
            since=since,
            until=until,
            tag=tag,
        )

    def get(
        self,
        database_version: int,
        *,
        region: Optional[str] = None,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
        tag: str = "sai",
    ) -> Any:
        """The cached result for this exact (version, window) or None."""
        key = self._key(
            database_version, region=region, since=since, until=until, tag=tag
        )
        value = self._cache.get(key, _MISSING)
        return None if value is _MISSING else value

    def put(
        self,
        database_version: int,
        value: Any,
        *,
        region: Optional[str] = None,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
        tag: str = "sai",
    ) -> None:
        """Store a derived result, dropping entries of older DB versions."""
        self._cache.invalidate(
            lambda key: isinstance(key, _SAIKey)
            and key.database_version < database_version
        )
        key = self._key(
            database_version, region=region, since=since, until=until, tag=tag
        )
        self._cache.put(key, value)

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        return self._cache.clear()
