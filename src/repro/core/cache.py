"""Query and SAI result caching for high-throughput PSP runs.

The PSP pipeline re-asks the social platform the same questions over and
over: sliding-window monitoring (:class:`~repro.core.monitor.PSPMonitor`)
re-mines ``start..N`` then ``start..N+1``, ablation sweeps evaluate five
weight mixes over identical posts, and fleet runs repeat every query per
target.  This module makes those repeats free:

* :class:`TTLCache` — a small generic cache with per-entry TTL, an
  injectable clock (tests use a fake), bounded size with FIFO eviction,
  and hit/miss/eviction statistics.
* :class:`CachedClient` — a :class:`~repro.social.api.SocialMediaClient`
  decorator caching search results keyed on
  ``(platform, keyword, region, time-window)``.  Year-aligned windows
  are decomposed into per-calendar-year segments so *overlapping*
  windows share cache entries: after mining 2015-2022, mining 2015-2023
  only touches the platform for 2023.
* :class:`SAICache` — memoises derived per-window results (SAI lists,
  full pipeline runs) keyed on the keyword-database
  :attr:`~repro.core.keywords.KeywordDatabase.version`, so keyword
  learning or re-annotation invalidates stale entries automatically.

The decorator style follows :mod:`repro.social.resilience`: wrapping is
composable (``CachedClient(RetryingClient(platform))``) and the layers
above see the unchanged client interface.
"""

from __future__ import annotations

import datetime as dt
import threading
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.nlp.analysis import analyze_text
from repro.social.api import (
    BatchQuery,
    BatchResult,
    SearchQuery,
    SocialMediaClient,
)
from repro.social.post import Post


def _warm_analyses(posts: Iterable[Post]) -> None:
    """Precompute the text analysis of freshly fetched posts.

    A cache miss is the one moment a post is guaranteed new to this
    process, so the one-time :func:`~repro.nlp.analysis.analyze_text`
    cost (normalize, stem, tokenize) is paid here — with the fetch —
    rather than inside whichever downstream consumer (SAI sentiment,
    classification, keyword learning) first touches the post.  Cache
    hits return already-analyzed posts and skip this entirely.
    """
    for post in posts:
        analyze_text(post.text)


@dataclass
class CacheStats:
    """Observable cache behaviour, for tests, benches and operators."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups answered (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot for JSON reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


class TTLCache:
    """A bounded key→value cache with optional per-entry time-to-live.

    The store is safe under concurrent readers/writers (a parallel
    fleet's member tails classify through one shared cached client —
    see :func:`~repro.core.pipeline.run_fleet`): a lock serialises the
    expiry/eviction delete paths that would otherwise race.

    Args:
        ttl: seconds an entry stays valid; None means entries never
            expire by age.
        max_entries: size bound; the oldest entry is evicted when full
            (None = unbounded).
        clock: monotonic time source, injectable for deterministic tests.
    """

    def __init__(
        self,
        *,
        ttl: Optional[float] = None,
        max_entries: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._ttl = ttl
        self._max_entries = max_entries
        self._clock = clock
        self._entries: Dict[Hashable, Tuple[float, Any]] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def sibling(self) -> "TTLCache":
        """A fresh empty cache with the same TTL/size/clock policy.

        Lets one configured policy govern several stores (e.g. the query
        cache and the SAI cache of a framework) without them sharing
        entries or statistics.
        """
        return TTLCache(
            ttl=self._ttl, max_entries=self._max_entries, clock=self._clock
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return self.peek(key) is not _MISSING

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value, counting the lookup; ``default`` on miss."""
        with self._lock:
            value = self._peek_locked(key)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self.stats.hits += 1
            return value

    def peek(self, key: Hashable) -> Any:
        """Like :meth:`get` but without touching hit/miss statistics."""
        with self._lock:
            return self._peek_locked(key)

    def _peek_locked(self, key: Hashable) -> Any:
        """The lookup core; the caller holds the lock."""
        entry = self._entries.get(key)
        if entry is None:
            return _MISSING
        stored_at, value = entry
        if self._ttl is not None and self._clock() - stored_at > self._ttl:
            del self._entries[key]
            self.stats.expirations += 1
            return _MISSING
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value``, evicting the oldest entry when full."""
        with self._lock:
            if (
                self._max_entries is not None
                and key not in self._entries
                and len(self._entries) >= self._max_entries
            ):
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self.stats.evictions += 1
            self._entries[key] = (self._clock(), value)

    def invalidate(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``."""
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        return self.invalidate(lambda _key: True)


#: Sentinel distinguishing "cached None" from "not cached".
_MISSING = object()


def _year_span(query: SearchQuery) -> Optional[Tuple[int, int]]:
    """The (first, last) calendar years of a year-aligned bounded window.

    Returns None when the window is unbounded, not aligned to calendar
    years, or the query carries a limit (truncation does not distribute
    over segment concatenation).
    """
    if query.limit is not None:
        return None
    since, until = query.since, query.until
    if since is None or until is None:
        return None
    if (since.month, since.day) != (1, 1) or (until.month, until.day) != (12, 31):
        return None
    return since.year, until.year


@dataclass(frozen=True)
class _SegmentKey:
    """Cache key of one (platform, keyword, region, calendar-year) segment."""

    platform: str
    keyword: str
    region: Optional[str]
    year: int


@dataclass(frozen=True)
class _WindowKey:
    """Cache key of one non-decomposable whole-window query."""

    platform: str
    keyword: str
    region: Optional[str]
    since: Optional[dt.date]
    until: Optional[dt.date]
    limit: Optional[int]
    operation: str = "search"


class CachedClient(SocialMediaClient):
    """Caching decorator over any :class:`SocialMediaClient`.

    Search results are cached per ``(platform, keyword, region,
    time-window)``.  Windows aligned to calendar years are stored as
    per-year *segments*: a query for 2015-2023 is answered by
    concatenating the nine year segments, fetching only the ones not yet
    cached.  Sliding and growing windows — the monitor's workload — thus
    re-mine only the years they newly cover instead of the whole window.

    Args:
        inner: the platform client actually hitting the backend.
        cache: the entry store; a fresh unbounded no-TTL
            :class:`TTLCache` by default.  Pass a shared instance to let
            several clients (or a client and its introspecting test)
            share entries and statistics.
        platform: label namespacing this client's keys inside a shared
            cache.
    """

    def __init__(
        self,
        inner: SocialMediaClient,
        *,
        cache: Optional[TTLCache] = None,
        platform: str = "default",
    ) -> None:
        self._inner = inner
        self._cache = cache if cache is not None else TTLCache()
        self._platform = platform

    @property
    def inner(self) -> SocialMediaClient:
        """The wrapped client."""
        return self._inner

    @property
    def cache(self) -> TTLCache:
        """The backing entry store (shared statistics live here)."""
        return self._cache

    @property
    def stats(self) -> CacheStats:
        """Hit/miss statistics of the backing store."""
        return self._cache.stats

    # -- key construction ----------------------------------------------------

    def _window_key(self, query: SearchQuery, operation: str = "search") -> _WindowKey:
        return _WindowKey(
            platform=self._platform,
            keyword=query.keyword,
            region=query.region,
            since=query.since,
            until=query.until,
            limit=query.limit,
            operation=operation,
        )

    def _segment_keys(self, query: SearchQuery) -> Optional[List[_SegmentKey]]:
        span = _year_span(query)
        if span is None:
            return None
        first, last = span
        return [
            _SegmentKey(
                platform=self._platform,
                keyword=query.keyword,
                region=query.region,
                year=year,
            )
            for year in range(first, last + 1)
        ]

    @staticmethod
    def _segment_query(query: SearchQuery, year: int) -> SearchQuery:
        return SearchQuery(
            keyword=query.keyword,
            since=dt.date(year, 1, 1),
            until=dt.date(year, 12, 31),
            region=query.region,
        )

    # -- client interface ----------------------------------------------------

    def search(self, query: SearchQuery) -> List[Post]:
        """Cached search; only uncovered year segments hit the platform."""
        segments = self._segment_keys(query)
        if segments is None:
            key = self._window_key(query)
            cached = self._cache.get(key, _MISSING)
            if cached is not _MISSING:
                return list(cached)
            posts = tuple(self._inner.search(query))
            _warm_analyses(posts)
            self._cache.put(key, posts)
            return list(posts)

        out: List[Post] = []
        for key in segments:
            cached = self._cache.get(key, _MISSING)
            if cached is _MISSING:
                cached = tuple(
                    self._inner.search(self._segment_query(query, key.year))
                )
                _warm_analyses(cached)
                self._cache.put(key, cached)
            out.extend(cached)
        return out

    def count_by_year(self, query: SearchQuery) -> Dict[int, int]:
        """Cached per-year counts (whole-window granularity)."""
        key = self._window_key(query, operation="count")
        cached = self._cache.get(key, _MISSING)
        if cached is not _MISSING:
            return dict(cached)
        counts = dict(self._inner.count_by_year(query))
        self._cache.put(key, counts)
        return dict(counts)

    def search_many(self, batch: BatchQuery) -> BatchResult:
        """Batched search fetching only the uncovered (keyword, year) cells.

        For year-aligned windows the batch is resolved as a keyword×year
        grid of cache segments; the missing cells are grouped by year and
        fetched as one inner batch per year, so platform-side batching
        (shared corpus scope, bulk endpoints) still applies and a growing
        window re-mines only its newest year.  Non-decomposable windows
        fall back to one whole-window inner batch over the missed
        keywords.
        """
        probe = batch.query_for(batch.keywords[0])
        span = _year_span(probe)
        if span is None:
            return self._search_many_whole_window(batch)

        first, last = span
        grid: Dict[Tuple[str, int], Tuple[Post, ...]] = {}
        missing_by_year: Dict[int, List[str]] = {}
        for keyword in batch.keywords:
            for year in range(first, last + 1):
                key = _SegmentKey(
                    platform=self._platform,
                    keyword=keyword,
                    region=batch.region,
                    year=year,
                )
                cached = self._cache.get(key, _MISSING)
                if cached is _MISSING:
                    missing_by_year.setdefault(year, []).append(keyword)
                else:
                    grid[(keyword, year)] = cached

        for year, keywords in missing_by_year.items():
            fetched = self._inner.search_many(
                BatchQuery(
                    keywords=tuple(keywords),
                    since=dt.date(year, 1, 1),
                    until=dt.date(year, 12, 31),
                    region=batch.region,
                )
            )
            for keyword in keywords:
                posts = fetched.posts(keyword)
                _warm_analyses(posts)
                self._cache.put(
                    _SegmentKey(
                        platform=self._platform,
                        keyword=keyword,
                        region=batch.region,
                        year=year,
                    ),
                    posts,
                )
                grid[(keyword, year)] = posts

        results: Dict[str, Tuple[Post, ...]] = {}
        for keyword in batch.keywords:
            out: List[Post] = []
            for year in range(first, last + 1):
                out.extend(grid[(keyword, year)])
            results[keyword] = tuple(out)
        return BatchResult(posts_by_keyword=results)

    def _search_many_whole_window(self, batch: BatchQuery) -> BatchResult:
        """Fallback batch path caching at whole-window granularity."""
        results: Dict[str, Tuple[Post, ...]] = {}
        missing: List[str] = []
        for keyword in batch.keywords:
            cached = self._cache.get(
                self._window_key(batch.query_for(keyword)), _MISSING
            )
            if cached is _MISSING:
                missing.append(keyword)
            else:
                results[keyword] = tuple(cached)
        if missing:
            fetched = self._inner.search_many(batch.restricted_to(missing))
            for keyword in missing:
                posts = fetched.posts(keyword)
                _warm_analyses(posts)
                self._cache.put(self._window_key(batch.query_for(keyword)), posts)
                results[keyword] = posts
        # Preserve batch keyword order in the result mapping.
        return BatchResult(
            posts_by_keyword={k: results[k] for k in batch.keywords}
        )

    def prewarm_segments(
        self,
        keywords: Sequence[str],
        first_year: int,
        last_year: int,
        *,
        region: Optional[str] = None,
    ) -> int:
        """Populate the (keyword × year) segment grid for a year span.

        Fleet and monitor cadences know their windows up front (every
        window of a growing-window sequence lives inside one known year
        span), so an operator can pay the whole span's platform cost in
        one batched pass per missing year — after which every
        overlapping window resolves entirely from cache.  Returns the
        number of segments fetched; already-cached cells cost nothing.
        Warming is not a query: cache statistics (hits/misses) are
        untouched, so hit rates keep measuring real lookups.
        """
        if first_year > last_year:
            raise ValueError(
                f"first_year {first_year} > last_year {last_year}"
            )
        missing_by_year: Dict[int, List[str]] = {}
        for keyword in dict.fromkeys(keywords):
            for year in range(first_year, last_year + 1):
                key = _SegmentKey(
                    platform=self._platform,
                    keyword=keyword,
                    region=region,
                    year=year,
                )
                if self._cache.peek(key) is _MISSING:
                    missing_by_year.setdefault(year, []).append(keyword)
        fetched_segments = 0
        for year, missing in missing_by_year.items():
            fetched = self._inner.search_many(
                BatchQuery(
                    keywords=tuple(missing),
                    since=dt.date(year, 1, 1),
                    until=dt.date(year, 12, 31),
                    region=region,
                )
            )
            for keyword in missing:
                posts = fetched.posts(keyword)
                _warm_analyses(posts)
                self._cache.put(
                    _SegmentKey(
                        platform=self._platform,
                        keyword=keyword,
                        region=region,
                        year=year,
                    ),
                    posts,
                )
                fetched_segments += 1
        return fetched_segments

    def invalidate_keyword(self, keyword: str) -> int:
        """Drop every cached entry for one keyword (any window/region)."""
        return self._cache.invalidate(
            lambda key: getattr(key, "keyword", None) == keyword
            and getattr(key, "platform", None) == self._platform
        )


@dataclass(frozen=True)
class _SAIKey:
    """Cache key for a derived per-window result."""

    database_version: int
    region: Optional[str]
    since: Optional[dt.date]
    until: Optional[dt.date]
    tag: str


class SAICache:
    """Memoises SAI lists (or whole pipeline runs) per analysis window.

    Keys embed the keyword database's
    :attr:`~repro.core.keywords.KeywordDatabase.version`, so any
    mutation — a learned hashtag, a new manual entry, a re-annotation —
    makes previous entries unreachable: invalidation-on-keyword-learning
    without the database knowing about its caches.  Unreachable stale
    entries are garbage-collected on the next :meth:`put`.
    """

    def __init__(self, cache: Optional[TTLCache] = None) -> None:
        self._cache = cache if cache is not None else TTLCache()

    @property
    def stats(self) -> CacheStats:
        """Hit/miss statistics of the backing store."""
        return self._cache.stats

    @staticmethod
    def _key(
        database_version: int,
        *,
        region: Optional[str],
        since: Optional[dt.date],
        until: Optional[dt.date],
        tag: str,
    ) -> _SAIKey:
        return _SAIKey(
            database_version=database_version,
            region=region,
            since=since,
            until=until,
            tag=tag,
        )

    def get(
        self,
        database_version: int,
        *,
        region: Optional[str] = None,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
        tag: str = "sai",
    ) -> Any:
        """The cached result for this exact (version, window) or None."""
        key = self._key(
            database_version, region=region, since=since, until=until, tag=tag
        )
        value = self._cache.get(key, _MISSING)
        return None if value is _MISSING else value

    def put(
        self,
        database_version: int,
        value: Any,
        *,
        region: Optional[str] = None,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
        tag: str = "sai",
    ) -> None:
        """Store a derived result, dropping entries of older DB versions."""
        self._cache.invalidate(
            lambda key: isinstance(key, _SAIKey)
            and key.database_version < database_version
        )
        key = self._key(
            database_version, region=region, since=since, until=until, tag=tag
        )
        self._cache.put(key, value)

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        return self._cache.clear()
