"""Dynamic weight-table generation (paper Fig. 7, block 12; Fig. 8).

The PSP framework's main contribution: for **insider** threat scenarios it
re-derives the attack-vector→feasibility table from the SAI evidence,
while **outsider** threats keep the standard's fixed weights unchanged
(paper Fig. 8-A/B — "re-tuning the standard model weight values on the
outsider entries does not make sense").

Tuning rule: the insider SAI probability mass is aggregated per attack
vector; each vector's share is mapped to a rating through the configured
thresholds (default: >= 0.50 High, >= 0.25 Medium, >= 0.08 Low, else
Very Low).  Vectors with *no* social evidence at all fall back to the
standard's rating capped at Low — absence of chatter is weak evidence of
infeasibility, not proof, but it must not leave a remote vector rated
High for an insider tampering scenario the data says is hands-on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core.classification import InsiderOutsiderSplit
from repro.core.config import TuningThresholds
from repro.core.sai import SAIList
from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import WeightTable, standard_table


def rating_from_share(
    share: float, thresholds: Optional[TuningThresholds] = None
) -> FeasibilityRating:
    """Map a probability share in [0, 1] to a feasibility rating."""
    if not 0.0 <= share <= 1.0:
        raise ValueError(f"share must be in [0, 1], got {share}")
    t = thresholds or TuningThresholds()
    if share >= t.high:
        return FeasibilityRating.HIGH
    if share >= t.medium:
        return FeasibilityRating.MEDIUM
    if share >= t.low:
        return FeasibilityRating.LOW
    return FeasibilityRating.VERY_LOW


@dataclass(frozen=True)
class TuningOutcome:
    """The result of one weight-tuning run."""

    insider_table: WeightTable
    outsider_table: WeightTable
    vector_shares: Mapping[AttackVector, float]
    window_label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "vector_shares", dict(self.vector_shares))

    def changed_vectors(self) -> Tuple[AttackVector, ...]:
        """Vectors whose insider rating differs from the standard table."""
        return self.insider_table.differs_from(standard_table())


class WeightTuner:
    """Generates PSP weight tables from classified SAI evidence."""

    def __init__(self, thresholds: Optional[TuningThresholds] = None) -> None:
        self._thresholds = thresholds or TuningThresholds()

    def tune_from_shares(
        self,
        shares: Mapping[AttackVector, float],
        *,
        note: str = "",
    ) -> WeightTable:
        """Build an insider table from per-vector probability shares.

        Vectors absent from ``shares`` get the standard rating capped at
        Low (see module docstring).
        """
        base = standard_table()
        ratings: Dict[AttackVector, FeasibilityRating] = {}
        for vector in AttackVector:
            if vector in shares:
                ratings[vector] = rating_from_share(shares[vector], self._thresholds)
            else:
                capped = min(
                    base.rating(vector), FeasibilityRating.LOW, key=lambda r: r.level
                )
                ratings[vector] = capped
        return WeightTable(ratings, source="psp", note=note)

    def tune(
        self,
        split: InsiderOutsiderSplit,
        *,
        window_label: str = "",
    ) -> TuningOutcome:
        """Run the full tuning step on a classified SAI list.

        Insider entries drive the tuned table; the outsider table is
        always the standard's, untouched (paper Fig. 8-A).
        """
        shares = _insider_vector_shares(split)
        insider_table = self.tune_from_shares(
            shares, note=f"PSP-tuned ({window_label})" if window_label else "PSP-tuned"
        )
        return TuningOutcome(
            insider_table=insider_table,
            outsider_table=standard_table(),
            vector_shares=shares,
            window_label=window_label,
        )


def _insider_vector_shares(
    split: InsiderOutsiderSplit,
) -> Dict[AttackVector, float]:
    """Re-normalised probability mass per vector over insider entries."""
    mass: Dict[AttackVector, float] = {}
    total = 0.0
    for entry in split.insider_entries:
        if entry.vector is None:
            continue
        mass[entry.vector] = mass.get(entry.vector, 0.0) + entry.probability
        total += entry.probability
    if total <= 0:
        return {}
    return {vector: share / total for vector, share in mass.items()}


def tune_table_for_sai(
    sai: SAIList,
    *,
    thresholds: Optional[TuningThresholds] = None,
    note: str = "",
) -> WeightTable:
    """Shortcut: tune a table straight from a SAI list's vector shares.

    Useful when the caller has already restricted the SAI list to insider
    keywords (e.g. in the benches); for the full pipeline use
    :class:`WeightTuner` with a classified split.
    """
    tuner = WeightTuner(thresholds)
    return tuner.tune_from_shares(sai.probability_by_vector(), note=note)
