"""Financial attack-feasibility model (paper §III, Eqs. 1-7, Figs. 10-11).

The second PSP contribution: rate insider attacks by economic viability.
The underlying assumption is that vehicle owners initiate insider attacks
(tampering, reprogramming) to gain an advantage, so an insider attack is
feasible exactly when it is a viable business for whoever sells it.

Quantities and equations:

* ``PAE`` — potential attacker estimation (Eq. 2): vehicle sales times the
  potential-attacker percentage, with market share replacing sales in
  non-monopolistic markets.
* ``PPIA`` — maximum purchase price per insider attack, estimated by
  clustering online listing prices (:mod:`repro.nlp.clustering`).
* ``MV = PAE * PPIA`` — market value (Eq. 1; the paper's Eq. 6 instance is
  1,406 x 360 EUR = 506,160 EUR).
* ``FC = FTEH * ch + SLD`` — adversary fixed cost (Eq. 4): R&D hours times
  hourly rate plus straight-line CAPEX depreciation.
* ``BEP = FC * n / (PPIA - VCU)`` — break-even point in units (Eq. 3),
  with n attackers sharing the revenue.
* ``FC = BEP * (PPIA - VCU) / n`` — the inverse (Eq. 5): the investment an
  attack must absorb before it stops being profitable.  With BEP set to
  PAE this is the paper's "anti-tampering budget": 1,406 x 310 / 3 ≈
  145,286 EUR for the DPF example (Eq. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.errors import ModelInputError
from repro.iso21434.enums import FeasibilityRating
from repro.market.sales import SalesRecord


def potential_attackers(record: SalesRecord, attacker_rate: float) -> int:
    """PAE (Eq. 2): the expected number of potential attackers.

    For monopolistic markets the company's sales *are* the market, so VS
    is used directly; for non-monopolistic markets the company's share of
    the market — its own unit sales — bounds the attackable population.

    Args:
        record: the sales observation for the target application/region.
        attacker_rate: PEA, the fraction of owners considered potential
            attackers (from annual-report mining), in (0, 1].
    """
    if not 0.0 < attacker_rate <= 1.0:
        raise ModelInputError(f"attacker_rate must be in (0, 1], got {attacker_rate}")
    if record.monopolistic:
        units = record.units_sold
    else:
        # MS expressed in units: share of the regional market attributable
        # to the subject company, which its own unit sales measure.
        units = record.market_share * record.market_units
    return int(round(units * attacker_rate))


def market_value(pae: int, ppia: float) -> float:
    """MV (Eq. 1): the yearly market size of an insider attack."""
    if pae < 0:
        raise ModelInputError(f"PAE must be >= 0, got {pae}")
    if ppia < 0:
        raise ModelInputError(f"PPIA must be >= 0, got {ppia}")
    return pae * ppia


def fixed_cost(fte_hours: float, hourly_cost: float, sld: float) -> float:
    """FC (Eq. 4): adversary R&D fixed cost.

    Args:
        fte_hours: total hours to organise the adversary R&D (FTEH).
        hourly_cost: black-hat hourly rate (ch).
        sld: straight-line depreciation of CAPEX lab equipment.
    """
    if fte_hours < 0 or hourly_cost < 0 or sld < 0:
        raise ModelInputError("FC inputs must all be >= 0")
    return fte_hours * hourly_cost + sld


def break_even_point(
    fc: float, ppia: float, vcu: float, n: int = 1
) -> float:
    """BEP (Eq. 3): units to sell before an insider attack turns profitable.

    Args:
        fc: fixed cost of developing the attack.
        ppia: purchase price per unit.
        vcu: variable cost per unit (must be < ppia).
        n: number of attackers sharing the market (>= 1).
    """
    if fc < 0:
        raise ModelInputError(f"FC must be >= 0, got {fc}")
    if n < 1:
        raise ModelInputError(f"n must be >= 1, got {n}")
    margin = ppia - vcu
    if margin <= 0:
        raise ModelInputError(
            f"PPIA ({ppia}) must exceed VCU ({vcu}) for a break-even to exist"
        )
    return fc * n / margin


def fixed_cost_from_bep(
    bep: float, ppia: float, vcu: float, n: int = 1
) -> float:
    """Inverse BEP (Eq. 5): the investment that makes ``bep`` the break-even.

    Setting ``bep`` to the PAE answers the paper's security question: how
    much adversary investment must the product architecture withstand
    before the attack stops being profitable (Eq. 7).
    """
    if bep < 0:
        raise ModelInputError(f"BEP must be >= 0, got {bep}")
    if n < 1:
        raise ModelInputError(f"n must be >= 1, got {n}")
    margin = ppia - vcu
    if margin <= 0:
        raise ModelInputError(
            f"PPIA ({ppia}) must exceed VCU ({vcu}) for the inverse to exist"
        )
    return bep * margin / n


@dataclass(frozen=True)
class BreakEvenAnalysis:
    """The cost/revenue geometry of one insider attack (paper Fig. 11).

    Revenue per unit is the attacker's share of PPIA; total cost is
    FC + VCU x units.  The blue profitable zone of Fig. 11 is
    ``units > break_even``.
    """

    fc: float
    ppia: float
    vcu: float
    n: int = 1

    def __post_init__(self) -> None:
        if self.ppia - self.vcu <= 0:
            raise ModelInputError(
                f"PPIA ({self.ppia}) must exceed VCU ({self.vcu})"
            )
        if self.fc < 0 or self.n < 1:
            raise ModelInputError("FC must be >= 0 and n >= 1")

    @property
    def break_even(self) -> float:
        """Units at which revenue equals cost (Eq. 3)."""
        return break_even_point(self.fc, self.ppia, self.vcu, self.n)

    def revenue(self, units: float) -> float:
        """Attacker revenue after selling ``units`` (per-attacker share)."""
        if units < 0:
            raise ModelInputError("units must be >= 0")
        return (self.ppia / self.n) * units

    def cost(self, units: float) -> float:
        """Attacker total cost after producing ``units``."""
        if units < 0:
            raise ModelInputError("units must be >= 0")
        return self.fc + (self.vcu / self.n) * units

    def profit(self, units: float) -> float:
        """Revenue minus cost at ``units``."""
        return self.revenue(units) - self.cost(units)

    def is_profitable(self, units: float) -> bool:
        """Whether ``units`` lies in the profitable (blue) zone."""
        return self.profit(units) > 0

    def curve(self, max_units: float, points: int = 50) -> List[Tuple[float, float, float]]:
        """(units, revenue, cost) samples for plotting Fig. 11."""
        if points < 2:
            raise ModelInputError("need >= 2 curve points")
        step = max_units / (points - 1)
        return [
            (u, self.revenue(u), self.cost(u))
            for u in (i * step for i in range(points))
        ]


def financial_feasibility(
    mv: float, fc: float
) -> FeasibilityRating:
    """Map the market-value / fixed-cost ratio to a feasibility rating.

    This is the paper's "new attack feasibility index integrated into the
    general ISO-21434 models": an attack whose market dwarfs its required
    investment is highly feasible; one whose cost exceeds its market is
    not viable.

    ==============  ===================
    MV / FC ratio   Feasibility rating
    ==============  ===================
    >= 3.0          High
    >= 1.5          Medium
    >= 1.0          Low
    <  1.0          Very Low
    ==============  ===================

    A zero fixed cost with positive market value rates High (free attacks
    are maximally feasible); zero market value rates Very Low.
    """
    if mv < 0 or fc < 0:
        raise ModelInputError("MV and FC must be >= 0")
    if mv == 0:
        return FeasibilityRating.VERY_LOW
    if fc == 0:
        return FeasibilityRating.HIGH
    ratio = mv / fc
    if ratio >= 3.0:
        return FeasibilityRating.HIGH
    if ratio >= 1.5:
        return FeasibilityRating.MEDIUM
    if ratio >= 1.0:
        return FeasibilityRating.LOW
    return FeasibilityRating.VERY_LOW


@dataclass(frozen=True)
class FinancialAssessment:
    """Complete financial assessment of one insider attack."""

    keyword: str
    pae: int
    ppia: float
    vcu: float
    competitors: int
    mv: float
    fc_required: float
    feasibility: FeasibilityRating

    def __post_init__(self) -> None:
        if self.pae < 0 or self.competitors < 1:
            raise ModelInputError("PAE must be >= 0 and competitors >= 1")

    @property
    def margin(self) -> float:
        """Per-unit margin PPIA - VCU."""
        return self.ppia - self.vcu

    def analysis(self) -> BreakEvenAnalysis:
        """The break-even geometry with FC = the required investment."""
        return BreakEvenAnalysis(
            fc=self.fc_required, ppia=self.ppia, vcu=self.vcu, n=self.competitors
        )

    def describe(self) -> str:
        """Human-readable summary matching the paper's example prose."""
        return (
            f"{self.keyword}: MV = {self.pae} x {self.ppia:.0f} EUR "
            f"= {self.mv:,.0f} EUR/yr; required adversary investment "
            f"FC = {self.fc_required:,.0f} EUR across {self.competitors} "
            f"competitors; financial feasibility {self.feasibility.label()}"
        )


def assess(
    keyword: str,
    *,
    pae: int,
    ppia: float,
    vcu: float,
    competitors: int = 1,
) -> FinancialAssessment:
    """Run the full financial assessment for one attack.

    Computes MV (Eq. 1), the required adversary investment via the inverse
    BEP with BEP = PAE (Eq. 5/Eq. 7), and the MV/FC feasibility rating.
    """
    mv = market_value(pae, ppia)
    fc_required = fixed_cost_from_bep(pae, ppia, vcu, competitors)
    rating = financial_feasibility(mv, fc_required)
    return FinancialAssessment(
        keyword=keyword,
        pae=pae,
        ppia=ppia,
        vcu=vcu,
        competitors=competitors,
        mv=mv,
        fc_required=fc_required,
        feasibility=rating,
    )
