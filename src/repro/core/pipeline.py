"""The PSP pipeline as explicit, composable stages (paper Fig. 7).

The seed implementation hard-wired the Fig. 7 flow inside
:class:`~repro.core.framework.PSPFramework`; this module breaks it into
named stages —

    learn → query → sai → split → tune → financial

— each a small object with a ``name`` and a ``run(context)`` method over
a shared :class:`PipelineContext`.  Stages can be skipped (``learn=False``
is now "drop the learn stage"), swapped (a custom classifier stage for a
different insider heuristic), or re-run over a *fleet* of targets while
the expensive query stage executes once per (region, window) and its
post corpus is shared (:func:`run_fleet`).

Design follows the single-pass pipeline-composition idiom of the related
feed-filtering repos: one context object flows through a list of stages,
every stage reads what earlier stages produced and writes its own slot,
and the pipeline itself is just the ordered list — no hidden coupling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.classification import InsiderOutsiderClassifier, InsiderOutsiderSplit
from repro.core.config import PSPConfig, TargetApplication
from repro.core.errors import DataUnavailableError, PSPError
from repro.core.executor import resolve_executor
from repro.core.financial import FinancialAssessment
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.sai import SAIComputer, SAIList
from repro.core.timewindow import TimeWindow
from repro.core.weights import TuningOutcome, WeightTuner
from repro.social.api import BatchQuery, BatchResult, SocialMediaClient


@dataclass
class PipelineContext:
    """Mutable state flowing through the pipeline stages.

    Inputs (set by the caller) sit first; each stage fills exactly one
    of the output slots.  A slot left ``None`` means the producing stage
    was skipped — downstream stages that need it raise
    :class:`~repro.core.errors.PSPError` with the missing stage's name.
    """

    client: SocialMediaClient
    target: TargetApplication
    database: KeywordDatabase
    config: PSPConfig
    window: TimeWindow

    #: learn stage: keywords auto-learned this run.
    learned: Tuple[AttackKeyword, ...] = ()
    #: query stage: per-keyword posts for the window/region.
    batch: Optional[BatchResult] = None
    #: sai stage.
    sai: Optional[SAIList] = None
    #: split stage.
    split: Optional[InsiderOutsiderSplit] = None
    #: tune stage.
    tuning: Optional[TuningOutcome] = None
    #: financial stage: assessments for the assessed insider keywords.
    financial: Dict[str, FinancialAssessment] = field(default_factory=dict)

    def require(self, slot: str, producer: str) -> object:
        """The value of ``slot``, or a clear error naming the missing stage."""
        value = getattr(self, slot)
        if value is None:
            raise PSPError(
                f"pipeline slot {slot!r} is empty — run the {producer!r} "
                "stage first or provide it on the context"
            )
        return value


class PipelineStage:
    """One named step of the PSP pipeline.

    Subclasses set :attr:`name` and implement :meth:`run`; the base class
    exists so pipelines can be introspected, skipped and swapped by
    name.
    """

    name: str = "stage"

    def run(self, context: PipelineContext) -> None:
        """Execute the stage, reading and writing ``context`` slots."""
        raise NotImplementedError


class LearnStage(PipelineStage):
    """Auto-learn keywords from posts matching the known ones (block 5).

    Mines co-occurring hashtags over one batched query and adds the
    frequent ones to the database, mirroring the paper's auto-learning
    loop.  Learning *mutates the database*, bumping its version — which
    is exactly what invalidates any SAI caches.
    """

    name = "learn"

    def run(self, context: PipelineContext) -> None:
        if not len(context.database):
            return
        batch = BatchQuery(
            keywords=context.database.keywords,
            region=context.target.region,
            since=context.window.since,
            until=context.window.until,
        )
        result = context.client.search_many(batch)
        texts: List[str] = []
        for keyword in batch.keywords:
            texts.extend(p.text for p in result.posts(keyword))
        context.learned = tuple(
            context.database.learn_from_texts(
                texts,
                min_support=context.config.learning_min_support,
                max_new=context.config.learning_max_new,
            )
        )


class QueryStage(PipelineStage):
    """Fetch the window's posts for every keyword in one batch (block 2)."""

    name = "query"

    def run(self, context: PipelineContext) -> None:
        if not len(context.database):
            context.batch = BatchResult(posts_by_keyword={})
            return
        context.batch = context.client.search_many(
            BatchQuery(
                keywords=context.database.keywords,
                region=context.target.region,
                since=context.window.since,
                until=context.window.until,
            )
        )


class SAIStage(PipelineStage):
    """Score the SAI list from the fetched posts (blocks 6-7)."""

    name = "sai"

    def __init__(self, computer: Optional[SAIComputer] = None) -> None:
        self._computer = computer

    def run(self, context: PipelineContext) -> None:
        batch = context.require("batch", QueryStage.name)
        computer = self._computer or SAIComputer(
            context.client, config=context.config
        )
        context.sai = computer.compute_from_posts(
            context.database, batch.posts_by_keyword
        )


class SplitStage(PipelineStage):
    """Partition the SAI list into insider/outsider entries (blocks 8-9)."""

    name = "split"

    def __init__(
        self, classifier: Optional[InsiderOutsiderClassifier] = None
    ) -> None:
        self._classifier = classifier

    def run(self, context: PipelineContext) -> None:
        sai = context.require("sai", SAIStage.name)
        classifier = self._classifier or InsiderOutsiderClassifier(context.client)
        context.split = classifier.split(sai)


class TuneStage(PipelineStage):
    """Generate the insider/outsider weight tables (block 12, Fig. 8)."""

    name = "tune"

    def run(self, context: PipelineContext) -> None:
        split = context.require("split", SplitStage.name)
        tuner = WeightTuner(context.config.tuning)
        context.tuning = tuner.tune(
            split, window_label=context.window.describe()
        )


class FinancialStage(PipelineStage):
    """Assess the financial feasibility of top insider attacks (Fig. 10).

    Args:
        assessor: callable running one financial assessment — typically
            ``framework.assess_financial``; injected so the stage stays
            decoupled from the sales/report/price databases.
        top: how many of the highest-SAI insider keywords to assess.

    Keywords whose market data is missing are skipped rather than
    failing the pipeline: financial coverage is inherently partial (the
    paper only prices the DPF example), and one absent cost table must
    not abort a fleet assessment.
    """

    name = "financial"

    def __init__(self, assessor, *, top: int = 1) -> None:
        if top < 1:
            raise ValueError(f"top must be >= 1, got {top}")
        self._assessor = assessor
        self._top = top

    def run(self, context: PipelineContext) -> None:
        split = context.require("split", SplitStage.name)
        ranked = sorted(
            split.insider_entries, key=lambda e: -e.score
        )[: self._top]
        for entry in ranked:
            try:
                context.financial[entry.keyword] = self._assessor(entry.keyword)
            except DataUnavailableError:
                continue


class PSPPipeline:
    """An ordered list of stages with skip/swap composition.

    The default pipeline is the full Fig. 7 flow; callers tailor it::

        PSPPipeline.default().without("learn")           # skip learning
        PSPPipeline.default().replacing(SplitStage(...)) # custom classifier
    """

    def __init__(self, stages: Sequence[PipelineStage]) -> None:
        names = [stage.name for stage in stages]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate stage names: {names}")
        self._stages: Tuple[PipelineStage, ...] = tuple(stages)

    @classmethod
    def default(cls, *, learn: bool = True) -> "PSPPipeline":
        """The standard learn→query→sai→split→tune pipeline."""
        stages: List[PipelineStage] = []
        if learn:
            stages.append(LearnStage())
        stages.extend([QueryStage(), SAIStage(), SplitStage(), TuneStage()])
        return cls(stages)

    @property
    def stage_names(self) -> Tuple[str, ...]:
        """Names of the stages, in execution order."""
        return tuple(stage.name for stage in self._stages)

    def stage(self, name: str) -> PipelineStage:
        """Look up one stage by name."""
        for candidate in self._stages:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no stage named {name!r}")

    def without(self, *names: str) -> "PSPPipeline":
        """A copy with the named stages removed."""
        unknown = set(names) - set(self.stage_names)
        if unknown:
            raise KeyError(f"cannot skip unknown stages: {sorted(unknown)}")
        return PSPPipeline(
            [stage for stage in self._stages if stage.name not in names]
        )

    def replacing(self, replacement: PipelineStage) -> "PSPPipeline":
        """A copy with the same-named stage swapped for ``replacement``."""
        if replacement.name not in self.stage_names:
            raise KeyError(f"no stage named {replacement.name!r} to replace")
        return PSPPipeline(
            [
                replacement if stage.name == replacement.name else stage
                for stage in self._stages
            ]
        )

    def followed_by(self, stage: PipelineStage) -> "PSPPipeline":
        """A copy with ``stage`` appended."""
        return PSPPipeline(list(self._stages) + [stage])

    def run(self, context: PipelineContext) -> PipelineContext:
        """Execute every stage in order over ``context`` and return it."""
        for stage in self._stages:
            stage.run(context)
        return context


# -- fleet execution ---------------------------------------------------------


@dataclass(frozen=True)
class FleetMemberResult:
    """One fleet member's pipeline outcome."""

    target: TargetApplication
    context: PipelineContext

    @property
    def sai(self) -> SAIList:
        """The member's SAI list."""
        return self.context.require("sai", SAIStage.name)

    @property
    def tuning(self) -> TuningOutcome:
        """The member's weight-tuning outcome."""
        return self.context.require("tuning", TuneStage.name)

    @property
    def insider_table(self):
        """The member's PSP-tuned insider weight table (Fig. 8-B)."""
        return self.tuning.insider_table


@dataclass(frozen=True)
class FleetResult:
    """Results of one fleet pass, keyed by target description."""

    window: TimeWindow
    members: Tuple[FleetMemberResult, ...]
    #: Number of platform query passes executed (one per distinct region).
    query_passes: int

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def member(self, target: TargetApplication) -> FleetMemberResult:
        """Look up one member's result by target."""
        for candidate in self.members:
            if candidate.target == target:
                return candidate
        raise KeyError(f"no fleet member for target {target.describe()!r}")


def run_fleet(
    client: SocialMediaClient,
    targets: Sequence[TargetApplication],
    *,
    database: KeywordDatabase,
    config: Optional[PSPConfig] = None,
    window: Optional[TimeWindow] = None,
    learn: bool = False,
    workers: Optional[int] = None,
    executor=None,
) -> FleetResult:
    """Run the PSP pipeline over a fleet of targets in one pass.

    Targets sharing a region share the social corpus: the query stage
    executes once per distinct ``(region)`` in the fleet, and every
    member in that region reuses the fetched posts for its own
    sai→split→tune stages.  With 20 fleet targets in one region, the
    platform sees one batched query pass instead of 20.

    Keyword learning (when enabled) runs once up front on the shared
    database — a fleet shares its attack-keyword knowledge by design,
    matching the paper's "database accumulates across runs" lifecycle.

    Args:
        client: the shared social platform client.
        targets: the fleet; duplicates are rejected.
        database: shared attack-keyword database.
        config: pipeline tunables (defaults to :class:`PSPConfig`).
        window: analysis window (defaults to full history).
        learn: run one keyword auto-learning pass before querying.
        workers: run the per-member sai→split→tune tails through a
            thread-pool :mod:`~repro.core.executor` of this size.  The
            tails read the shared batch and classify through the shared
            (thread-safe) client cache, so any thread count produces
            member-for-member identical results.  Threads only — the
            members deliberately share the fetched corpus, its analysis
            memos and the query cache, none of which survive pickling
            to a process pool.
        executor: explicit executor instance; wins over ``workers``.
            Process executors are rejected (see ``workers``).
    """
    if not targets:
        raise ValueError("fleet needs at least one target")
    if len(set(targets)) != len(targets):
        raise ValueError("fleet targets must be distinct")
    if getattr(executor, "kind", None) == "process":
        raise ValueError(
            "run_fleet shares the fetched corpus and caches across "
            "members — use a thread executor (or workers=N)"
        )
    cfg = config or PSPConfig()
    win = window or TimeWindow.full_history()
    owns_executor = executor is None
    if owns_executor:
        executor = resolve_executor(workers, prefer="thread")

    if learn and targets:
        # One learning pass over the first region's scene; the database
        # (and its bumped version) is shared by every member.
        seed_context = PipelineContext(
            client=client,
            target=targets[0],
            database=database,
            config=cfg,
            window=win,
        )
        LearnStage().run(seed_context)

    by_region: Dict[str, List[TargetApplication]] = {}
    for target in targets:
        by_region.setdefault(target.region, []).append(target)

    tail = PSPPipeline([SAIStage(), SplitStage(), TuneStage()])

    def run_tail(context: PipelineContext) -> PipelineContext:
        return tail.run(context)

    members: List[FleetMemberResult] = []
    try:
        for region, region_targets in by_region.items():
            query_context = PipelineContext(
                client=client,
                target=region_targets[0],
                database=database,
                config=cfg,
                window=win,
            )
            QueryStage().run(query_context)
            contexts = [
                replace(query_context, target=target, financial={})
                for target in region_targets
            ]
            # The embarrassingly parallel stretch: every member's tail
            # reads the shared batch and writes only its own context.
            for target, context in zip(
                region_targets, executor.map(run_tail, contexts)
            ):
                members.append(
                    FleetMemberResult(target=target, context=context)
                )
    finally:
        if owns_executor:
            executor.close()

    ordered = {t: None for t in targets}
    for member in members:
        ordered[member.target] = member
    return FleetResult(
        window=win,
        members=tuple(ordered[t] for t in targets),
        query_passes=len(by_region),
    )
