"""Attack-keyword database with auto-learning (paper Fig. 7, blocks 3-5).

The keyword database is the PSP framework's working memory: each entry is
a canonical attack keyword optionally annotated with the attack vector it
uses in the real world and whether the attack is owner-approved (insider).
At the first interaction the database is populated manually with the
paper's standard hashtags; afterwards the auto-learning strategy mines
posts matching known keywords for co-occurring hashtags and proposes them
as new entries, so future runs have no "hashtag deficiencies, which may
cause partial and incomplete findings" (paper §III).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import PAPER_SEED_KEYWORDS
from repro.core.errors import KeywordError
from repro.iso21434.enums import AttackVector
from repro.nlp.hashtags import cooccurring_hashtags
from repro.nlp.normalize import canonical_keyword


class KeywordSource(enum.Enum):
    """How a keyword entered the database."""

    MANUAL = "manual"
    LEARNED = "learned"


@dataclass(frozen=True)
class AttackKeyword:
    """One attack-keyword database entry.

    Attributes:
        keyword: canonical keyword (see
            :func:`repro.nlp.normalize.canonical_keyword`).
        vector: the real-world attack vector of this attack, when known.
            Learned keywords start without one until an analyst annotates
            them; unannotated keywords cannot contribute to weight tuning.
        owner_approved: insider/outsider hint — True when the attack is
            owner-initiated tampering; None when unknown (the classifier
            then falls back to text signals).
        source: manual seed or auto-learned.
    """

    keyword: str
    vector: Optional[AttackVector] = None
    owner_approved: Optional[bool] = None
    source: KeywordSource = KeywordSource.MANUAL

    def __post_init__(self) -> None:
        canonical = canonical_keyword(self.keyword)
        if not canonical:
            raise KeywordError(f"keyword folds to empty: {self.keyword!r}")
        object.__setattr__(self, "keyword", canonical)

    def annotated(
        self,
        *,
        vector: Optional[AttackVector] = None,
        owner_approved: Optional[bool] = None,
    ) -> "AttackKeyword":
        """A copy with analyst annotations filled in."""
        return AttackKeyword(
            keyword=self.keyword,
            vector=vector if vector is not None else self.vector,
            owner_approved=(
                owner_approved if owner_approved is not None else self.owner_approved
            ),
            source=self.source,
        )


class KeywordDatabase:
    """Mutable attack-keyword store with co-occurrence learning."""

    def __init__(self, entries: Iterable[AttackKeyword] = ()) -> None:
        self._entries: Dict[str, AttackKeyword] = {}
        self._version = 0
        for entry in entries:
            self.add(entry)

    @property
    def version(self) -> int:
        """Monotonic change counter, bumped by every mutation.

        Caches of derived results (SAI lists, pipeline runs) key on this
        so adding, learning or re-annotating a keyword invalidates them
        without the database having to know its consumers.
        """
        return self._version

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    def __contains__(self, keyword: str) -> bool:
        return canonical_keyword(keyword) in self._entries

    def add(self, entry: AttackKeyword) -> AttackKeyword:
        """Add an entry; re-adding an existing keyword is an error."""
        if entry.keyword in self._entries:
            raise KeywordError(f"keyword {entry.keyword!r} already present")
        self._entries[entry.keyword] = entry
        self._version += 1
        return entry

    def get(self, keyword: str) -> AttackKeyword:
        """Look up an entry by (canonically folded) keyword."""
        canonical = canonical_keyword(keyword)
        try:
            return self._entries[canonical]
        except KeyError:
            raise KeywordError(f"unknown keyword {canonical!r}") from None

    def annotate(
        self,
        keyword: str,
        *,
        vector: Optional[AttackVector] = None,
        owner_approved: Optional[bool] = None,
    ) -> AttackKeyword:
        """Attach analyst annotations to an existing entry (in place)."""
        entry = self.get(keyword)
        updated = entry.annotated(vector=vector, owner_approved=owner_approved)
        self._entries[updated.keyword] = updated
        self._version += 1
        return updated

    @property
    def keywords(self) -> Tuple[str, ...]:
        """All canonical keywords, insertion-ordered."""
        return tuple(self._entries)

    def annotated_entries(self) -> Tuple[AttackKeyword, ...]:
        """Entries carrying a vector annotation (weight-tuning eligible)."""
        return tuple(e for e in self._entries.values() if e.vector is not None)

    def learned_entries(self) -> Tuple[AttackKeyword, ...]:
        """Entries added by auto-learning."""
        return tuple(
            e for e in self._entries.values() if e.source is KeywordSource.LEARNED
        )

    def learn_from_texts(
        self,
        texts: Sequence[str],
        *,
        min_support: float = 0.05,
        max_new: int = 10,
    ) -> List[AttackKeyword]:
        """Auto-learn new keywords from post texts (paper Fig. 7, block 5).

        Hashtags that co-occur with known keywords in at least
        ``min_support`` of the matching posts are added as LEARNED entries,
        capped at ``max_new`` per call.  Returns the newly added entries.
        """
        candidates = cooccurring_hashtags(
            texts,
            self.keywords,
            min_support=min_support,
            max_candidates=max_new,
        )
        added = []
        for candidate in candidates:
            if candidate.keyword in self._entries:
                continue
            entry = AttackKeyword(
                keyword=candidate.keyword, source=KeywordSource.LEARNED
            )
            self._entries[entry.keyword] = entry
            self._version += 1
            added.append(entry)
        return added


def paper_seed_database() -> KeywordDatabase:
    """The manually seeded database of the paper's first interaction.

    Contains the six standard hashtags from §III with their real-world
    vector and insider annotations (emission-defeat attacks are physical
    or local owner-approved tampering).
    """
    annotations: Dict[str, Tuple[AttackVector, bool]] = {
        "dpfdelete": (AttackVector.PHYSICAL, True),
        "egrremoval": (AttackVector.PHYSICAL, True),
        "egrdelete": (AttackVector.PHYSICAL, True),
        "egroff": (AttackVector.PHYSICAL, True),
        "dieselpower": (AttackVector.PHYSICAL, True),
        "chiptuning": (AttackVector.LOCAL, True),
    }
    db = KeywordDatabase()
    for keyword in PAPER_SEED_KEYWORDS:
        vector, approved = annotations[keyword]
        db.add(
            AttackKeyword(
                keyword=keyword,
                vector=vector,
                owner_approved=approved,
                source=KeywordSource.MANUAL,
            )
        )
    return db
