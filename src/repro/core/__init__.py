"""PSP framework core: the paper's primary contribution.

Dynamic, social-evidence-driven re-tuning of the ISO/SAE-21434 attack-
vector feasibility weights for insider threats (paper Figs. 7-9), plus
the financial attack-feasibility model (Eqs. 1-7, Figs. 10-12).
"""

from repro.core.cache import (
    CachedClient,
    CacheStats,
    SAICache,
    TTLCache,
)
from repro.core.classification import (
    ClassifiedEntry,
    InsiderOutsiderClassifier,
    InsiderOutsiderSplit,
)
from repro.core.config import (
    PAPER_SEED_KEYWORDS,
    PSPConfig,
    SAIWeights,
    TargetApplication,
    TuningThresholds,
)
from repro.core.errors import (
    DataUnavailableError,
    KeywordError,
    ModelInputError,
    PSPError,
)
from repro.core.financial import (
    BreakEvenAnalysis,
    FinancialAssessment,
    assess,
    break_even_point,
    financial_feasibility,
    fixed_cost,
    fixed_cost_from_bep,
    market_value,
    potential_attackers,
)
from repro.core.framework import PSPFramework, PSPRunResult
from repro.core.pipeline import (
    FinancialStage,
    FleetMemberResult,
    FleetResult,
    LearnStage,
    PipelineContext,
    PipelineStage,
    PSPPipeline,
    QueryStage,
    SAIStage,
    SplitStage,
    TuneStage,
    run_fleet,
)
from repro.core.integration import (
    CombinationMode,
    CombinedFeasibility,
    combined_feasibility,
    combined_feasibility_for_run,
    required_security_budget,
)
from repro.core.monitor import PSPMonitor, TrendAlert, VectorChange
from repro.core.poisoning import (
    FilterConfig,
    FilteringClient,
    FilterReport,
    PostAuthenticityFilter,
    RejectionReason,
    poison_corpus_with_flood,
)
from repro.core.keywords import (
    AttackKeyword,
    KeywordDatabase,
    KeywordSource,
    paper_seed_database,
)
from repro.core.sai import SAIComputer, SAIEntry, SAIList
from repro.core.timewindow import (
    TimeWindow,
    TrendInversion,
    VectorTrend,
    detect_inversions,
    vector_trends,
    yearly_shares,
)
from repro.core.weights import (
    TuningOutcome,
    WeightTuner,
    rating_from_share,
    tune_table_for_sai,
)

__all__ = [
    "AttackKeyword",
    "BreakEvenAnalysis",
    "CacheStats",
    "CachedClient",
    "ClassifiedEntry",
    "CombinationMode",
    "CombinedFeasibility",
    "DataUnavailableError",
    "FilterConfig",
    "FilterReport",
    "FilteringClient",
    "FinancialAssessment",
    "FinancialStage",
    "FleetMemberResult",
    "FleetResult",
    "InsiderOutsiderClassifier",
    "InsiderOutsiderSplit",
    "KeywordDatabase",
    "KeywordError",
    "KeywordSource",
    "LearnStage",
    "ModelInputError",
    "PAPER_SEED_KEYWORDS",
    "PSPConfig",
    "PSPError",
    "PSPFramework",
    "PSPMonitor",
    "PSPPipeline",
    "PSPRunResult",
    "PipelineContext",
    "PipelineStage",
    "PostAuthenticityFilter",
    "QueryStage",
    "RejectionReason",
    "SAICache",
    "SAIComputer",
    "SAIEntry",
    "SAIList",
    "SAIStage",
    "SAIWeights",
    "SplitStage",
    "TTLCache",
    "TargetApplication",
    "TuneStage",
    "TimeWindow",
    "TrendAlert",
    "TrendInversion",
    "TuningOutcome",
    "TuningThresholds",
    "VectorChange",
    "VectorTrend",
    "WeightTuner",
    "assess",
    "break_even_point",
    "combined_feasibility",
    "combined_feasibility_for_run",
    "detect_inversions",
    "financial_feasibility",
    "fixed_cost",
    "fixed_cost_from_bep",
    "market_value",
    "paper_seed_database",
    "poison_corpus_with_flood",
    "potential_attackers",
    "rating_from_share",
    "required_security_budget",
    "run_fleet",
    "tune_table_for_sai",
    "vector_trends",
    "yearly_shares",
]
