"""PSP framework configuration.

:class:`TargetApplication` is the framework's input block (paper Fig. 7,
block 1): what product, where, and in which category.  :class:`PSPConfig`
gathers every tunable constant of the pipeline — SAI signal weights,
weight-table tuning thresholds, sentiment gain, keyword-learning limits —
with the defaults used for the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class TargetApplication:
    """The target of a PSP run (paper Fig. 7, block 1).

    Attributes:
        application: target product, e.g. ``"excavator"`` or ``"car"``.
        region: geographic scope, e.g. ``"europe"``.
        category: application category, e.g. ``"industrial"``,
            ``"sports"``, ``"domestic"``.
    """

    application: str
    region: str = "europe"
    category: str = "industrial"

    def __post_init__(self) -> None:
        if not self.application:
            raise ValueError("application must be non-empty")
        if not self.region:
            raise ValueError("region must be non-empty")

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return f"{self.application} / {self.category} / {self.region}"


@dataclass(frozen=True)
class SAIWeights:
    """Relative weights of the engagement signals in the SAI score.

    The paper computes SAI from "the number of views, interactions, and
    popularity of the identified posts"; here *popularity* is operational-
    ised as post volume (how often the attack is talked about at all).
    """

    views: float = 1.0
    interactions: float = 2.0
    volume: float = 3.0

    def __post_init__(self) -> None:
        for name in ("views", "interactions", "volume"):
            if getattr(self, name) < 0:
                raise ValueError(f"SAI weight {name} must be >= 0")
        if self.views + self.interactions + self.volume == 0:
            raise ValueError("at least one SAI weight must be positive")


@dataclass(frozen=True)
class TuningThresholds:
    """Probability-share thresholds for weight-table generation.

    A vector whose insider SAI probability mass reaches ``high`` is rated
    High, and so on downwards; below ``low`` it is rated Very Low.
    Must be strictly descending.
    """

    high: float = 0.50
    medium: float = 0.25
    low: float = 0.08

    def __post_init__(self) -> None:
        if not 0 < self.low < self.medium < self.high <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 < low < medium < high <= 1, got "
                f"high={self.high} medium={self.medium} low={self.low}"
            )


@dataclass(frozen=True)
class PSPConfig:
    """All tunables of the PSP pipeline, with the paper-run defaults."""

    sai_weights: SAIWeights = field(default_factory=SAIWeights)
    tuning: TuningThresholds = field(default_factory=TuningThresholds)
    #: Multiplier applied to positive mean sentiment: a fully enthusiastic
    #: topic scores up to (1 + sentiment_gain) x its engagement score.
    sentiment_gain: float = 0.5
    #: Keyword auto-learning: minimum co-occurrence support and cap on new
    #: keywords accepted per run (paper Fig. 7, block 5).
    learning_min_support: float = 0.05
    learning_max_new: int = 10
    #: Potential-attacker rate (PEA) fallback when no report provides one.
    default_attacker_rate: float = 0.01
    #: Financial model defaults (Eq. 4): adversary R&D effort and CAPEX.
    default_fte_hours: float = 1200.0
    default_hourly_cost: float = 90.0
    default_sld: float = 15000.0
    #: Competitors fallback when report mining finds none (Eq. 3's n).
    default_competitors: int = 1
    #: Streaming staleness window: an outsider-only dirty tick normally
    #: skips the retune (the insider weight table cannot change), but the
    #: SAI *scores* attached to the cached result drift because keyword
    #: probabilities are shares of corpus-wide totals.  When the in-window
    #: post volume has moved by more than this relative share since the
    #: last retune, the tick retunes anyway to refresh the scores.  The
    #: cost model is documented in ARCHITECTURE.md; ``None`` disables the
    #: policy (PR 4 behaviour).
    stream_staleness_share: Optional[float] = 0.10

    def __post_init__(self) -> None:
        if self.sentiment_gain < 0:
            raise ValueError("sentiment_gain must be >= 0")
        if not 0.0 <= self.learning_min_support <= 1.0:
            raise ValueError("learning_min_support must be in [0, 1]")
        if self.learning_max_new < 0:
            raise ValueError("learning_max_new must be >= 0")
        if not 0.0 < self.default_attacker_rate <= 1.0:
            raise ValueError("default_attacker_rate must be in (0, 1]")
        if self.default_fte_hours < 0 or self.default_hourly_cost < 0:
            raise ValueError("financial effort defaults must be >= 0")
        if self.default_sld < 0:
            raise ValueError("default_sld must be >= 0")
        if self.default_competitors < 1:
            raise ValueError("default_competitors must be >= 1")
        if (
            self.stream_staleness_share is not None
            and self.stream_staleness_share <= 0
        ):
            raise ValueError(
                "stream_staleness_share must be > 0 (or None to disable)"
            )


#: The paper's initial manual keyword seed (paper §III: "#dpfdelete,
#: #egrremoval, #egrdelete, #egroff, #dieselpower, #chiptuning").
PAPER_SEED_KEYWORDS: Tuple[str, ...] = (
    "dpfdelete",
    "egrremoval",
    "egrdelete",
    "egroff",
    "dieselpower",
    "chiptuning",
)
