"""The PSP framework orchestrator (paper Figs. 7 and 10).

:class:`PSPFramework` wires the whole pipeline together:

1. take the target application input (Fig. 7, block 1);
2. query the social platform per attack keyword and compute the SAI list
   with per-entry attack-probability estimates (blocks 2, 6, 7);
3. auto-learn new keywords from co-occurring hashtags (block 5);
4. split the SAI list into insider and outsider entries (blocks 8, 9);
5. generate the updated ISO-21434 attack-vector weight table for insider
   threats, leaving outsider weights at the standard values (block 12,
   Fig. 8);
6. on request, run the financial feasibility pipeline (Fig. 10): PAE from
   sales x report-mined attacker rate, PPIA from price clustering, the
   market value MV, and the required adversary investment FC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.cache import CachedClient, CacheStats, SAICache, TTLCache
from repro.core.classification import InsiderOutsiderClassifier, InsiderOutsiderSplit
from repro.core.config import PSPConfig, TargetApplication
from repro.core.errors import DataUnavailableError
from repro.core.financial import FinancialAssessment, assess, potential_attackers
from repro.core.keywords import AttackKeyword, KeywordDatabase, paper_seed_database
from repro.core.pipeline import (
    FleetResult,
    LearnStage,
    PipelineContext,
    PSPPipeline,
    run_fleet,
)
from repro.core.sai import SAIComputer, SAIList
from repro.core.timewindow import TimeWindow, TrendInversion, detect_inversions
from repro.core.weights import TuningOutcome, WeightTuner
from repro.iso21434.feasibility.attack_vector import WeightTable
from repro.market.pricing import PriceCatalog, default_price_catalog, variable_cost
from repro.market.reports import ReportLibrary, default_report_library
from repro.market.sales import SalesDatabase, default_sales_database
from repro.nlp.textmining import find_count
from repro.social.api import SocialMediaClient


@dataclass(frozen=True)
class PSPRunResult:
    """Everything one PSP run produces for a given time window."""

    target: TargetApplication
    window: TimeWindow
    sai: SAIList
    split: InsiderOutsiderSplit
    tuning: TuningOutcome
    learned_keywords: Tuple[AttackKeyword, ...]

    @property
    def insider_table(self) -> WeightTable:
        """The PSP-tuned insider weight table (Fig. 8-B)."""
        return self.tuning.insider_table

    @property
    def outsider_table(self) -> WeightTable:
        """The untouched standard table for outsider threats (Fig. 8-A)."""
        return self.tuning.outsider_table


class PSPFramework:
    """Top-level entry point of the PSP framework.

    Args:
        client: social platform client (the Twitter substitution layer).
        target: what application/region/category the run is about.
        database: attack-keyword database; defaults to the paper's manual
            seed.  The same instance is mutated by keyword learning, so it
            accumulates knowledge across runs — the paper's intended
            lifecycle.
        config: pipeline tunables.
        sales: sales database for PAE.
        reports: annual-report library for attacker rates and competitor
            counts.
        prices: listing catalogue for PPIA.
        cache: enable query + SAI result caching.  ``True`` creates a
            private unbounded store; passing a :class:`TTLCache` shares
            its entries/TTL policy.  With caching on, overlapping
            analysis windows (the monitor's growing window, fleet
            sweeps) reuse year-segment query results, and pipeline runs
            are memoised until the keyword database changes.
    """

    def __init__(
        self,
        client: SocialMediaClient,
        target: TargetApplication,
        *,
        database: Optional[KeywordDatabase] = None,
        config: Optional[PSPConfig] = None,
        sales: Optional[SalesDatabase] = None,
        reports: Optional[ReportLibrary] = None,
        prices: Optional[PriceCatalog] = None,
        cache: Union[bool, TTLCache] = False,
    ) -> None:
        self._sai_cache: Optional[SAICache] = None
        # NB: an empty TTLCache is falsy (it defines __len__), so test
        # for the instance explicitly rather than truthiness.
        if isinstance(cache, TTLCache) or cache is True:
            store = cache if isinstance(cache, TTLCache) else TTLCache()
            client = CachedClient(client, cache=store)
            self._sai_cache = SAICache(store.sibling())
        self._client = client
        self._target = target
        self._config = config or PSPConfig()
        self._database = database if database is not None else paper_seed_database()
        self._sales = sales if sales is not None else default_sales_database()
        self._reports = reports if reports is not None else default_report_library()
        self._prices = prices if prices is not None else default_price_catalog()
        self._sai_computer = SAIComputer(client, config=self._config)
        self._classifier = InsiderOutsiderClassifier(client)
        self._tuner = WeightTuner(self._config.tuning)

    @property
    def database(self) -> KeywordDatabase:
        """The (mutable, learning) attack-keyword database."""
        return self._database

    @property
    def target(self) -> TargetApplication:
        """The configured target application."""
        return self._target

    @property
    def config(self) -> PSPConfig:
        """The pipeline tunables in force."""
        return self._config

    @property
    def client(self) -> SocialMediaClient:
        """The social client in force (the cache wrapper when enabled)."""
        return self._client

    @property
    def cache_stats(self) -> Optional[Dict[str, Dict[str, float]]]:
        """Query/SAI cache statistics, or None when caching is off."""
        if self._sai_cache is None:
            return None
        query_stats: CacheStats = self._client.stats  # type: ignore[attr-defined]
        return {
            "query": query_stats.as_dict(),
            "sai": self._sai_cache.stats.as_dict(),
        }

    def _context(self, window: TimeWindow) -> PipelineContext:
        """A fresh pipeline context bound to this framework's state."""
        return PipelineContext(
            client=self._client,
            target=self._target,
            database=self._database,
            config=self._config,
            window=window,
        )

    # -- pipeline steps ----------------------------------------------------

    def compute_sai(self, window: Optional[TimeWindow] = None) -> SAIList:
        """Compute the SAI list for the target within ``window``.

        With caching enabled, repeats of the same (database version,
        window) are served from the SAI cache without touching the
        platform or the scorer.
        """
        w = window or TimeWindow.full_history()
        if self._sai_cache is not None:
            cached = self._sai_cache.get(
                self._database.version,
                region=self._target.region,
                since=w.since,
                until=w.until,
                tag="sai",
            )
            if cached is not None:
                return cached
        sai = self._sai_computer.compute(
            self._database,
            region=self._target.region,
            since=w.since,
            until=w.until,
        )
        if self._sai_cache is not None:
            self._sai_cache.put(
                self._database.version,
                sai,
                region=self._target.region,
                since=w.since,
                until=w.until,
                tag="sai",
            )
        return sai

    def learn_keywords(
        self, window: Optional[TimeWindow] = None
    ) -> List[AttackKeyword]:
        """Run one auto-learning pass over posts matching known keywords."""
        w = window or TimeWindow.full_history()
        context = self._context(w)
        LearnStage().run(context)
        return list(context.learned)

    def run(
        self,
        window: Optional[TimeWindow] = None,
        *,
        learn: bool = True,
    ) -> PSPRunResult:
        """Execute the full Fig. 7 pipeline for one time window.

        The flow is the default stage pipeline
        (learn → query → sai → split → tune); with caching enabled the
        post-learning stages are memoised per (database version, window)
        — keyword learning bumps the version, so a run that actually
        learned something recomputes, while repeat runs over unchanged
        knowledge are free.
        """
        w = window or TimeWindow.full_history()
        context = self._context(w)
        if learn:
            LearnStage().run(context)
        learned = context.learned

        if self._sai_cache is not None:
            cached = self._sai_cache.get(
                self._database.version,
                region=self._target.region,
                since=w.since,
                until=w.until,
                tag="run",
            )
            if cached is not None:
                sai, split, tuning = cached
                return PSPRunResult(
                    target=self._target,
                    window=w,
                    sai=sai,
                    split=split,
                    tuning=tuning,
                    learned_keywords=learned,
                )

        PSPPipeline.default(learn=False).run(context)
        sai, split, tuning = context.sai, context.split, context.tuning
        if self._sai_cache is not None:
            self._sai_cache.put(
                self._database.version,
                (sai, split, tuning),
                region=self._target.region,
                since=w.since,
                until=w.until,
                tag="run",
            )
        return PSPRunResult(
            target=self._target,
            window=w,
            sai=sai,
            split=split,
            tuning=tuning,
            learned_keywords=tuple(learned),
        )

    def run_fleet(
        self,
        targets: Sequence[TargetApplication],
        *,
        window: Optional[TimeWindow] = None,
        learn: bool = False,
        workers: Optional[int] = None,
    ) -> FleetResult:
        """Assess a fleet of targets in one pass over the shared corpus.

        Delegates to :func:`repro.core.pipeline.run_fleet` with this
        framework's client, database and config; targets sharing a
        region share one batched query pass (and, with caching enabled,
        later fleets reuse the cached segments too).  ``workers`` runs
        the per-member tails through a thread-pool executor.
        """
        return run_fleet(
            self._client,
            targets,
            database=self._database,
            config=self._config,
            window=window,
            learn=learn,
            workers=workers,
        )

    def compare_windows(
        self, before: TimeWindow, after: TimeWindow
    ) -> Tuple[PSPRunResult, PSPRunResult, List[TrendInversion]]:
        """Run two windows and report vector-rank inversions between them.

        This is the paper's Fig. 9-B vs Fig. 9-C experiment: the full
        history versus the recent window, with the physical→local trend
        inversion surfaced explicitly.
        """
        result_before = self.run(before, learn=False)
        result_after = self.run(after, learn=False)
        inversions = detect_inversions(result_before.sai, result_after.sai)
        return result_before, result_after, inversions

    # -- financial pipeline (Fig. 10) ---------------------------------------

    def assess_financial(
        self,
        keyword: str,
        *,
        competitors: Optional[int] = None,
        sales_year: Optional[int] = None,
    ) -> FinancialAssessment:
        """Run the Fig. 10 financial pipeline for one insider attack.

        PAE comes from the sales database and the report-mined attacker
        rate; PPIA from listing-price clustering; the competitor count n
        from report text mining; VCU from the cost table.  The returned
        assessment carries MV (Eq. 1) and the required adversary
        investment (Eq. 5 with BEP = PAE, the paper's Eq. 7).

        Raises:
            DataUnavailableError: when sales, listings or cost data are
                missing for the target/keyword.
        """
        record = self._sales.lookup(
            self._target.application, self._target.region, sales_year
        )
        if record is None:
            raise DataUnavailableError(
                f"no sales record for {self._target.describe()}"
            )
        report = self._reports.latest(
            self._target.application, self._target.region
        )
        attacker_rate = (
            report.attacker_rate if report else self._config.default_attacker_rate
        )
        pae = potential_attackers(record, attacker_rate)

        try:
            ppia = self._prices.estimate_ppia(keyword)
        except ValueError as exc:
            raise DataUnavailableError(str(exc)) from exc
        try:
            vcu = variable_cost(keyword)
        except KeyError as exc:
            raise DataUnavailableError(str(exc)) from exc

        n = competitors
        if n is None and report is not None:
            mined = find_count([report.prose], "competing sellers")
            if mined is None:
                mined = find_count([report.prose], "competitors")
            n = mined
        if n is None:
            n = self._config.default_competitors

        return assess(keyword, pae=pae, ppia=ppia, vcu=vcu, competitors=n)
