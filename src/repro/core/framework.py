"""The PSP framework orchestrator (paper Figs. 7 and 10).

:class:`PSPFramework` wires the whole pipeline together:

1. take the target application input (Fig. 7, block 1);
2. query the social platform per attack keyword and compute the SAI list
   with per-entry attack-probability estimates (blocks 2, 6, 7);
3. auto-learn new keywords from co-occurring hashtags (block 5);
4. split the SAI list into insider and outsider entries (blocks 8, 9);
5. generate the updated ISO-21434 attack-vector weight table for insider
   threats, leaving outsider weights at the standard values (block 12,
   Fig. 8);
6. on request, run the financial feasibility pipeline (Fig. 10): PAE from
   sales x report-mined attacker rate, PPIA from price clustering, the
   market value MV, and the required adversary investment FC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.classification import InsiderOutsiderClassifier, InsiderOutsiderSplit
from repro.core.config import PSPConfig, TargetApplication
from repro.core.errors import DataUnavailableError
from repro.core.financial import FinancialAssessment, assess, potential_attackers
from repro.core.keywords import AttackKeyword, KeywordDatabase, paper_seed_database
from repro.core.sai import SAIComputer, SAIList
from repro.core.timewindow import TimeWindow, TrendInversion, detect_inversions
from repro.core.weights import TuningOutcome, WeightTuner
from repro.iso21434.feasibility.attack_vector import WeightTable
from repro.market.pricing import PriceCatalog, default_price_catalog, variable_cost
from repro.market.reports import ReportLibrary, default_report_library
from repro.market.sales import SalesDatabase, default_sales_database
from repro.nlp.textmining import find_count
from repro.social.api import SearchQuery, SocialMediaClient


@dataclass(frozen=True)
class PSPRunResult:
    """Everything one PSP run produces for a given time window."""

    target: TargetApplication
    window: TimeWindow
    sai: SAIList
    split: InsiderOutsiderSplit
    tuning: TuningOutcome
    learned_keywords: Tuple[AttackKeyword, ...]

    @property
    def insider_table(self) -> WeightTable:
        """The PSP-tuned insider weight table (Fig. 8-B)."""
        return self.tuning.insider_table

    @property
    def outsider_table(self) -> WeightTable:
        """The untouched standard table for outsider threats (Fig. 8-A)."""
        return self.tuning.outsider_table


class PSPFramework:
    """Top-level entry point of the PSP framework.

    Args:
        client: social platform client (the Twitter substitution layer).
        target: what application/region/category the run is about.
        database: attack-keyword database; defaults to the paper's manual
            seed.  The same instance is mutated by keyword learning, so it
            accumulates knowledge across runs — the paper's intended
            lifecycle.
        config: pipeline tunables.
        sales: sales database for PAE.
        reports: annual-report library for attacker rates and competitor
            counts.
        prices: listing catalogue for PPIA.
    """

    def __init__(
        self,
        client: SocialMediaClient,
        target: TargetApplication,
        *,
        database: Optional[KeywordDatabase] = None,
        config: Optional[PSPConfig] = None,
        sales: Optional[SalesDatabase] = None,
        reports: Optional[ReportLibrary] = None,
        prices: Optional[PriceCatalog] = None,
    ) -> None:
        self._client = client
        self._target = target
        self._config = config or PSPConfig()
        self._database = database if database is not None else paper_seed_database()
        self._sales = sales if sales is not None else default_sales_database()
        self._reports = reports if reports is not None else default_report_library()
        self._prices = prices if prices is not None else default_price_catalog()
        self._sai_computer = SAIComputer(client, config=self._config)
        self._classifier = InsiderOutsiderClassifier(client)
        self._tuner = WeightTuner(self._config.tuning)

    @property
    def database(self) -> KeywordDatabase:
        """The (mutable, learning) attack-keyword database."""
        return self._database

    @property
    def target(self) -> TargetApplication:
        """The configured target application."""
        return self._target

    # -- pipeline steps ----------------------------------------------------

    def compute_sai(self, window: Optional[TimeWindow] = None) -> SAIList:
        """Compute the SAI list for the target within ``window``."""
        w = window or TimeWindow.full_history()
        return self._sai_computer.compute(
            self._database,
            region=self._target.region,
            since=w.since,
            until=w.until,
        )

    def learn_keywords(
        self, window: Optional[TimeWindow] = None
    ) -> List[AttackKeyword]:
        """Run one auto-learning pass over posts matching known keywords."""
        w = window or TimeWindow.full_history()
        texts: List[str] = []
        for entry in self._database:
            posts = self._client.search(
                SearchQuery(
                    keyword=entry.keyword,
                    region=self._target.region,
                    since=w.since,
                    until=w.until,
                )
            )
            texts.extend(p.text for p in posts)
        return self._database.learn_from_texts(
            texts,
            min_support=self._config.learning_min_support,
            max_new=self._config.learning_max_new,
        )

    def run(
        self,
        window: Optional[TimeWindow] = None,
        *,
        learn: bool = True,
    ) -> PSPRunResult:
        """Execute the full Fig. 7 pipeline for one time window."""
        w = window or TimeWindow.full_history()
        learned = tuple(self.learn_keywords(w)) if learn else ()
        sai = self.compute_sai(w)
        split = self._classifier.split(sai)
        tuning = self._tuner.tune(split, window_label=w.describe())
        return PSPRunResult(
            target=self._target,
            window=w,
            sai=sai,
            split=split,
            tuning=tuning,
            learned_keywords=learned,
        )

    def compare_windows(
        self, before: TimeWindow, after: TimeWindow
    ) -> Tuple[PSPRunResult, PSPRunResult, List[TrendInversion]]:
        """Run two windows and report vector-rank inversions between them.

        This is the paper's Fig. 9-B vs Fig. 9-C experiment: the full
        history versus the recent window, with the physical→local trend
        inversion surfaced explicitly.
        """
        result_before = self.run(before, learn=False)
        result_after = self.run(after, learn=False)
        inversions = detect_inversions(result_before.sai, result_after.sai)
        return result_before, result_after, inversions

    # -- financial pipeline (Fig. 10) ---------------------------------------

    def assess_financial(
        self,
        keyword: str,
        *,
        competitors: Optional[int] = None,
        sales_year: Optional[int] = None,
    ) -> FinancialAssessment:
        """Run the Fig. 10 financial pipeline for one insider attack.

        PAE comes from the sales database and the report-mined attacker
        rate; PPIA from listing-price clustering; the competitor count n
        from report text mining; VCU from the cost table.  The returned
        assessment carries MV (Eq. 1) and the required adversary
        investment (Eq. 5 with BEP = PAE, the paper's Eq. 7).

        Raises:
            DataUnavailableError: when sales, listings or cost data are
                missing for the target/keyword.
        """
        record = self._sales.lookup(
            self._target.application, self._target.region, sales_year
        )
        if record is None:
            raise DataUnavailableError(
                f"no sales record for {self._target.describe()}"
            )
        report = self._reports.latest(
            self._target.application, self._target.region
        )
        attacker_rate = (
            report.attacker_rate if report else self._config.default_attacker_rate
        )
        pae = potential_attackers(record, attacker_rate)

        try:
            ppia = self._prices.estimate_ppia(keyword)
        except ValueError as exc:
            raise DataUnavailableError(str(exc)) from exc
        try:
            vcu = variable_cost(keyword)
        except KeyError as exc:
            raise DataUnavailableError(str(exc)) from exc

        n = competitors
        if n is None and report is not None:
            mined = find_count([report.prose], "competing sellers")
            if mined is None:
                mined = find_count([report.prose], "competitors")
            n = mined
        if n is None:
            n = self._config.default_competitors

        return assess(keyword, pae=pae, ppia=ppia, vcu=vcu, competitors=n)
