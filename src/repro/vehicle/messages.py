"""CAN message and signal catalogue.

The paper's threat surface is concretely a CAN one: "the primary
communication occurs on the CAN bus, and external access is available
through the OBD port" (§II), with DoS by CAN signal extinction (ref.
[22]) and the authors' own Ext-Taurum P2T secure CAN-FD work (ref. [12]).
This module models the frame/signal layer so communication assets and
message-level threat scenarios can be enumerated systematically instead
of hand-written:

* :class:`Signal` — one signal packed into a frame.
* :class:`CanMessage` — one frame: identifier, sender, receivers, cycle
  time, safety relevance, authentication flag.
* :class:`MessageCatalog` — per-bus frame registry with consistency
  checks (identifier uniqueness, sender/receiver must sit on the bus).
* :func:`message_assets` / :func:`message_threats` — derive ISO/SAE-21434
  communication assets and STRIDE threat scenarios from the catalogue.

Unauthenticated frames yield spoofing/tampering threats; every periodic
frame yields a DoS threat (bus flooding / signal extinction); diagnostic
frames add an information-disclosure threat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.iso21434.assets import Asset, AssetKind
from repro.iso21434.enums import (
    AttackerProfile,
    AttackVector,
    CybersecurityProperty,
    StrideCategory,
)
from repro.iso21434.threats import ThreatScenario
from repro.vehicle.network import VehicleNetwork


@dataclass(frozen=True)
class Signal:
    """One signal packed into a CAN frame."""

    name: str
    start_bit: int
    length_bits: int
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("signal name must be non-empty")
        if not 0 <= self.start_bit <= 63:
            raise ValueError(f"start_bit must be in 0..63, got {self.start_bit}")
        if not 1 <= self.length_bits <= 64:
            raise ValueError(f"length_bits must be in 1..64, got {self.length_bits}")
        if self.start_bit + self.length_bits > 64:
            raise ValueError(
                f"signal {self.name!r} exceeds the 64-bit frame payload"
            )


@dataclass(frozen=True)
class CanMessage:
    """One CAN frame definition.

    Attributes:
        can_id: 11-bit (or 29-bit extended) identifier.
        name: frame name, e.g. ``"EngineTorque1"``.
        bus_id: bus the frame lives on.
        sender: transmitting ECU id.
        receivers: receiving ECU ids.
        cycle_ms: transmission period; 0 means event-driven.
        signals: packed signals.
        safety_relevant: carries safety-critical data.
        authenticated: protected by message authentication (e.g. SecOC /
            Ext-Taurum-style MACs).
        diagnostic: a diagnostic (UDS) frame.
    """

    can_id: int
    name: str
    bus_id: str
    sender: str
    receivers: Tuple[str, ...]
    cycle_ms: int = 0
    signals: Tuple[Signal, ...] = ()
    safety_relevant: bool = False
    authenticated: bool = False
    diagnostic: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.can_id <= 0x1FFFFFFF:
            raise ValueError(f"can_id out of range: {self.can_id:#x}")
        if not self.name:
            raise ValueError("message name must be non-empty")
        if not self.sender:
            raise ValueError(f"message {self.name!r} needs a sender")
        if self.cycle_ms < 0:
            raise ValueError("cycle_ms must be >= 0")
        object.__setattr__(self, "receivers", tuple(self.receivers))
        object.__setattr__(self, "signals", tuple(self.signals))
        names = [s.name for s in self.signals]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate signal names in {self.name!r}")

    @property
    def is_periodic(self) -> bool:
        """Whether the frame is cyclically transmitted."""
        return self.cycle_ms > 0


class MessageCatalog:
    """Frame registry validated against a vehicle network."""

    def __init__(self, network: VehicleNetwork) -> None:
        self._network = network
        self._messages: Dict[int, CanMessage] = {}

    def add(self, message: CanMessage) -> CanMessage:
        """Register a frame after consistency checks.

        The bus must exist, the sender and every receiver must be ECUs
        attached to that bus, and the identifier must be unique.
        """
        if message.can_id in self._messages:
            raise ValueError(f"duplicate CAN id {message.can_id:#x}")
        bus = self._network.bus(message.bus_id)
        attached = set(self._network.neighbors(bus.bus_id))
        for ecu_id in (message.sender, *message.receivers):
            self._network.ecu(ecu_id)
            if ecu_id not in attached:
                raise ValueError(
                    f"ECU {ecu_id!r} is not attached to bus {bus.bus_id!r}"
                )
        self._messages[message.can_id] = message
        return message

    def add_all(self, messages: Iterable[CanMessage]) -> None:
        """Register many frames."""
        for message in messages:
            self.add(message)

    def get(self, can_id: int) -> CanMessage:
        """Look up a frame by identifier."""
        try:
            return self._messages[can_id]
        except KeyError:
            raise KeyError(f"unknown CAN id {can_id:#x}") from None

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self):
        return iter(self._messages.values())

    def on_bus(self, bus_id: str) -> Tuple[CanMessage, ...]:
        """All frames on the given bus, ordered by identifier."""
        return tuple(
            sorted(
                (m for m in self._messages.values() if m.bus_id == bus_id),
                key=lambda m: m.can_id,
            )
        )

    def sent_by(self, ecu_id: str) -> Tuple[CanMessage, ...]:
        """All frames transmitted by the given ECU."""
        return tuple(
            sorted(
                (m for m in self._messages.values() if m.sender == ecu_id),
                key=lambda m: m.can_id,
            )
        )

    def unauthenticated(self) -> Tuple[CanMessage, ...]:
        """Frames without message authentication (spoofable)."""
        return tuple(
            sorted(
                (m for m in self._messages.values() if not m.authenticated),
                key=lambda m: m.can_id,
            )
        )

    def bus_load_estimate(self, bus_id: str) -> float:
        """Rough bus load in frames/second from the cyclic frames."""
        return sum(
            1000.0 / m.cycle_ms
            for m in self.on_bus(bus_id)
            if m.is_periodic
        )


def powertrain_catalog(network: VehicleNetwork) -> MessageCatalog:
    """The reference powertrain frame set for the Fig. 4 architecture.

    A representative slice of a real powertrain matrix: torque/speed
    control loops between ECM and TCM, the DEFC emission loop (the DPF
    attack target), and the unauthenticated UDS diagnostic frame reachable
    from the OBD port.
    """
    catalog = MessageCatalog(network)
    catalog.add_all(
        [
            CanMessage(
                can_id=0x0C0, name="EngineTorque1", bus_id="can.powertrain",
                sender="ecm", receivers=("tcm",), cycle_ms=10,
                signals=(
                    Signal("EngTrqAct", 0, 16, "Nm"),
                    Signal("EngSpd", 16, 16, "rpm"),
                ),
                safety_relevant=True,
            ),
            CanMessage(
                can_id=0x0C4, name="TransStatus1", bus_id="can.powertrain",
                sender="tcm", receivers=("ecm",), cycle_ms=10,
                signals=(Signal("GearAct", 0, 8),),
                safety_relevant=True,
            ),
            CanMessage(
                can_id=0x18F, name="ExhaustStatus", bus_id="can.powertrain",
                sender="defc", receivers=("ecm",), cycle_ms=100,
                signals=(
                    Signal("DpfSootLoad", 0, 8, "%"),
                    Signal("ScrDosingRate", 8, 16, "ml/h"),
                ),
                safety_relevant=False,
            ),
            CanMessage(
                can_id=0x1A0, name="RegenRequest", bus_id="can.powertrain",
                sender="ecm", receivers=("defc",), cycle_ms=100,
                signals=(Signal("RegenCmd", 0, 2),),
            ),
            CanMessage(
                can_id=0x7E0, name="UdsRequestEcm", bus_id="can.powertrain",
                sender="gateway", receivers=("ecm",), cycle_ms=0,
                diagnostic=True,
            ),
        ]
    )
    return catalog


def message_assets(catalog: MessageCatalog) -> List[Asset]:
    """Derive communication assets from a frame catalogue.

    One asset per frame, carrying integrity plus availability (periodic
    frames feed control loops) and confidentiality for diagnostic frames.
    """
    assets = []
    for message in catalog:
        properties = {CybersecurityProperty.INTEGRITY}
        if message.is_periodic:
            properties.add(CybersecurityProperty.AVAILABILITY)
        if message.diagnostic:
            properties.add(CybersecurityProperty.CONFIDENTIALITY)
        assets.append(
            Asset(
                asset_id=f"{message.sender}.msg.{message.can_id:#05x}",
                name=f"Frame {message.name}",
                kind=AssetKind.COMMUNICATION,
                properties=frozenset(properties),
                ecu_id=message.sender,
                description=f"CAN id {message.can_id:#x} on {message.bus_id}",
            )
        )
    return assets


#: Default attacker profiles for message-level threats on owner-accessible
#: buses: the paper's Insider/Rational-Local set.
_INSIDER_PROFILES = frozenset(
    {AttackerProfile.INSIDER, AttackerProfile.RATIONAL, AttackerProfile.LOCAL}
)


def message_threats(catalog: MessageCatalog) -> List[ThreatScenario]:
    """Derive message-level STRIDE threat scenarios from a catalogue.

    * Unauthenticated frames → spoofing and tampering threats (an OBD or
      bench attacker can inject forged frames).
    * Periodic frames → denial-of-service threats (signal extinction /
      bus flooding, the paper's powertrain DoS concern).
    * Diagnostic frames → information-disclosure threats.
    """
    vectors = frozenset({AttackVector.PHYSICAL, AttackVector.LOCAL})
    threats: List[ThreatScenario] = []
    for message in catalog:
        asset_id = f"{message.sender}.msg.{message.can_id:#05x}"
        if not message.authenticated:
            for stride in (StrideCategory.SPOOFING, StrideCategory.TAMPERING):
                threats.append(
                    ThreatScenario(
                        threat_id=f"ts.{asset_id}.{stride.value}",
                        name=f"{stride.value.title()} of {message.name}",
                        asset_id=asset_id,
                        violated_property=CybersecurityProperty.INTEGRITY,
                        stride=stride,
                        attack_vectors=vectors,
                        attacker_profiles=_INSIDER_PROFILES,
                    )
                )
        if message.is_periodic:
            threats.append(
                ThreatScenario(
                    threat_id=f"ts.{asset_id}.denial_of_service",
                    name=f"DoS (signal extinction) of {message.name}",
                    asset_id=asset_id,
                    violated_property=CybersecurityProperty.AVAILABILITY,
                    stride=StrideCategory.DENIAL_OF_SERVICE,
                    attack_vectors=vectors,
                    attacker_profiles=_INSIDER_PROFILES,
                )
            )
        if message.diagnostic:
            threats.append(
                ThreatScenario(
                    threat_id=f"ts.{asset_id}.information_disclosure",
                    name=f"Disclosure via {message.name}",
                    asset_id=asset_id,
                    violated_property=CybersecurityProperty.CONFIDENTIALITY,
                    stride=StrideCategory.INFORMATION_DISCLOSURE,
                    attack_vectors=vectors,
                    attacker_profiles=_INSIDER_PROFILES,
                )
            )
    return threats
