"""In-vehicle network buses.

Models the communication media of the reference architecture (paper
Fig. 4): CAN, CAN-FD, LIN and automotive Ethernet segments, each owned by
a functional domain.  Bus objects become nodes of the vehicle topology
graph; an ECU attached to a bus can, absent filtering, reach every other
node on that bus — which is what makes OBD-port access to the powertrain
CAN so consequential.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.vehicle.domains import VehicleDomain


class BusKind(enum.Enum):
    """Physical-layer technology of a bus segment."""

    CAN = "can"
    CAN_FD = "can_fd"
    LIN = "lin"
    ETHERNET = "ethernet"

    @property
    def typical_bitrate_kbps(self) -> int:
        """Representative bitrate, used by traffic-shape heuristics."""
        return _BITRATES[self]


_BITRATES = {
    BusKind.CAN: 500,
    BusKind.CAN_FD: 2000,
    BusKind.LIN: 20,
    BusKind.ETHERNET: 100000,
}


@dataclass(frozen=True)
class Bus:
    """One bus segment of the vehicle network.

    Attributes:
        bus_id: unique identifier, e.g. ``"can.powertrain"``.
        name: human-readable name.
        kind: physical-layer technology.
        domain: owning functional domain.
        segmented: True when a gateway filters traffic onto this bus
            (affects attack-path step feasibility).
    """

    bus_id: str
    name: str
    kind: BusKind
    domain: VehicleDomain
    segmented: bool = False

    def __post_init__(self) -> None:
        if not self.bus_id:
            raise ValueError("bus_id must be non-empty")
