"""Attack-surface analysis: graph attack-path enumeration.

Turns the vehicle topology into ISO/SAE-21434 attack paths: for a target
ECU, every simple path from an external entry point to the ECU becomes an
:class:`~repro.iso21434.attack_path.AttackPath` whose first step carries
the entry point's vector-based feasibility and whose subsequent hops add
traversal steps (crossing a *segmented* bus — i.e. passing a filtering
gateway — is rated harder than riding an open bus).

This is the machinery behind experiment E10: rating every ECU of the
reference architecture under the static table versus PSP-tuned tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.iso21434.attack_path import AttackPath, AttackStep, threat_feasibility
from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import WeightTable, standard_table
from repro.vehicle.network import NodeKind, VehicleNetwork

#: Default bound on path length (nodes) to keep enumeration tractable on
#: large synthetic architectures; the Fig. 4 graph is far below the bound.
DEFAULT_CUTOFF = 8


@dataclass(frozen=True)
class SurfaceReport:
    """Attack-surface summary for one target ECU."""

    ecu_id: str
    paths: Tuple[AttackPath, ...]

    @property
    def feasibility(self) -> Optional[FeasibilityRating]:
        """Aggregated feasibility (max over paths), None when unreachable."""
        return threat_feasibility(self.paths)

    @property
    def best_path(self) -> Optional[AttackPath]:
        """The easiest path (highest feasibility, shortest wins ties)."""
        if not self.paths:
            return None
        return max(
            self.paths, key=lambda p: (p.feasibility.level, -p.length)
        )

    def entry_vectors(self) -> Tuple[AttackVector, ...]:
        """Distinct entry vectors over all paths, most feasible first."""
        seen = []
        for path in sorted(
            self.paths, key=lambda p: p.feasibility.level, reverse=True
        ):
            vector = path.entry_vector
            if vector is not None and vector not in seen:
                seen.append(vector)
        return tuple(seen)


def _step_down(rating: FeasibilityRating, levels: int = 1) -> FeasibilityRating:
    """Lower a rating by ``levels``, saturating at Very Low."""
    return FeasibilityRating.clamp(rating.level - levels)


class AttackSurfaceAnalyzer:
    """Enumerates and rates attack paths over a vehicle network.

    Args:
        network: the vehicle topology.
        table: vector→feasibility table used to rate entry steps; defaults
            to the standard's static G.9 table.  Supplying a PSP-tuned
            table is how dynamic ratings propagate into path analysis.
        cutoff: maximum path length in nodes.
    """

    def __init__(
        self,
        network: VehicleNetwork,
        *,
        table: Optional[WeightTable] = None,
        cutoff: int = DEFAULT_CUTOFF,
    ) -> None:
        if cutoff < 2:
            raise ValueError(f"cutoff must allow entry->target, got {cutoff}")
        self._network = network
        self._table = table if table is not None else standard_table()
        self._cutoff = cutoff

    @property
    def table(self) -> WeightTable:
        """The vector→feasibility table in force."""
        return self._table

    def paths_to(self, ecu_id: str, *, threat_id: str = "") -> List[AttackPath]:
        """Every rated attack path from any entry point to ``ecu_id``."""
        self._network.ecu(ecu_id)
        threat = threat_id or f"ts.{ecu_id}"
        paths: List[AttackPath] = []
        for entry in self._network.entry_points:
            for index, node_path in enumerate(
                self._network.simple_paths(entry.entry_id, ecu_id, cutoff=self._cutoff)
            ):
                steps = self._rate_steps(entry.vector, node_path)
                paths.append(
                    AttackPath(
                        path_id=f"ap.{ecu_id}.{entry.entry_id}.{index}",
                        threat_id=threat,
                        steps=tuple(steps),
                    )
                )
        return paths

    def _rate_steps(
        self, entry_vector: AttackVector, node_path: Sequence[str]
    ) -> List[AttackStep]:
        entry_rating = self._table.rating(entry_vector)
        entry_name = self._network.entry_point(node_path[0]).name
        steps = [
            AttackStep(
                description=f"Gain access via {entry_name}",
                feasibility=entry_rating,
                vector=entry_vector,
                location=node_path[0],
            )
        ]
        current = entry_rating
        for position, node in enumerate(node_path[1:], start=1):
            kind = self._network.node_kind(node)
            if kind is NodeKind.BUS:
                bus = self._network.bus(node)
                previous_kind = self._network.node_kind(node_path[position - 1])
                crossed_gateway = bus.segmented and previous_kind is NodeKind.ECU
                if crossed_gateway:
                    # Entering a filtered bus from inside the network means
                    # defeating the gateway's traffic filtering; a direct
                    # attachment (e.g. OBD on the powertrain CAN) does not.
                    current = _step_down(current)
                    description = f"Cross filtering gateway onto {bus.name}"
                else:
                    description = f"Inject traffic on {bus.name}"
                steps.append(
                    AttackStep(
                        description=description,
                        feasibility=current,
                        location=node,
                    )
                )
            elif kind is NodeKind.ECU and node == node_path[-1]:
                ecu = self._network.ecu(node)
                steps.append(
                    AttackStep(
                        description=f"Compromise {ecu.name}",
                        feasibility=current,
                        location=node,
                    )
                )
            # intermediate ECUs (e.g. the gateway itself, a pivot TCU)
            elif kind is NodeKind.ECU:
                ecu = self._network.ecu(node)
                current = _step_down(current)
                steps.append(
                    AttackStep(
                        description=f"Pivot through {ecu.name}",
                        feasibility=current,
                        location=node,
                    )
                )
        return steps

    def report(self, ecu_id: str) -> SurfaceReport:
        """Full surface report for one ECU."""
        return SurfaceReport(ecu_id=ecu_id, paths=tuple(self.paths_to(ecu_id)))

    def sweep(self) -> Mapping[str, SurfaceReport]:
        """Surface reports for every ECU in the network."""
        return {ecu.ecu_id: self.report(ecu.ecu_id) for ecu in self._network.ecus}
