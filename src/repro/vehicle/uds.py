"""UDS diagnostic-session modelling (the paper's OBD attack mechanics).

The paper's local attack vector is concretely UDS over the OBD port:
"external access is available through the OBD port, easily accessible in
the cabin", and Fig. 9-C's trend inversion is attackers "bypassing secure
mechanisms using local attacks".  How hard that local attack is depends
on the ECU's diagnostic hardening: which UDS services it exposes and
behind which security-access level.

* :class:`UdsService` — the security-relevant UDS service identifiers.
* :class:`SecurityAccessLevel` — how the service is gated: none, a
  static seed-key (widely broken in the field — tooling exists), or a
  challenge-response against an online OEM backend.
* :class:`DiagnosticProfile` — one ECU's service→gating map.
* :func:`hardening_control` — bridge into the controls machinery: a
  profile's effective gating becomes a local-vector
  :class:`~repro.iso21434.controls.Control`, so diagnostic hardening
  composes with every residual-risk tool in the repository.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.iso21434.controls import Control
from repro.iso21434.enums import AttackVector


class UdsService(enum.Enum):
    """Security-relevant UDS services (ISO 14229 identifiers)."""

    DIAGNOSTIC_SESSION_CONTROL = 0x10
    ECU_RESET = 0x11
    SECURITY_ACCESS = 0x27
    READ_DATA_BY_IDENTIFIER = 0x22
    WRITE_DATA_BY_IDENTIFIER = 0x2E
    ROUTINE_CONTROL = 0x31
    REQUEST_DOWNLOAD = 0x34
    TRANSFER_DATA = 0x36

    @property
    def sid(self) -> int:
        """The UDS service identifier byte."""
        return int(self.value)


class SecurityAccessLevel(enum.Enum):
    """How a diagnostic service is gated.

    Ordered by attacker difficulty: NONE (open), STATIC_SEED_KEY
    (seed-key algorithms leak into aftermarket tooling — exactly the
    paper's OBD-tuning scene), CHALLENGE_RESPONSE (online OEM backend;
    no offline bypass).
    """

    NONE = 0
    STATIC_SEED_KEY = 1
    CHALLENGE_RESPONSE = 2

    @property
    def strength(self) -> int:
        """Feasibility levels this gating removes from a local attack."""
        return int(self.value)


#: The services whose gating determines reprogramming feasibility —
#: the ECM-reprogramming attack needs the download/transfer chain.
REPROGRAMMING_SERVICES: Tuple[UdsService, ...] = (
    UdsService.REQUEST_DOWNLOAD,
    UdsService.TRANSFER_DATA,
    UdsService.ROUTINE_CONTROL,
)


@dataclass(frozen=True)
class DiagnosticProfile:
    """One ECU's diagnostic hardening profile.

    Attributes:
        ecu_id: the ECU this profile describes.
        gating: service → security-access level; unlisted services are
            treated as not exposed at all.
    """

    ecu_id: str
    gating: Mapping[UdsService, SecurityAccessLevel] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.ecu_id:
            raise ValueError("ecu_id must be non-empty")
        object.__setattr__(self, "gating", dict(self.gating))

    def exposes(self, service: UdsService) -> bool:
        """Whether the ECU exposes the service at all."""
        return service in self.gating

    def level_for(self, service: UdsService) -> Optional[SecurityAccessLevel]:
        """The gating level of a service (None when not exposed)."""
        return self.gating.get(service)

    @property
    def reprogramming_gate(self) -> Optional[SecurityAccessLevel]:
        """The *weakest* gating across the reprogramming service chain.

        The attacker needs every chain service; the weakest exposed link
        is irrelevant — what matters is the weakest *complete* chain, so
        if any chain service is missing, reprogramming via UDS is not
        possible (None).  Otherwise the minimum gating over the chain
        bounds the attack difficulty.
        """
        levels = []
        for service in REPROGRAMMING_SERVICES:
            level = self.gating.get(service)
            if level is None:
                return None
            levels.append(level)
        return min(levels, key=lambda l: l.strength)


def legacy_profile(ecu_id: str) -> DiagnosticProfile:
    """A legacy ECU: full reprogramming chain behind a static seed-key.

    This is the paper's powertrain reality — the gating the OBD-tuning
    scene routinely bypasses with aftermarket tools.
    """
    return DiagnosticProfile(
        ecu_id=ecu_id,
        gating={
            UdsService.DIAGNOSTIC_SESSION_CONTROL: SecurityAccessLevel.NONE,
            UdsService.READ_DATA_BY_IDENTIFIER: SecurityAccessLevel.NONE,
            UdsService.SECURITY_ACCESS: SecurityAccessLevel.NONE,
            UdsService.WRITE_DATA_BY_IDENTIFIER: SecurityAccessLevel.STATIC_SEED_KEY,
            UdsService.ROUTINE_CONTROL: SecurityAccessLevel.STATIC_SEED_KEY,
            UdsService.REQUEST_DOWNLOAD: SecurityAccessLevel.STATIC_SEED_KEY,
            UdsService.TRANSFER_DATA: SecurityAccessLevel.STATIC_SEED_KEY,
        },
    )


def hardened_profile(ecu_id: str) -> DiagnosticProfile:
    """A hardened ECU: reprogramming behind online challenge-response."""
    return DiagnosticProfile(
        ecu_id=ecu_id,
        gating={
            UdsService.DIAGNOSTIC_SESSION_CONTROL: SecurityAccessLevel.NONE,
            UdsService.READ_DATA_BY_IDENTIFIER: SecurityAccessLevel.NONE,
            UdsService.SECURITY_ACCESS: SecurityAccessLevel.NONE,
            UdsService.WRITE_DATA_BY_IDENTIFIER: SecurityAccessLevel.CHALLENGE_RESPONSE,
            UdsService.ROUTINE_CONTROL: SecurityAccessLevel.CHALLENGE_RESPONSE,
            UdsService.REQUEST_DOWNLOAD: SecurityAccessLevel.CHALLENGE_RESPONSE,
            UdsService.TRANSFER_DATA: SecurityAccessLevel.CHALLENGE_RESPONSE,
        },
    )


def hardening_control(profile: DiagnosticProfile) -> Optional[Control]:
    """Express a profile's reprogramming gate as a local-vector control.

    Returns None when the gate contributes nothing: either the
    reprogramming chain is not exposed (nothing to harden — the attack
    is impossible via UDS anyway) or the chain is completely open
    (strength zero).
    """
    gate = profile.reprogramming_gate
    if gate is None or gate.strength == 0:
        return None
    return Control(
        control_id=f"ctl.uds.{profile.ecu_id}",
        name=f"UDS security access ({gate.name.lower()}) on {profile.ecu_id}",
        hardened_vectors=frozenset({AttackVector.LOCAL}),
        strength=gate.strength,
        description=(
            "Reprogramming service chain gated by "
            f"{gate.name.replace('_', ' ').lower()}"
        ),
    )
