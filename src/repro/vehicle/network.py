"""Vehicle network topology on networkx (paper Fig. 4).

:class:`VehicleNetwork` holds a graph whose nodes are ECUs, buses and
external entry points.  Edges express reachability: an ECU attached to a
bus reaches the bus; a gateway bridges two buses; an entry point (OBD
port, cellular link, the attacker's bench) reaches whatever it is wired
to.  Attack paths are simple paths through this graph from an entry point
to a target ECU (:mod:`repro.vehicle.attack_surface`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx

from repro.iso21434.enums import AttackVector
from repro.vehicle.bus import Bus
from repro.vehicle.ecu import Ecu


class NodeKind(enum.Enum):
    """Classification of a topology node."""

    ECU = "ecu"
    BUS = "bus"
    ENTRY_POINT = "entry_point"


@dataclass(frozen=True)
class EntryPoint:
    """An external access point into the vehicle network.

    Attributes:
        entry_id: unique identifier, e.g. ``"obd_port"``.
        name: human-readable name.
        vector: the attack-vector class required to use this entry point
            (OBD port = local, cellular = network, Bluetooth = adjacent,
            bench access to an ECU = physical).
    """

    entry_id: str
    name: str
    vector: AttackVector

    def __post_init__(self) -> None:
        if not self.entry_id:
            raise ValueError("entry_id must be non-empty")


class VehicleNetwork:
    """The E/E architecture graph."""

    def __init__(self, name: str = "vehicle") -> None:
        self.name = name
        self._graph = nx.Graph()
        self._ecus: Dict[str, Ecu] = {}
        self._buses: Dict[str, Bus] = {}
        self._entries: Dict[str, EntryPoint] = {}

    # -- construction -----------------------------------------------------

    def add_ecu(self, ecu: Ecu) -> Ecu:
        """Add an ECU node; rejects duplicate identifiers."""
        self._check_new(ecu.ecu_id)
        self._ecus[ecu.ecu_id] = ecu
        self._graph.add_node(ecu.ecu_id, kind=NodeKind.ECU)
        return ecu

    def add_bus(self, bus: Bus) -> Bus:
        """Add a bus node; rejects duplicate identifiers."""
        self._check_new(bus.bus_id)
        self._buses[bus.bus_id] = bus
        self._graph.add_node(bus.bus_id, kind=NodeKind.BUS)
        return bus

    def add_entry_point(self, entry: EntryPoint) -> EntryPoint:
        """Add an external entry-point node; rejects duplicates."""
        self._check_new(entry.entry_id)
        self._entries[entry.entry_id] = entry
        self._graph.add_node(entry.entry_id, kind=NodeKind.ENTRY_POINT)
        return entry

    def attach(self, node_a: str, node_b: str) -> None:
        """Connect two existing nodes (ECU-bus, bus-bus via gateway, etc.)."""
        for node in (node_a, node_b):
            if node not in self._graph:
                raise KeyError(f"unknown node {node!r}")
        if node_a == node_b:
            raise ValueError(f"cannot attach node {node_a!r} to itself")
        self._graph.add_edge(node_a, node_b)

    def _check_new(self, node_id: str) -> None:
        if not node_id:
            raise ValueError("node id must be non-empty")
        if node_id in self._graph:
            raise ValueError(f"duplicate node id {node_id!r}")

    # -- lookup -----------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (treat as read-only)."""
        return self._graph

    def ecu(self, ecu_id: str) -> Ecu:
        """Look up an ECU by id."""
        try:
            return self._ecus[ecu_id]
        except KeyError:
            raise KeyError(f"unknown ECU {ecu_id!r}") from None

    def bus(self, bus_id: str) -> Bus:
        """Look up a bus by id."""
        try:
            return self._buses[bus_id]
        except KeyError:
            raise KeyError(f"unknown bus {bus_id!r}") from None

    def entry_point(self, entry_id: str) -> EntryPoint:
        """Look up an entry point by id."""
        try:
            return self._entries[entry_id]
        except KeyError:
            raise KeyError(f"unknown entry point {entry_id!r}") from None

    def node_kind(self, node_id: str) -> NodeKind:
        """The kind of an existing node."""
        try:
            return self._graph.nodes[node_id]["kind"]
        except KeyError:
            raise KeyError(f"unknown node {node_id!r}") from None

    @property
    def ecus(self) -> Tuple[Ecu, ...]:
        """All ECUs."""
        return tuple(self._ecus.values())

    @property
    def buses(self) -> Tuple[Bus, ...]:
        """All buses."""
        return tuple(self._buses.values())

    @property
    def entry_points(self) -> Tuple[EntryPoint, ...]:
        """All entry points."""
        return tuple(self._entries.values())

    # -- queries ----------------------------------------------------------

    def neighbors(self, node_id: str) -> Tuple[str, ...]:
        """Direct neighbours of a node."""
        if node_id not in self._graph:
            raise KeyError(f"unknown node {node_id!r}")
        return tuple(sorted(self._graph.neighbors(node_id)))

    def buses_of(self, ecu_id: str) -> Tuple[Bus, ...]:
        """Buses the ECU is attached to."""
        self.ecu(ecu_id)
        return tuple(
            self._buses[n] for n in self.neighbors(ecu_id) if n in self._buses
        )

    def reachable_from(self, entry_id: str) -> Tuple[str, ...]:
        """ECU ids reachable from an entry point through the topology."""
        self.entry_point(entry_id)
        component = nx.node_connected_component(self._graph, entry_id)
        return tuple(sorted(n for n in component if n in self._ecus))

    def simple_paths(
        self, source: str, target: str, *, cutoff: Optional[int] = None
    ) -> Iterator[List[str]]:
        """All simple paths between two nodes, optionally length-bounded."""
        for node in (source, target):
            if node not in self._graph:
                raise KeyError(f"unknown node {node!r}")
        return nx.all_simple_paths(self._graph, source, target, cutoff=cutoff)

    def hop_distance(self, source: str, target: str) -> int:
        """Shortest-path hop count between two nodes.

        Raises:
            nx.NetworkXNoPath: when the nodes are disconnected.
        """
        return nx.shortest_path_length(self._graph, source, target)
