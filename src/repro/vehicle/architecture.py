"""Reference vehicle architecture (paper Fig. 4).

Builds the E/E architecture the paper's Fig. 4 sketches: a central
gateway bridging the powertrain, chassis, body, infotainment and
communication domains, each with its own bus and ECUs, plus the OBD port
wired — as in most real vehicles and in the paper's argument — straight
onto the powertrain CAN.

ECU names follow the figure: ECM/TCM/DEFC (powertrain), SCU (chassis),
BCM/LCM/SCM/DCU/WCU/BCU (body), ICM (infotainment), TCU/V2X
(communication).
"""

from __future__ import annotations

from repro.iso21434.enums import AttackVector
from repro.vehicle.bus import Bus, BusKind
from repro.vehicle.domains import VehicleDomain
from repro.vehicle.ecu import Ecu
from repro.vehicle.network import EntryPoint, VehicleNetwork


def reference_architecture() -> VehicleNetwork:
    """Build the Fig. 4 reference architecture.

    Topology summary:

    * ``can.powertrain`` — ECM, TCM, DEFC; the OBD port attaches here.
    * ``can.chassis`` — SCU, BCU.
    * ``can.body`` + ``lin.body`` — BCM, LCM, SCM, DCU, WCU.
    * ``eth.infotainment`` — ICM.
    * ``can.communication`` — TCU (cellular entry), V2X (adjacent entry).
    * The central gateway bridges every bus.
    * Physical bench access attaches directly to the ECM and the ICM
      (the two bench-attack targets the paper discusses).
    """
    net = VehicleNetwork(name="fig4-reference")

    gateway = net.add_ecu(
        Ecu("gateway", "Central Gateway", VehicleDomain.GATEWAY, safety_critical=False)
    )

    buses = {
        "can.powertrain": Bus("can.powertrain", "Powertrain CAN", BusKind.CAN,
                              VehicleDomain.POWERTRAIN, segmented=True),
        "can.chassis": Bus("can.chassis", "Chassis CAN", BusKind.CAN,
                           VehicleDomain.CHASSIS, segmented=True),
        "can.body": Bus("can.body", "Body CAN", BusKind.CAN, VehicleDomain.BODY),
        "lin.body": Bus("lin.body", "Body LIN", BusKind.LIN, VehicleDomain.BODY),
        "eth.infotainment": Bus("eth.infotainment", "Infotainment Ethernet",
                                BusKind.ETHERNET, VehicleDomain.INFOTAINMENT),
        "can.communication": Bus("can.communication", "Communication CAN",
                                 BusKind.CAN_FD, VehicleDomain.COMMUNICATION),
    }
    for bus in buses.values():
        net.add_bus(bus)
        net.attach(gateway.ecu_id, bus.bus_id)

    ecu_specs = (
        # ecu_id, name, domain, bus, safety_critical, fota, external ifaces
        ("ecm", "Engine Control Module", VehicleDomain.POWERTRAIN,
         "can.powertrain", True, False, frozenset()),
        ("tcm", "Transmission Control Module", VehicleDomain.POWERTRAIN,
         "can.powertrain", True, False, frozenset()),
        ("defc", "Diesel Exhaust Fluid Controller", VehicleDomain.POWERTRAIN,
         "can.powertrain", True, False, frozenset()),
        ("scu", "Steering Control Unit", VehicleDomain.CHASSIS,
         "can.chassis", True, False, frozenset()),
        ("bcu", "Brake Control Unit", VehicleDomain.CHASSIS,
         "can.chassis", True, False, frozenset()),
        ("bcm", "Body Control Module", VehicleDomain.BODY,
         "can.body", False, False, frozenset()),
        ("lcm", "Light Control Module", VehicleDomain.BODY,
         "lin.body", False, False, frozenset()),
        ("scm", "Seat Control Module", VehicleDomain.BODY,
         "lin.body", False, False, frozenset()),
        ("dcu", "Door Control Unit", VehicleDomain.BODY,
         "can.body", False, False, frozenset({AttackVector.ADJACENT})),
        ("wcu", "Window Control Unit", VehicleDomain.BODY,
         "lin.body", False, False, frozenset()),
        ("icm", "Infotainment Control Module", VehicleDomain.INFOTAINMENT,
         "eth.infotainment", False, True,
         frozenset({AttackVector.ADJACENT, AttackVector.NETWORK})),
        ("tcu", "Telematics Control Unit", VehicleDomain.COMMUNICATION,
         "can.communication", False, True,
         frozenset({AttackVector.NETWORK})),
        ("v2x", "V2X Communication Unit", VehicleDomain.COMMUNICATION,
         "can.communication", False, True,
         frozenset({AttackVector.ADJACENT, AttackVector.NETWORK})),
    )
    for ecu_id, name, domain, bus_id, safety, fota, ifaces in ecu_specs:
        net.add_ecu(
            Ecu(
                ecu_id=ecu_id,
                name=name,
                domain=domain,
                safety_critical=safety,
                fota_capable=fota,
                external_interfaces=ifaces,
            )
        )
        net.attach(ecu_id, bus_id)

    entry_specs = (
        ("obd_port", "OBD-II Port (cabin)", AttackVector.LOCAL, "can.powertrain"),
        ("cellular", "Cellular Uplink", AttackVector.NETWORK, "tcu"),
        ("bluetooth", "Bluetooth Pairing", AttackVector.ADJACENT, "icm"),
        ("v2x_radio", "V2X Radio Link", AttackVector.ADJACENT, "v2x"),
        ("bench.ecm", "Bench Access to ECM", AttackVector.PHYSICAL, "ecm"),
        ("bench.icm", "Bench Access to ICM", AttackVector.PHYSICAL, "icm"),
        ("keyfob", "Key-Fob Radio", AttackVector.ADJACENT, "dcu"),
    )
    for entry_id, name, vector, attach_to in entry_specs:
        net.add_entry_point(EntryPoint(entry_id, name, vector))
        net.attach(entry_id, attach_to)

    return net


def scaled_architecture(domains: int, ecus_per_domain: int) -> VehicleNetwork:
    """A synthetic architecture of configurable size for scaling benches.

    Builds ``domains`` generic body-domain buses, each carrying
    ``ecus_per_domain`` ECUs, bridged by a central gateway, with an OBD
    entry point on the first bus.
    """
    if domains < 1 or ecus_per_domain < 1:
        raise ValueError("domains and ecus_per_domain must be >= 1")
    net = VehicleNetwork(name=f"scaled-{domains}x{ecus_per_domain}")
    gateway = net.add_ecu(Ecu("gateway", "Gateway", VehicleDomain.GATEWAY))
    for d in range(domains):
        bus = net.add_bus(
            Bus(f"bus{d}", f"Bus {d}", BusKind.CAN, VehicleDomain.BODY)
        )
        net.attach(gateway.ecu_id, bus.bus_id)
        for e in range(ecus_per_domain):
            ecu = net.add_ecu(
                Ecu(f"ecu{d}_{e}", f"ECU {d}.{e}", VehicleDomain.BODY)
            )
            net.attach(ecu.ecu_id, bus.bus_id)
    net.add_entry_point(EntryPoint("obd_port", "OBD Port", AttackVector.LOCAL))
    net.attach("obd_port", "bus0")
    return net
