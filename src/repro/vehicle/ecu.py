"""Electronic Control Unit (ECU) model.

ECUs are the attack targets of the TARA.  Each carries the attributes the
PSP argument turns on: its functional domain (powertrain ECUs attract
insider tampering), whether it is safety-critical hard real-time (DoS
impact), and whether it supports Firmware Over The Air (without FOTA,
remote reprogramming is "uncommon and challenging" — paper §II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.iso21434.enums import AttackVector
from repro.vehicle.domains import VehicleDomain, plausible_vectors


@dataclass(frozen=True)
class Ecu:
    """One Electronic Control Unit.

    Attributes:
        ecu_id: unique identifier, e.g. ``"ecm"``.
        name: human-readable name, e.g. ``"Engine Control Module"``.
        domain: owning functional domain.
        safety_critical: controls a safety function in hard real time.
        fota_capable: supports Firmware Over The Air updates; without it
            remote reprogramming attacks are implausible (paper §II).
        external_interfaces: direct off-board interfaces this ECU exposes
            (e.g. cellular for a TCU) expressed as attack-vector classes.
    """

    ecu_id: str
    name: str
    domain: VehicleDomain
    safety_critical: bool = False
    fota_capable: bool = False
    external_interfaces: FrozenSet[AttackVector] = frozenset()

    def __post_init__(self) -> None:
        if not self.ecu_id:
            raise ValueError("ecu_id must be non-empty")
        object.__setattr__(
            self, "external_interfaces", frozenset(self.external_interfaces)
        )

    @property
    def plausible_vectors(self) -> FrozenSet[AttackVector]:
        """Attack vectors plausible against this ECU.

        The union of its domain's exposure and its own external
        interfaces; remote vectors are retained only when the ECU either
        has a network interface itself or is FOTA-capable.
        """
        vectors = set(plausible_vectors(self.domain)) | set(self.external_interfaces)
        direct_remote = (
            self.fota_capable or AttackVector.NETWORK in self.external_interfaces
        )
        deep_domain = self.domain in (VehicleDomain.POWERTRAIN, VehicleDomain.CHASSIS)
        if deep_domain and not direct_remote:
            vectors.discard(AttackVector.NETWORK)
        return frozenset(vectors)

    @property
    def is_powertrain(self) -> bool:
        """Whether this ECU belongs to the powertrain domain."""
        return self.domain is VehicleDomain.POWERTRAIN
