"""Vehicle E/E architecture substrate (paper Fig. 4).

ECU, bus and domain models, the networkx topology, the Fig. 4 reference
architecture, and graph attack-path enumeration feeding the ISO/SAE-21434
attack-path analysis.
"""

from repro.vehicle.architecture import reference_architecture, scaled_architecture
from repro.vehicle.attack_surface import (
    DEFAULT_CUTOFF,
    AttackSurfaceAnalyzer,
    SurfaceReport,
)
from repro.vehicle.bus import Bus, BusKind
from repro.vehicle.domains import (
    DOMAIN_EXPOSURE,
    VehicleDomain,
    is_plausible,
    plausible_vectors,
)
from repro.vehicle.ecu import Ecu
from repro.vehicle.messages import (
    CanMessage,
    MessageCatalog,
    Signal,
    message_assets,
    message_threats,
    powertrain_catalog,
)
from repro.vehicle.network import EntryPoint, NodeKind, VehicleNetwork
from repro.vehicle.uds import (
    DiagnosticProfile,
    SecurityAccessLevel,
    UdsService,
    hardened_profile,
    hardening_control,
    legacy_profile,
)

__all__ = [
    "AttackSurfaceAnalyzer",
    "Bus",
    "BusKind",
    "CanMessage",
    "DEFAULT_CUTOFF",
    "DOMAIN_EXPOSURE",
    "DiagnosticProfile",
    "Ecu",
    "EntryPoint",
    "MessageCatalog",
    "NodeKind",
    "SecurityAccessLevel",
    "Signal",
    "SurfaceReport",
    "UdsService",
    "VehicleDomain",
    "VehicleNetwork",
    "hardened_profile",
    "hardening_control",
    "is_plausible",
    "legacy_profile",
    "message_assets",
    "message_threats",
    "plausible_vectors",
    "powertrain_catalog",
    "reference_architecture",
    "scaled_architecture",
]
