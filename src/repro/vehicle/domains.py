"""Vehicle functional domains (paper Fig. 4).

The reference architecture partitions ECUs into functional domains; the
paper's argument is domain-sensitive: powertrain ECUs see predominantly
physical/local insider attacks, while connectivity domains see remote
ones.  :data:`DOMAIN_EXPOSURE` records which attack-vector classes are
*plausible* per domain — the green/blue/red shading of Fig. 4.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Mapping

from repro.iso21434.enums import AttackVector


class VehicleDomain(enum.Enum):
    """Functional domains of the reference architecture."""

    POWERTRAIN = "powertrain"
    CHASSIS = "chassis"
    BODY = "body"
    INFOTAINMENT = "infotainment"
    COMMUNICATION = "communication"
    GATEWAY = "gateway"
    DIAGNOSTIC = "diagnostic"


#: Plausible attack-vector classes per domain (paper Fig. 4 shading:
#: green = long-range/network, blue = short-range/adjacent, red = physical).
DOMAIN_EXPOSURE: Mapping[VehicleDomain, FrozenSet[AttackVector]] = {
    VehicleDomain.POWERTRAIN: frozenset(
        {AttackVector.PHYSICAL, AttackVector.LOCAL}
    ),
    VehicleDomain.CHASSIS: frozenset(
        {AttackVector.PHYSICAL, AttackVector.LOCAL}
    ),
    VehicleDomain.BODY: frozenset(
        {AttackVector.PHYSICAL, AttackVector.LOCAL, AttackVector.ADJACENT}
    ),
    VehicleDomain.INFOTAINMENT: frozenset(
        {AttackVector.LOCAL, AttackVector.ADJACENT, AttackVector.NETWORK}
    ),
    VehicleDomain.COMMUNICATION: frozenset(
        {AttackVector.ADJACENT, AttackVector.NETWORK}
    ),
    VehicleDomain.GATEWAY: frozenset(
        {AttackVector.LOCAL, AttackVector.ADJACENT, AttackVector.NETWORK}
    ),
    VehicleDomain.DIAGNOSTIC: frozenset(
        {AttackVector.PHYSICAL, AttackVector.LOCAL}
    ),
}


def plausible_vectors(domain: VehicleDomain) -> FrozenSet[AttackVector]:
    """The attack-vector classes plausible for ECUs of ``domain``."""
    return DOMAIN_EXPOSURE[domain]


def is_plausible(domain: VehicleDomain, vector: AttackVector) -> bool:
    """Whether ``vector`` is a plausible class for ``domain``."""
    return vector in DOMAIN_EXPOSURE[domain]
