"""Unified telemetry for the streaming stack (``repro.obs``).

Zero-dependency observability: every runtime layer writes into one
:class:`MetricsRegistry` (counters, gauges, fixed-bucket histograms
with labels), stage timings come from the :class:`TickTrace` span
recorder, and three exporters read the result — Prometheus text
exposition, a schema-versioned JSON snapshot (embedded in checkpoints
and bench records), and the human ``repro stats`` table.

Instrumentation is opt-in: constructing a runtime without ``metrics=``
wires the :class:`NullRegistry` no-op path, whose overhead the
``obs_overhead`` microbench bounds at ≤3% tick latency *with the full
registry enabled* (the null path is free).  Per-shard child registries
merge into their parent by pure summation — the metric-space mirror of
``SignalDelta.merge`` — so sharded totals equal the single-runtime
totals for the same events (property-tested in
``tests/properties/test_metrics_merge.py``).

See ``docs/OBSERVABILITY.md`` for the instrument catalog and label
conventions.
"""

from repro.obs.export import (
    json_snapshot,
    lint_prometheus,
    prometheus_text,
    stats_table,
    write_snapshot,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    OBS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    ensure_registry,
)
from repro.obs.trace import NULL_TRACE, Span, TickTrace, trace_for
from repro.obs.views import (
    HEALTH_SCHEMA_VERSION,
    describe_stages,
    runtime_health,
    stage_latencies,
    stream_stats,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "HEALTH_SCHEMA_VERSION",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACE",
    "NullRegistry",
    "OBS_SCHEMA_VERSION",
    "Span",
    "TickTrace",
    "describe_stages",
    "ensure_registry",
    "json_snapshot",
    "lint_prometheus",
    "prometheus_text",
    "runtime_health",
    "stage_latencies",
    "stats_table",
    "stream_stats",
    "trace_for",
    "write_snapshot",
]
