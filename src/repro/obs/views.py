"""Registry-backed runtime-health views and the legacy stat aliases.

Before this module the stack surfaced three unrelated dict shapes —
``StreamRuntime.stream_stats``, the index ``segment_stats``, and the
sharding ``state_dict`` counters — each assembled ad hoc at its call
site.  Both runtimes now delegate their ``stream_stats`` property here,
so every stats consumer (``repro stream --stats``, checkpoint metadata,
the bench harness) reads from **one** source:

* :func:`runtime_health` — the unified, schema-versioned health
  document: counters, per-stage latency summaries (from the shared
  registry when instrumentation is on), and per-index tier stats;
* :func:`stream_stats` — the **deprecated legacy aliases**: exactly the
  flat dict shapes the pre-obs runtimes returned, derived from the
  health document (``tests/obs/test_stat_views.py`` pins both shapes);
* :func:`stage_latencies` — count/total/mean per tick stage out of the
  ``psp_tick_stage_seconds`` histogram.

The counters in the health document are also what the registry's
``psp_*_total`` instruments hold — ``tests/obs/test_stat_views.py``
asserts the two stay equal, which is the "one source" contract.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.registry import Histogram, MetricsRegistry

#: Version stamp of the health-document shape.
HEALTH_SCHEMA_VERSION = 1


def stage_latencies(registry: MetricsRegistry) -> Dict[str, Dict[str, float]]:
    """Per-stage timing summary from ``psp_tick_stage_seconds``.

    Returns ``{stage: {"count": n, "total_seconds": s, "mean_ms": m}}``
    for every stage the trace has recorded (plus a ``"tick"`` row from
    the whole-tick histogram), empty with a :class:`~repro.obs.registry.
    NullRegistry` or before the first instrumented tick.
    """
    out: Dict[str, Dict[str, float]] = {}
    collected = registry.collect()
    stage_hist = collected.get("psp_tick_stage_seconds")
    if isinstance(stage_hist, Histogram):
        for key, series in sorted(stage_hist.samples().items()):
            stage = key[stage_hist.labelnames.index("stage")]
            out[stage] = {
                "count": series.count,
                "total_seconds": series.sum,
                "mean_ms": (
                    series.sum / series.count * 1e3 if series.count else 0.0
                ),
            }
    tick_hist = collected.get("psp_tick_seconds")
    if isinstance(tick_hist, Histogram):
        for _, series in tick_hist.samples().items():
            out["tick"] = {
                "count": series.count,
                "total_seconds": series.sum,
                "mean_ms": (
                    series.sum / series.count * 1e3 if series.count else 0.0
                ),
            }
    return out


def _counter_block(runtime) -> Dict[str, object]:
    """The shared counter core both runtime flavours report."""
    evaluator = runtime.evaluator
    return {
        "ticks": len(runtime.ticks),
        # Observed, not indexed: also survives a restore from a lean
        # (include_index=False) checkpoint, where the index restarts
        # empty.
        "posts_ingested": runtime.deltas.observed_posts,
        "posts_rejected": sum(
            len(report.rejected) for report in runtime.filter_reports
        ),
        "retunes": evaluator.retunes,
        "forced_retunes": evaluator.forced_retunes,
        "tara_rescores": evaluator.rescores,
        "alerts": len(evaluator.alerts),
        "learned_keywords": list(runtime.learned_keywords),
    }


def runtime_health(runtime) -> Dict[str, object]:
    """The unified health document for either runtime flavour.

    ``runtime`` is a :class:`~repro.stream.runtime.StreamRuntime` or
    :class:`~repro.stream.sharding.ShardedStreamRuntime` — detected by
    the ``shard_count`` attribute, not by type, so future runtime
    flavours only need the same small surface (``ticks``, ``deltas``,
    ``evaluator``, ``filter_reports``, ``learned_keywords``,
    ``metrics``).
    """
    sharded = hasattr(runtime, "shard_count")
    doc: Dict[str, object] = {
        "health_schema": HEALTH_SCHEMA_VERSION,
        "runtime": "sharded" if sharded else "stream",
        "counters": _counter_block(runtime),
        "stages": stage_latencies(runtime.metrics),
    }
    if sharded:
        doc["shards"] = runtime.shard_count
        doc["executor"] = getattr(runtime.executor, "kind", "unknown")
        doc["cursors"] = list(runtime.cursors)
        doc["shard_stats"] = [
            {
                "shard": shard_id,
                "cursor": cursor,
                "posts": deltas.observed_posts,
                "index": index.segment_stats,
            }
            for shard_id, (cursor, deltas, index) in enumerate(
                zip(runtime.cursors, runtime.shard_deltas, runtime.shard_indexes)
            )
        ]
    else:
        doc["cursor"] = runtime.cursor
        doc["index"] = runtime.index.segment_stats
    return doc


def stream_stats(runtime) -> Dict[str, object]:
    """The legacy flat ``stream_stats`` dict — **deprecated aliases**.

    Exactly the pre-obs shapes, key for key, derived from
    :func:`runtime_health` so old dashboards and benches keep working
    while new consumers read the health document (or the registry
    directly).
    """
    health = runtime_health(runtime)
    counters: Dict[str, object] = dict(health["counters"])  # type: ignore[arg-type]
    stats: Dict[str, object] = {"ticks": counters.pop("ticks")}
    if health["runtime"] == "sharded":
        stats.update(
            {
                "shards": health["shards"],
                "executor": health["executor"],
                "cursors": health["cursors"],
            }
        )
        stats.update(counters)
        stats["shard_stats"] = health["shard_stats"]
    else:
        stats["cursor"] = health["cursor"]
        stats.update(counters)
        stats["index"] = health["index"]
    return stats


def describe_stages(
    stages: Dict[str, Dict[str, float]], *, indent: str = "  "
) -> Optional[str]:
    """Human lines for a :func:`stage_latencies` result (None if empty)."""
    if not stages:
        return None
    order = [
        "filter",
        "append",
        "delta_ingest",
        "shard_map",
        "shard_merge",
        "sai",
        "retune",
        "rescore",
        "alert_emit",
        "tick",
    ]
    names = [s for s in order if s in stages]
    names += [s for s in sorted(stages) if s not in order]
    width = max(len(name) for name in names)
    lines = [
        f"{indent}{name:<{width}}  x{int(stages[name]['count']):>6}  "
        f"mean {stages[name]['mean_ms']:8.3f} ms  "
        f"total {stages[name]['total_seconds']:8.3f} s"
        for name in names
    ]
    return "\n".join(lines)
