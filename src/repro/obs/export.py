"""Exporters: Prometheus text exposition, JSON snapshot, human table.

Three read paths over one :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP``/``# TYPE`` headers, ``_bucket{le=...}``/``_sum``/
  ``_count`` histogram expansion with cumulative buckets), the payload
  the future async service's ``/metrics`` route will serve verbatim;
* :func:`json_snapshot` — the schema-versioned snapshot dict (the same
  block checkpoints and bench records embed), plus
  :func:`write_snapshot` for dumping it to disk in CI;
* :func:`stats_table` — the human ``repro stats``-style table: counters
  and gauges by series, stage latencies with count/mean/total columns.

:func:`lint_prometheus` is the line-format validator the CI replay
smoke runs over the exported text: every sample line must match the
exposition grammar, every family must carry ``# TYPE`` before its first
sample, and histogram ``le`` buckets must be cumulative.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


def _fmt_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _label_block(names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the merged registry in Prometheus text exposition format."""
    lines: List[str] = []
    for name, instrument in sorted(registry.collect().items()):
        if instrument.help:
            lines.append(f"# HELP {name} {_escape_help(instrument.help)}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, Histogram):
            for key, series in sorted(instrument.samples().items()):
                cumulative = series.cumulative()
                for bound, count in zip(
                    tuple(instrument.buckets) + (float("inf"),), cumulative
                ):
                    label_names = instrument.labelnames + ("le",)
                    label_values = key + (_fmt_value(bound),)
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_block(label_names, label_values)}"
                        f" {_fmt_value(count)}"
                    )
                lines.append(
                    f"{name}_sum{_label_block(instrument.labelnames, key)}"
                    f" {repr(float(series.sum))}"
                )
                lines.append(
                    f"{name}_count{_label_block(instrument.labelnames, key)}"
                    f" {_fmt_value(series.count)}"
                )
        else:
            for key, value in sorted(instrument.samples().items()):
                lines.append(
                    f"{name}{_label_block(instrument.labelnames, key)}"
                    f" {_fmt_value(value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


# -- exposition lint ---------------------------------------------------------

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_COMMENT_RE = re.compile(
    rf"^# (HELP|TYPE) ({_METRIC_NAME})(?: (.*))?$"
)
_LABELS = r'\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"' \
          r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\}'
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})({_LABELS})? "
    r"([-+]?(?:\d+\.?\d*(?:[eE][-+]?\d+)?|\+Inf|-Inf|NaN))"
    r"(?: \d+)?$"
)
_VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def lint_prometheus(text: str) -> List[str]:
    """Validate exposition text line-by-line; return a list of problems.

    An empty return means the text parses: comments are well-formed
    ``# HELP``/``# TYPE`` lines with known types, every sample matches
    the exposition grammar, samples of a typed family appear after
    their ``# TYPE``, and histogram bucket series are cumulative and
    end with ``le="+Inf"`` equal to the family ``_count``.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    buckets: Dict[str, List[Tuple[float, float]]] = {}
    counts: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            match = _COMMENT_RE.match(line)
            if not match:
                problems.append(f"line {lineno}: malformed comment: {line!r}")
                continue
            keyword, family, body = match.groups()
            if keyword == "TYPE":
                if body not in _VALID_TYPES:
                    problems.append(
                        f"line {lineno}: unknown type {body!r} for {family}"
                    )
                elif family in types:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for {family}"
                    )
                else:
                    types[family] = body
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name, labels, value = match.group(1), match.group(2), match.group(3)
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if family in types and types[family] == "histogram":
            if name == family:
                problems.append(
                    f"line {lineno}: bare sample {name!r} for histogram"
                )
            if name.endswith("_bucket"):
                le = re.search(r'le="([^"]+)"', labels or "")
                if not le:
                    problems.append(
                        f"line {lineno}: histogram bucket missing le label"
                    )
                else:
                    rest = re.sub(r',?le="(?:[^"\\]|\\.)*"', "", labels or "")
                    rest = re.sub(r"\{,", "{", rest)
                    if rest == "{}":
                        rest = ""
                    series_key = family + "|" + rest
                    bound = float(le.group(1).replace("+Inf", "inf"))
                    buckets.setdefault(series_key, []).append(
                        (bound, float(value))
                    )
            if name.endswith("_count"):
                series_key = family + "|" + (labels or "")
                counts[series_key] = float(value)
        elif name != family and family not in types and name not in types:
            problems.append(
                f"line {lineno}: sample {name!r} has no TYPE comment"
            )
        elif name in types or family in types:
            pass
        else:  # pragma: no cover - unreachable, kept for clarity
            problems.append(f"line {lineno}: untyped sample {name!r}")
    for series_key, rows in buckets.items():
        bounds = [b for b, _ in rows]
        values = [v for _, v in rows]
        if bounds != sorted(bounds):
            problems.append(f"{series_key}: bucket bounds not sorted")
        if values != sorted(values):
            problems.append(f"{series_key}: bucket counts not cumulative")
        if not bounds or bounds[-1] != float("inf"):
            problems.append(f"{series_key}: missing le=\"+Inf\" bucket")
        expected = counts.get(series_key)
        if expected is not None and values and values[-1] != expected:
            problems.append(
                f"{series_key}: +Inf bucket {values[-1]} != _count {expected}"
            )
    return problems


# -- JSON snapshot -----------------------------------------------------------


def json_snapshot(registry: MetricsRegistry) -> Dict[str, object]:
    """The schema-versioned snapshot (alias for ``registry.snapshot()``)."""
    return registry.snapshot()


def write_snapshot(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(json_snapshot(registry), indent=2, sort_keys=True) + "\n"
    )
    return target


# -- human table -------------------------------------------------------------


def stats_table(registry: MetricsRegistry) -> str:
    """Fixed-width counters/gauges/latency table for ``repro stats``."""
    collected = registry.collect()
    lines: List[str] = []

    scalar_rows: List[Tuple[str, str, str, float]] = []
    for name, instrument in sorted(collected.items()):
        if isinstance(instrument, (Counter, Gauge)):
            for key, value in sorted(instrument.samples().items()):
                labels = ",".join(
                    f"{n}={v}" for n, v in zip(instrument.labelnames, key)
                )
                scalar_rows.append((name, labels, instrument.kind, value))
    if scalar_rows:
        width = max(len(f"{n}{{{l}}}" if l else n) for n, l, _, _ in scalar_rows)
        lines.append(f"{'metric':<{width}}  {'kind':<7}  value")
        for name, labels, kind, value in scalar_rows:
            shown = f"{name}{{{labels}}}" if labels else name
            lines.append(f"{shown:<{width}}  {kind:<7}  {_fmt_value(value)}")

    hist_rows: List[Tuple[str, str, int, float, float]] = []
    for name, instrument in sorted(collected.items()):
        if isinstance(instrument, Histogram):
            for key, series in sorted(instrument.samples().items()):
                labels = ",".join(
                    f"{n}={v}" for n, v in zip(instrument.labelnames, key)
                )
                mean = series.sum / series.count if series.count else 0.0
                hist_rows.append(
                    (name, labels, series.count, mean, series.sum)
                )
    if hist_rows:
        if lines:
            lines.append("")
        width = max(len(f"{n}{{{l}}}" if l else n) for n, l, _, _, _ in hist_rows)
        lines.append(
            f"{'distribution':<{width}}  {'count':>8}  {'mean':>12}"
            f"  {'total':>12}"
        )
        for name, labels, count, mean, total in hist_rows:
            shown = f"{name}{{{labels}}}" if labels else name
            # Latency histograms (``*_seconds``) read best in ms/s; size
            # histograms (posts, keywords) are plain quantities.
            if name.endswith("_seconds"):
                mean_cell = f"{mean * 1e3:.3f} ms"
                total_cell = f"{total:.3f} s"
            else:
                mean_cell = f"{mean:.1f}"
                total_cell = _fmt_value(total)
            lines.append(
                f"{shown:<{width}}  {count:>8}  {mean_cell:>12}"
                f"  {total_cell:>12}"
            )
    return "\n".join(lines)
