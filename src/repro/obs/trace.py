"""Tick-span tracing: monotonic-clock stage timings as a span tree.

:class:`TickTrace` wraps each stage of the stream tick (``filter`` →
``append`` → ``delta_ingest`` → ``sai`` → ``retune`` → ``rescore`` →
``alert_emit``) and the sharded runtime's ``shard_map``/``shard_merge``
legs.  Every ``span()`` both appends a node to the current tick's span
tree (kept for the last :data:`KEEP_TICKS` ticks, for ``repro stats``
and debugging) and observes the duration into two registry histograms:

* ``psp_tick_seconds`` — whole-tick latency;
* ``psp_tick_stage_seconds{stage=...}`` — per-stage latency.

Durations come from :func:`time.perf_counter` — the monotonic clock —
so span math survives wall-clock adjustments.  The
:data:`NULL_TRACE` singleton is the no-op twin used whenever the
runtime runs with a :class:`~repro.obs.registry.NullRegistry`: its
context managers are a pre-built object with empty ``__enter__``/
``__exit__``, keeping the uninstrumented tick free of generator
overhead.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, List, Optional

from repro.obs.registry import MetricsRegistry, NullRegistry

#: Span trees retained for inspection (per trace instance).
KEEP_TICKS = 64


class Span:
    """One timed node: a tick root or a named stage beneath it."""

    __slots__ = ("name", "seconds", "children", "_start")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.children: List["Span"] = []
        self._start = 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "children": [c.as_dict() for c in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """ASCII tree: stage name, duration in ms, children nested."""
        lines = [f"{'  ' * indent}{self.name:<14} {self.seconds * 1e3:9.3f} ms"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class _SpanContext:
    """Context manager pushing/popping one span on the trace stack."""

    __slots__ = ("_trace", "_span")

    def __init__(self, trace: "TickTrace", span: Span):
        self._trace = trace
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        stack = self._trace._stack
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        span._start = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self._span
        span.seconds = time.perf_counter() - span._start
        self._trace._stack.pop()
        self._trace._finish(span)


class TickTrace:
    """Span recorder bound to one registry's tick/stage histograms."""

    enabled = True

    def __init__(self, registry: MetricsRegistry, keep_ticks: int = KEEP_TICKS):
        self._registry = registry
        self._tick_hist = registry.histogram(
            "psp_tick_seconds", "Whole stream-tick latency"
        )
        self._stage_hist = registry.histogram(
            "psp_tick_stage_seconds",
            "Per-stage stream-tick latency",
            labelnames=("stage",),
        )
        self._stack: List[Span] = []
        self._ticks: Deque[Span] = deque(maxlen=keep_ticks)

    def tick(self) -> _SpanContext:
        """The root span for one runtime tick."""
        return _SpanContext(self, Span("tick"))

    def span(self, name: str) -> _SpanContext:
        """A named stage span (nests under the innermost open span)."""
        return _SpanContext(self, Span(name))

    def _finish(self, span: Span) -> None:
        if span.name == "tick":
            self._tick_hist.observe(span.seconds)
            self._ticks.append(span)
        else:
            self._stage_hist.observe(span.seconds, stage=span.name)
            if not self._stack:
                # Stage recorded outside a tick (e.g. replay audit legs):
                # keep its tree too rather than dropping it.
                self._ticks.append(span)

    def last_tick(self) -> Optional[Span]:
        return self._ticks[-1] if self._ticks else None

    @property
    def ticks(self) -> List[Span]:
        return list(self._ticks)


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_CONTEXT = _NullContext()


class _NullTrace:
    """Do-nothing twin of :class:`TickTrace` for the no-op path."""

    enabled = False

    def tick(self) -> _NullContext:
        return _NULL_CONTEXT

    def span(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def last_tick(self) -> None:
        return None

    @property
    def ticks(self) -> List[Span]:
        return []


NULL_TRACE = _NullTrace()


def trace_for(registry) -> "TickTrace":
    """A live trace for real registries, :data:`NULL_TRACE` otherwise."""
    if isinstance(registry, NullRegistry) or not getattr(
        registry, "enabled", False
    ):
        return NULL_TRACE
    return TickTrace(registry)
