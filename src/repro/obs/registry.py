"""Zero-dependency metrics instruments and the registry that holds them.

The streaming stack accumulated ad-hoc counters (``forced_retunes``,
``interner_evicted``, per-tier ``segment_stats``) each surfaced through
a different dict shape.  This module is the single instrumentation layer
they all write into:

* :class:`Counter` — monotonically increasing totals (``_total`` names);
* :class:`Gauge` — set/inc/dec point-in-time values;
* :class:`Histogram` — fixed-bucket distributions (Prometheus
  cumulative-``le`` semantics: a bucket bound is *inclusive*);
* :class:`MetricsRegistry` — get-or-create instrument store with child
  registries (one per shard) merged by **pure summation**, mirroring
  ``SignalDelta.merge``;
* :class:`NullRegistry` — the no-op default path.  Every instrument
  method exists and does nothing, so instrumented code carries no
  ``if metrics:`` branches and the uninstrumented tick stays hot.

Instruments carry fixed ``labelnames`` declared at creation; each
distinct label-value tuple is an independent series.  A registry
snapshot (:meth:`MetricsRegistry.snapshot`) is schema-versioned JSON
consumed by checkpoints and the bench harness, and restorable with
:meth:`MetricsRegistry.restore` so a resumed runtime continues its
counters instead of restarting from zero.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Version stamp carried by every snapshot (and checkpoint ``metrics``
#: block).  Bump when the snapshot layout changes shape.
OBS_SCHEMA_VERSION = 1

#: Default latency buckets (seconds) — tick stages run microseconds to
#: tens of milliseconds on the bench workloads; the top buckets catch
#: retune/rescore spikes and cold rematerializations.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

#: Default size buckets (counts) for batch/seal-size histograms.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0,
    4.0,
    16.0,
    64.0,
    256.0,
    1024.0,
    4096.0,
    16384.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name: {label!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names: {names!r}")
    return names


class _Instrument:
    """Shared series bookkeeping: one value slot per label-value tuple."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if len(labels) != len(self.labelnames) or any(
            name not in labels for name in self.labelnames
        ):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)


class Counter(_Instrument):
    """A monotonically increasing total.  ``inc`` rejects negatives."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._series: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(self._key(labels), 0)

    def samples(self) -> Dict[Tuple[str, ...], float]:
        return dict(self._series)


class Gauge(_Instrument):
    """A point-in-time value: set to the current level, inc/dec deltas."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._series: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._series[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._series.get(self._key(labels), 0)

    def samples(self) -> Dict[Tuple[str, ...], float]:
        return dict(self._series)


class HistogramSeries:
    """Bucket counts + running sum/count for one label-value tuple.

    ``counts[i]`` is the number of observations in ``(bounds[i-1],
    bounds[i]]`` — *per-bucket* counts, cumulated only at export time.
    The final slot is the implicit ``+Inf`` bucket.
    """

    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts: List[float] = [0] * (n_buckets + 1)
        self.sum = 0.0
        self.count = 0

    def cumulative(self) -> List[float]:
        out, running = [], 0.0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class Histogram(_Instrument):
    """Fixed-bucket distribution with Prometheus ``le`` semantics.

    A bucket upper bound is **inclusive**: ``observe(0.005)`` with a
    ``0.005`` bound lands in that bucket, not the next — the edge case
    the merge property test pins explicitly.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS)
        if not bounds or any(
            later <= earlier for later, earlier in zip(bounds[1:], bounds[:-1])
        ):
            raise ValueError(
                f"histogram {name} buckets must be non-empty strictly "
                f"increasing, got {bounds!r}"
            )
        self.buckets = bounds
        self._series: Dict[Tuple[str, ...], HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = HistogramSeries(len(self.buckets))
        # bisect_left: first bound >= value, i.e. the inclusive-`le`
        # bucket; values past every bound fall in the +Inf slot.
        series.counts[bisect_left(self.buckets, value)] += 1
        series.sum += value
        series.count += 1

    def series(self, **labels: object) -> Optional[HistogramSeries]:
        return self._series.get(self._key(labels))

    def samples(self) -> Dict[Tuple[str, ...], HistogramSeries]:
        return dict(self._series)


class MetricsRegistry:
    """Get-or-create instrument store with summation-merged children.

    ``child()`` hands out a registry whose instruments are collected
    into the parent's exported/snapshotted totals by pure summation —
    the metric-space mirror of ``SignalDelta.merge``: per-shard child
    registries merged together equal one registry observing the same
    events, in any order and grouping (property-tested).

    ``add_collector`` registers a callable run just before every
    ``collect``/``snapshot`` — the hook runtimes use to refresh cheap
    point-in-time gauges (index sizes, tier stats) at export time
    instead of paying for them on every tick.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}
        self._children: List["MetricsRegistry"] = []
        self._collectors: List[Callable[[], None]] = []

    # -- instrument creation ------------------------------------------------

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or existing.labelnames != tuple(
                labelnames
            ):
                raise ValueError(
                    f"instrument {name!r} already registered as "
                    f"{existing.kind} with labels {existing.labelnames!r}"
                )
            return existing
        instrument = cls(name, help, labelnames, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    # -- children / collectors ----------------------------------------------

    def child(self) -> "MetricsRegistry":
        """A registry whose series sum into this one at collect time."""
        child = MetricsRegistry()
        self._children.append(child)
        return child

    @property
    def children(self) -> Tuple["MetricsRegistry", ...]:
        return tuple(self._children)

    def add_collector(self, fn: Callable[[], None]) -> None:
        self._collectors.append(fn)

    # -- collection (own + children, pure summation) ------------------------

    def collect(self) -> Dict[str, _Instrument]:
        """Merged view: own instruments + all children's, summed.

        Returns fresh instrument objects — mutating them does not touch
        the live registries.
        """
        merged = MetricsRegistry()
        merged.merge_from(self)
        return dict(merged._instruments)

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` (and its children) into this registry by sum."""
        for fn in other._collectors:
            fn()
        for instrument in other._instruments.values():
            self._absorb(instrument)
        for c in other._children:
            self.merge_from(c)

    def _absorb(self, instrument: _Instrument) -> None:
        if isinstance(instrument, Histogram):
            mine = self.histogram(
                instrument.name,
                instrument.help,
                instrument.labelnames,
                buckets=instrument.buckets,
            )
            if mine.buckets != instrument.buckets:
                raise ValueError(
                    f"histogram {instrument.name!r} bucket mismatch on merge"
                )
            for key, series in instrument._series.items():
                target = mine._series.get(key)
                if target is None:
                    target = mine._series[key] = HistogramSeries(
                        len(mine.buckets)
                    )
                for i, c in enumerate(series.counts):
                    target.counts[i] += c
                target.sum += series.sum
                target.count += series.count
        elif isinstance(instrument, Counter):
            mine = self.counter(
                instrument.name, instrument.help, instrument.labelnames
            )
            for key, value in instrument._series.items():
                mine._series[key] = mine._series.get(key, 0) + value
        elif isinstance(instrument, Gauge):
            # Gauges merge by summation too: per-shard index sizes sum
            # to the fleet size, mirroring how tier stats aggregate.
            mine = self.gauge(
                instrument.name, instrument.help, instrument.labelnames
            )
            for key, value in instrument._series.items():
                mine._series[key] = mine._series.get(key, 0) + value
        else:  # pragma: no cover - no further kinds exist
            raise TypeError(f"cannot merge instrument kind {instrument.kind!r}")

    @staticmethod
    def merged(registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """Pure-sum merge of independent registries into a fresh one."""
        out = MetricsRegistry()
        for registry in registries:
            out.merge_from(registry)
        return out

    # -- snapshot / restore --------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Schema-versioned JSON-safe dump of the merged registry."""
        metrics: Dict[str, object] = {}
        for name, instrument in sorted(self.collect().items()):
            entry: Dict[str, object] = {
                "kind": instrument.kind,
                "help": instrument.help,
                "labelnames": list(instrument.labelnames),
            }
            if isinstance(instrument, Histogram):
                entry["buckets"] = list(instrument.buckets)
                entry["series"] = [
                    {
                        "labels": list(key),
                        "counts": list(series.counts),
                        "sum": series.sum,
                        "count": series.count,
                    }
                    for key, series in sorted(instrument._series.items())
                ]
            else:
                entry["series"] = [
                    {"labels": list(key), "value": value}
                    for key, value in sorted(instrument._series.items())
                ]
            metrics[name] = entry
        return {"obs_schema": OBS_SCHEMA_VERSION, "metrics": metrics}

    def restore(self, snapshot: Dict[str, object]) -> None:
        """Re-absorb a snapshot: counters resume, gauges repopulate.

        Restoring is itself a summation merge, so restoring into a
        registry that has already observed events adds on top — callers
        restore into a fresh registry for exact counter continuity.
        """
        schema = snapshot.get("obs_schema")
        if schema != OBS_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported obs snapshot schema {schema!r} "
                f"(expected {OBS_SCHEMA_VERSION})"
            )
        staged = MetricsRegistry()
        for name, entry in snapshot.get("metrics", {}).items():
            kind = entry["kind"]
            labelnames = tuple(entry.get("labelnames", ()))
            if kind == "histogram":
                hist = staged.histogram(
                    name,
                    entry.get("help", ""),
                    labelnames,
                    buckets=tuple(entry["buckets"]),
                )
                for row in entry["series"]:
                    series = HistogramSeries(len(hist.buckets))
                    series.counts = [float(c) for c in row["counts"]]
                    series.sum = float(row["sum"])
                    series.count = int(row["count"])
                    hist._series[tuple(row["labels"])] = series
            elif kind in ("counter", "gauge"):
                inst = (staged.counter if kind == "counter" else staged.gauge)(
                    name, entry.get("help", ""), labelnames
                )
                for row in entry["series"]:
                    inst._series[tuple(row["labels"])] = float(row["value"])
            else:
                raise ValueError(f"unknown instrument kind {kind!r}")
        self.merge_from(staged)


class _NullInstrument:
    """Accepts every instrument method as a no-op (shared singleton)."""

    kind = "null"
    name = "null"
    help = ""
    labelnames: Tuple[str, ...] = ()
    buckets: Tuple[float, ...] = ()

    def inc(self, amount: float = 1, **labels: object) -> None:
        pass

    def dec(self, amount: float = 1, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0

    def series(self, **labels: object) -> None:
        return None

    def samples(self) -> Dict[Tuple[str, ...], float]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The default no-instrumentation path: every call is a cheap no-op.

    Instrumented code asks the registry for instruments unconditionally;
    with a ``NullRegistry`` those are a shared do-nothing singleton, so
    the hot tick pays one attribute lookup + an empty method call per
    event instead of any branching.  ``enabled`` lets exporters and
    span recorders skip their (costlier) work entirely.
    """

    enabled = False

    def counter(self, name, help="", labelnames=()):
        return _NULL_INSTRUMENT

    def gauge(self, name, help="", labelnames=()):
        return _NULL_INSTRUMENT

    def histogram(self, name, help="", labelnames=(), buckets=None):
        return _NULL_INSTRUMENT

    def child(self) -> "NullRegistry":
        return self

    @property
    def children(self) -> Tuple[()]:
        return ()

    def add_collector(self, fn) -> None:
        pass

    def collect(self) -> Dict[str, _Instrument]:
        return {}

    def merge_from(self, other) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {"obs_schema": OBS_SCHEMA_VERSION, "metrics": {}}

    def restore(self, snapshot) -> None:
        pass


def ensure_registry(metrics: Optional[MetricsRegistry]):
    """``None`` → the shared no-op path; anything else passes through."""
    return metrics if metrics is not None else NullRegistry()
