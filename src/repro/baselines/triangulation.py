"""Model triangulation over one compiled threat model.

Rates **every** threat of a :class:`~repro.tara.model.CompiledThreatModel`
under the three baseline lineages — the static ISO/SAE-21434 G.9 table,
EVITA's attack-potential risk graph and HEAVENS' capability scoring —
without re-identifying assets or threats: the compile phase already did
that work once, and the baselines only disagree on how feasibility/risk
is derived from it.

The point of carrying the triangulation at architecture scale is the
paper's §II argument, quantified per threat: EVITA and HEAVENS score
attacker *capability* directly, so owner-approved powertrain threats
(unlimited access, standard aftermarket equipment, public know-how)
come out top-tier under both — while the static G.9 table, reading only
the attack vector, rates the same threats Very Low/Low.  Agreement of
the two capability models with PSP isolates the static table as the
mis-rating component.

The factor derivations below are reproduction heuristics, not standard
text: each attack vector maps to the Common-Criteria factor levels a
*non-approved* attacker plausibly needs, and owner-approved threats get
the insider profile (the owner grants access and buys the kit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.baselines.evita import EvitaAssessment, assess_evita
from repro.baselines.heavens import (
    HeavensAssessment,
    ThreatLevelInput,
    assess_heavens,
)
from repro.baselines.static_iso import BaselineRating, StaticIsoBaseline
from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_potential import (
    AttackPotentialInput,
    ElapsedTime,
    Equipment,
    Expertise,
    Knowledge,
    WindowOfOpportunity,
)
from repro.iso21434.feasibility.attack_vector import WeightTable
from repro.iso21434.threats import ThreatScenario
from repro.tara.model import CompiledThreatModel

#: Attack-potential factors a non-approved attacker needs per vector.
_OUTSIDER_POTENTIAL: Mapping[AttackVector, AttackPotentialInput] = {
    AttackVector.NETWORK: AttackPotentialInput(
        elapsed_time=ElapsedTime.SIX_MONTHS,
        expertise=Expertise.EXPERT,
        knowledge=Knowledge.CONFIDENTIAL,
        window=WindowOfOpportunity.MODERATE,
        equipment=Equipment.SPECIALIZED,
    ),
    AttackVector.ADJACENT: AttackPotentialInput(
        elapsed_time=ElapsedTime.ONE_MONTH,
        expertise=Expertise.EXPERT,
        knowledge=Knowledge.RESTRICTED,
        window=WindowOfOpportunity.MODERATE,
        equipment=Equipment.SPECIALIZED,
    ),
    AttackVector.LOCAL: AttackPotentialInput(
        elapsed_time=ElapsedTime.ONE_MONTH,
        expertise=Expertise.PROFICIENT,
        knowledge=Knowledge.RESTRICTED,
        window=WindowOfOpportunity.MODERATE,
        equipment=Equipment.STANDARD,
    ),
    AttackVector.PHYSICAL: AttackPotentialInput(
        elapsed_time=ElapsedTime.ONE_MONTH,
        expertise=Expertise.PROFICIENT,
        knowledge=Knowledge.RESTRICTED,
        window=WindowOfOpportunity.DIFFICULT,
        equipment=Equipment.SPECIALIZED,
    ),
}

#: The owner grants access: forum know-how, unlimited time in the own
#: garage, off-the-shelf tuning kit (paper §II's insider profile).
_INSIDER_POTENTIAL = AttackPotentialInput(
    elapsed_time=ElapsedTime.ONE_WEEK,
    expertise=Expertise.LAYMAN,
    knowledge=Knowledge.PUBLIC,
    window=WindowOfOpportunity.UNLIMITED,
    equipment=Equipment.STANDARD,
)

#: HEAVENS capability scores (higher = *less* capable attacker needed).
_OUTSIDER_CAPABILITY: Mapping[AttackVector, ThreatLevelInput] = {
    AttackVector.NETWORK: ThreatLevelInput(
        expertise=0, knowledge=1, opportunity=2, equipment=1
    ),
    AttackVector.ADJACENT: ThreatLevelInput(
        expertise=1, knowledge=1, opportunity=1, equipment=1
    ),
    AttackVector.LOCAL: ThreatLevelInput(
        expertise=1, knowledge=2, opportunity=1, equipment=2
    ),
    AttackVector.PHYSICAL: ThreatLevelInput(
        expertise=1, knowledge=1, opportunity=0, equipment=1
    ),
}

_INSIDER_CAPABILITY = ThreatLevelInput(
    expertise=3, knowledge=3, opportunity=3, equipment=3
)


def potential_for(
    threat: ThreatScenario, vector: AttackVector
) -> AttackPotentialInput:
    """Attack-potential factors for a threat realised through ``vector``."""
    if threat.is_owner_approved:
        return _INSIDER_POTENTIAL
    return _OUTSIDER_POTENTIAL[vector]


def capability_for(
    threat: ThreatScenario, vector: AttackVector
) -> ThreatLevelInput:
    """HEAVENS capability scores for a threat realised through ``vector``."""
    if threat.is_owner_approved:
        return _INSIDER_CAPABILITY
    return _OUTSIDER_CAPABILITY[vector]


@dataclass(frozen=True)
class TriangulatedAssessment:
    """One threat rated by the three baseline models."""

    threat_id: str
    owner_approved: bool
    iso_static: BaselineRating
    evita: EvitaAssessment
    heavens: HeavensAssessment

    @property
    def capability_models_rate_high(self) -> bool:
        """Whether EVITA and HEAVENS both put the threat in their top half."""
        return self.evita.risk.level >= 4 and self.heavens.security.level >= 3

    @property
    def static_underrates(self) -> bool:
        """Whether the static table rates low what both capability models
        rate high — the paper's mis-rating signature."""
        return (
            self.capability_models_rate_high
            and self.iso_static.feasibility.level <= FeasibilityRating.LOW.level
        )


def triangulate_model(
    model: CompiledThreatModel,
    *,
    table: Optional[WeightTable] = None,
) -> Tuple[TriangulatedAssessment, ...]:
    """Rate every compiled threat under static-ISO, EVITA and HEAVENS.

    All three baselines consume the *same* compiled threats and impact
    profiles — no model re-identifies assets or re-enumerates STRIDE
    scenarios.  The static baseline's chosen vector (the best one under
    its table) also selects the factor profile the capability models
    assume for non-approved attackers.

    Args:
        model: the compiled architecture.
        table: weight table for the static-ISO side (G.9 by default).
    """
    baseline = StaticIsoBaseline(table)
    assessments = []
    for threat, impact in model.items():
        iso = baseline.rate(threat)
        vector = iso.chosen_vector
        assessments.append(
            TriangulatedAssessment(
                threat_id=threat.threat_id,
                owner_approved=threat.is_owner_approved,
                iso_static=iso,
                evita=assess_evita(
                    threat.threat_id, potential_for(threat, vector), impact
                ),
                heavens=assess_heavens(
                    threat.threat_id, capability_for(threat, vector), impact
                ),
            )
        )
    return tuple(assessments)
