"""EVITA-style risk-graph baseline.

EVITA (E-safety Vehicle Intrusion proTected Applications) is the oldest
of the automotive TARA lineages the ISO/SAE-21434 annexes acknowledge.
It combines an *attack probability* (derived from attack potential, the
same Common-Criteria factors as paper Fig. 3) with a *severity vector*
over the S/F/O/P dimensions through a risk graph, yielding risk levels
R0 (no risk) to R6 (highest) — R7+ is reserved for multi-fatality safety
cases, which this reproduction folds into R6.

The value of carrying EVITA here is triangulation: it shares the attack-
potential factor model with ISO's first feasibility approach but
aggregates differently, so agreement between EVITA and PSP on powertrain
threats (both rate them high) isolates the G.9 static table — not the
factor model — as the source of the paper's mis-rating.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.iso21434.enums import ImpactCategory, ImpactRating
from repro.iso21434.feasibility.attack_potential import AttackPotentialInput
from repro.iso21434.impact import ImpactProfile


class AttackProbability(enum.Enum):
    """EVITA attack probability classes (5 highest)."""

    P1 = 1
    P2 = 2
    P3 = 3
    P4 = 4
    P5 = 5

    @property
    def level(self) -> int:
        """Integer value of the class."""
        return int(self.value)


class RiskLevel(enum.Enum):
    """EVITA risk levels R0 (none) to R6 (highest)."""

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    R4 = 4
    R5 = 5
    R6 = 6

    @property
    def level(self) -> int:
        """Integer value of the level."""
        return int(self.value)


def attack_probability(potential: AttackPotentialInput) -> AttackProbability:
    """Map an attack-potential value to an EVITA probability class.

    EVITA's published banding: potential <= 9 → P5 (very likely),
    10..13 → P4, 14..19 → P3, 20..24 → P2, >= 25 → P1 (unlikely).
    """
    value = potential.potential_value
    if value <= 9:
        return AttackProbability.P5
    if value <= 13:
        return AttackProbability.P4
    if value <= 19:
        return AttackProbability.P3
    if value <= 24:
        return AttackProbability.P2
    return AttackProbability.P1


def severity_class(profile: ImpactProfile) -> int:
    """EVITA severity class 0..4 from the impact profile.

    The overall (max) impact rating maps Negligible→0, Moderate→1,
    Major→2, Severe→3; a safety-dominated Severe impact is promoted to 4
    (EVITA's life-threatening class).
    """
    overall = profile.overall
    base = overall.level
    if (
        overall is ImpactRating.SEVERE
        and profile.dominant_category is ImpactCategory.SAFETY
    ):
        return 4
    return base


def risk_level(severity: int, probability: AttackProbability) -> RiskLevel:
    """Read the EVITA risk graph.

    Risk grows with both severity (0..4) and probability (1..5); the
    published graph is reproduced as ``R = clamp(severity + probability
    - 2, 0, 6)``, which matches its corner cases: S0 always R0-ish, S4/P5
    the maximum.
    """
    if not 0 <= severity <= 4:
        raise ValueError(f"severity must be in 0..4, got {severity}")
    if severity == 0:
        return RiskLevel.R0
    value = severity + probability.level - 2
    return RiskLevel(max(0, min(6, value)))


@dataclass(frozen=True)
class EvitaAssessment:
    """One threat's EVITA rating."""

    threat_id: str
    probability: AttackProbability
    severity: int
    risk: RiskLevel


def assess_evita(
    threat_id: str, potential: AttackPotentialInput, profile: ImpactProfile
) -> EvitaAssessment:
    """Run the full EVITA pipeline for one threat."""
    probability = attack_probability(potential)
    severity = severity_class(profile)
    return EvitaAssessment(
        threat_id=threat_id,
        probability=probability,
        severity=severity,
        risk=risk_level(severity, probability),
    )
