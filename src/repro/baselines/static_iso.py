"""Static ISO/SAE-21434 baseline (the model the paper criticises).

Rates every threat scenario with the standard's *fixed* attack-vector
table G.9, exactly as a TARA tool with no PSP layer would: the attacker
is assumed to pick the highest-rated vector among those the threat can
use, and that vector's static rating is the threat's feasibility.

Experiment E10 compares this baseline against the PSP-tuned model over
the full reference architecture; disagreement concentrates on
powertrain/physical insider threats, reproducing the paper's §II claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import WeightTable, standard_table
from repro.iso21434.threats import ThreatScenario


@dataclass(frozen=True)
class BaselineRating:
    """A threat's feasibility under one weight table."""

    threat_id: str
    chosen_vector: AttackVector
    feasibility: FeasibilityRating


class StaticIsoBaseline:
    """The unmodified attack-vector-based TARA model.

    Args:
        table: the weight table to apply; defaults to the standard's G.9.
            Passing a PSP-tuned table turns this same evaluator into the
            PSP-side of the comparison, which keeps E10 apples-to-apples.
    """

    def __init__(self, table: Optional[WeightTable] = None) -> None:
        self._table = table if table is not None else standard_table()

    @property
    def table(self) -> WeightTable:
        """The weight table in force."""
        return self._table

    def best_vector(self, threat: ThreatScenario) -> AttackVector:
        """The highest-rated vector available to the threat.

        Ties are broken by reach (network first), matching the standard's
        remote-first worldview.
        """
        return max(
            threat.attack_vectors,
            key=lambda v: (self._table.rating(v).level, v.reach),
        )

    def rate(self, threat: ThreatScenario) -> BaselineRating:
        """Rate one threat scenario."""
        vector = self.best_vector(threat)
        return BaselineRating(
            threat_id=threat.threat_id,
            chosen_vector=vector,
            feasibility=self._table.rating(vector),
        )

    def rate_all(self, threats) -> Tuple[BaselineRating, ...]:
        """Rate many threat scenarios."""
        return tuple(self.rate(t) for t in threats)
