"""Baseline risk models: static ISO G.9, HEAVENS and EVITA comparators."""

from repro.baselines.evita import (
    AttackProbability,
    EvitaAssessment,
    RiskLevel,
    assess_evita,
    attack_probability,
    risk_level,
    severity_class,
)
from repro.baselines.heavens import (
    HeavensAssessment,
    HeavensLevel,
    SecurityLevel,
    ThreatLevelInput,
    assess_heavens,
    impact_level,
    security_level,
    threat_level,
)
from repro.baselines.static_iso import BaselineRating, StaticIsoBaseline
from repro.baselines.triangulation import (
    TriangulatedAssessment,
    capability_for,
    potential_for,
    triangulate_model,
)

__all__ = [
    "AttackProbability",
    "BaselineRating",
    "TriangulatedAssessment",
    "capability_for",
    "potential_for",
    "triangulate_model",
    "EvitaAssessment",
    "HeavensAssessment",
    "HeavensLevel",
    "RiskLevel",
    "SecurityLevel",
    "StaticIsoBaseline",
    "ThreatLevelInput",
    "assess_evita",
    "assess_heavens",
    "attack_probability",
    "impact_level",
    "risk_level",
    "security_level",
    "severity_class",
    "threat_level",
]
