"""HEAVENS-style risk model baseline (paper ref. [15]).

The HEAVENS (HEAling Vulnerabilities to ENhance Software Security and
Safety) methodology — whose 2.0 revision the paper cites as the origin of
the recursive TARA activities — derives a *security level* from a Threat
Level (TL) and an Impact Level (IL):

* TL is scored from four attacker-capability parameters (expertise,
  knowledge about the target, window of opportunity, equipment), each
  contributing 0..3 points; the sum maps to TL None/Low/Medium/High.
* IL is scored from the four impact parameters (safety, financial,
  operational, privacy/legislation) with safety double-weighted; the sum
  maps to IL None/Low/Medium/High.
* The security level is read from the TL x IL matrix, ranging QM (quality
  management only) to Critical.

This reproduction keeps HEAVENS' published structure but reuses the
repository's enums so results are directly comparable with the ISO and
PSP models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.iso21434.enums import ImpactCategory
from repro.iso21434.impact import ImpactProfile


class HeavensLevel(enum.Enum):
    """Four-level scale used for both TL and IL."""

    NONE = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3

    @property
    def level(self) -> int:
        """Integer value of the level."""
        return int(self.value)


class SecurityLevel(enum.Enum):
    """HEAVENS security level (the model's final output)."""

    QM = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3
    CRITICAL = 4

    @property
    def level(self) -> int:
        """Integer value of the level."""
        return int(self.value)


@dataclass(frozen=True)
class ThreatLevelInput:
    """Attacker-capability parameters, each scored 0..3.

    Higher scores mean *less* capable attacker needed → higher threat.
    A 0 means the attack needs top-tier capability in that dimension; a 3
    means a layman with public knowledge, unlimited access and standard
    equipment suffices.
    """

    expertise: int
    knowledge: int
    opportunity: int
    equipment: int

    def __post_init__(self) -> None:
        for name in ("expertise", "knowledge", "opportunity", "equipment"):
            value = getattr(self, name)
            if not 0 <= value <= 3:
                raise ValueError(f"{name} must be in 0..3, got {value}")

    @property
    def total(self) -> int:
        """Sum of the four parameter scores (0..12)."""
        return self.expertise + self.knowledge + self.opportunity + self.equipment


def threat_level(params: ThreatLevelInput) -> HeavensLevel:
    """Map the capability-score sum to a Threat Level.

    0..2 None, 3..5 Low, 6..8 Medium, 9..12 High.
    """
    total = params.total
    if total <= 2:
        return HeavensLevel.NONE
    if total <= 5:
        return HeavensLevel.LOW
    if total <= 8:
        return HeavensLevel.MEDIUM
    return HeavensLevel.HIGH


#: Impact-category weights: HEAVENS double-weights safety.
_IL_WEIGHTS: Mapping[ImpactCategory, int] = {
    ImpactCategory.SAFETY: 2,
    ImpactCategory.FINANCIAL: 1,
    ImpactCategory.OPERATIONAL: 1,
    ImpactCategory.PRIVACY: 1,
}


def impact_level(profile: ImpactProfile) -> HeavensLevel:
    """Map an S/F/O/P impact profile to an Impact Level.

    Each category contributes its rating level (0..3) times its weight;
    the weighted sum (0..15) maps 0..1 None, 2..5 Low, 6..10 Medium,
    11..15 High.
    """
    total = sum(
        profile.rating(category).level * weight
        for category, weight in _IL_WEIGHTS.items()
    )
    if total <= 1:
        return HeavensLevel.NONE
    if total <= 5:
        return HeavensLevel.LOW
    if total <= 10:
        return HeavensLevel.MEDIUM
    return HeavensLevel.HIGH


#: Security-level matrix: (TL, IL) -> security level.
_SECURITY_MATRIX: Mapping[Tuple[HeavensLevel, HeavensLevel], SecurityLevel] = {
    (tl, il): sl
    for tl, row in {
        HeavensLevel.NONE: {
            HeavensLevel.NONE: SecurityLevel.QM,
            HeavensLevel.LOW: SecurityLevel.QM,
            HeavensLevel.MEDIUM: SecurityLevel.LOW,
            HeavensLevel.HIGH: SecurityLevel.LOW,
        },
        HeavensLevel.LOW: {
            HeavensLevel.NONE: SecurityLevel.QM,
            HeavensLevel.LOW: SecurityLevel.LOW,
            HeavensLevel.MEDIUM: SecurityLevel.MEDIUM,
            HeavensLevel.HIGH: SecurityLevel.MEDIUM,
        },
        HeavensLevel.MEDIUM: {
            HeavensLevel.NONE: SecurityLevel.LOW,
            HeavensLevel.LOW: SecurityLevel.MEDIUM,
            HeavensLevel.MEDIUM: SecurityLevel.HIGH,
            HeavensLevel.HIGH: SecurityLevel.HIGH,
        },
        HeavensLevel.HIGH: {
            HeavensLevel.NONE: SecurityLevel.LOW,
            HeavensLevel.LOW: SecurityLevel.MEDIUM,
            HeavensLevel.MEDIUM: SecurityLevel.HIGH,
            HeavensLevel.HIGH: SecurityLevel.CRITICAL,
        },
    }.items()
    for il, sl in row.items()
}


def security_level(tl: HeavensLevel, il: HeavensLevel) -> SecurityLevel:
    """Read the HEAVENS security level from the TL x IL matrix."""
    return _SECURITY_MATRIX[(tl, il)]


@dataclass(frozen=True)
class HeavensAssessment:
    """One threat's HEAVENS rating."""

    threat_id: str
    tl: HeavensLevel
    il: HeavensLevel
    security: SecurityLevel


def assess_heavens(
    threat_id: str, params: ThreatLevelInput, profile: ImpactProfile
) -> HeavensAssessment:
    """Run the full HEAVENS pipeline for one threat."""
    tl = threat_level(params)
    il = impact_level(profile)
    return HeavensAssessment(
        threat_id=threat_id, tl=tl, il=il, security=security_level(tl, il)
    )
