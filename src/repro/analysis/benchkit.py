"""Reusable benchmark kernels behind the ``BENCH_*.json`` harness.

Each ``run_*_bench`` function times a naive (seed-era) path against the
current engine on the fleet-scale acceptance workload, checks the two
paths produce identical results, and returns a
:class:`~repro.analysis.benchjson.BenchResult` ready to be written as
``BENCH_<name>.json``.  The kernels are shared by the pytest benches
under ``benchmarks/`` (which assert the speedup gates) and by the
standalone ``benchmarks/run_benches.py`` runner (which emits the JSON
trajectory in CI).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.benchjson import BenchResult
from repro.core.cache import CachedClient, TTLCache
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.sai import SAIComputer, SAIList
from repro.core.timewindow import TimeWindow
from repro.iso21434.attack_path import threat_feasibility
from repro.iso21434.cal import determine_cal
from repro.iso21434.enums import CAL, AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import WeightTable, standard_table
from repro.iso21434.impact import ImpactProfile
from repro.iso21434.risk import RiskMatrix, default_matrix
from repro.iso21434.threats import ThreatScenario
from repro.iso21434.treatment import TreatmentPolicy
from repro.nlp.analysis import analyze_text
from repro.nlp.normalize import canonical_keyword, keyword_in_text
from repro.social.api import BatchQuery, InMemoryClient, SearchQuery
from repro.social.corpus import Corpus
from repro.social.index import CorpusIndex
from repro.social.post import Post
from repro.social.synthetic import AttackTopicSpec, generate_corpus
from repro.tara.model import (
    clear_compile_cache,
    compile_threat_model,
    enumerate_threats,
    identify_assets,
    rate_impact,
)
from repro.tara.scoring import (
    BatchTaraScorer,
    TableSpec,
    TaraRecord,
    TaraReportData,
)
from repro.vehicle.architecture import scaled_architecture
from repro.vehicle.attack_surface import AttackSurfaceAnalyzer
from repro.vehicle.network import VehicleNetwork

#: Fleet-scale acceptance workload: >= 50 keywords over the monitor's
#: growing-window cadence (5 overlapping windows, 4-8 years each).
N_KEYWORDS = 56
YEARS = tuple(range(2016, 2024))
WINDOW_LAST_YEARS = tuple(range(2019, 2024))

_VECTORS = (
    AttackVector.PHYSICAL,
    AttackVector.LOCAL,
    AttackVector.ADJACENT,
    AttackVector.NETWORK,
)


@dataclass(frozen=True)
class BenchWorkload:
    """One materialised benchmark workload."""

    corpus: Corpus
    database: KeywordDatabase
    windows: Tuple[TimeWindow, ...]

    @property
    def keywords(self) -> Tuple[str, ...]:
        """The database keywords, in insertion order."""
        return self.database.keywords

    def dimensions(self) -> Dict[str, int]:
        """The workload block of the BENCH json payload."""
        return {
            "keywords": len(self.database),
            "windows": len(self.windows),
            "posts": len(self.corpus),
        }


def fleet_workload_specs(
    n_keywords: int = N_KEYWORDS, years: Sequence[int] = YEARS
) -> Tuple[AttackTopicSpec, ...]:
    """Deterministic attack-topic specs for the fleet-scale workload."""
    return tuple(
        AttackTopicSpec(
            keyword=f"attacktopic{i:02d}",
            vector=_VECTORS[i % len(_VECTORS)],
            owner_approved=(i % 3 != 0),
            yearly_volume={year: 4 + (i + year) % 7 for year in years},
            engagement_scale=0.5 + (i % 5) * 0.3,
        )
        for i in range(n_keywords)
    )


def database_for_specs(specs: Sequence[AttackTopicSpec]) -> KeywordDatabase:
    """A keyword database covering every spec'd topic."""
    database = KeywordDatabase()
    for spec in specs:
        database.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    return database


def fleet_workload(
    n_keywords: int = N_KEYWORDS,
    years: Sequence[int] = YEARS,
    *,
    seed: int = 21434,
) -> BenchWorkload:
    """The 56-keyword x 5-overlapping-window acceptance workload."""
    specs = fleet_workload_specs(n_keywords, years)
    windows = tuple(
        TimeWindow.years(years[0], last) for last in WINDOW_LAST_YEARS
    )
    return BenchWorkload(
        corpus=generate_corpus(specs, seed=seed),
        database=database_for_specs(specs),
        windows=windows,
    )


# -- indexed corpus engine vs the pre-index matching loop --------------------


def naive_matching_pass(
    corpus: Corpus,
    keywords: Sequence[str],
    windows: Sequence[TimeWindow],
) -> List[Dict[str, List[Post]]]:
    """The pre-index ``Corpus.matching`` loop, replicated faithfully.

    Per window: materialise the sub-corpus, build its lazy hashtag
    index, then scan linearly per keyword with the folded free-text
    matcher (:func:`~repro.nlp.normalize.keyword_in_text`) on every
    untagged post — O(keywords x posts x windows) repeated string work.
    """
    results: List[Dict[str, List[Post]]] = []
    for window in windows:
        scope = corpus.in_window(since=window.since, until=window.until)
        posts = list(scope)
        hashtag_index: Dict[str, List[Post]] = {}
        for post in posts:
            for tag in set(post.hashtags):
                hashtag_index.setdefault(tag, []).append(post)
        per_keyword: Dict[str, List[Post]] = {}
        for keyword in keywords:
            canonical = canonical_keyword(keyword)
            matched = list(hashtag_index.get(canonical, ()))
            tagged_ids = {p.post_id for p in matched}
            for post in posts:
                if post.post_id in tagged_ids:
                    continue
                if keyword_in_text(keyword, post.text):
                    matched.append(post)
            matched.sort(key=lambda p: (p.created_at, p.post_id))
            per_keyword[keyword] = matched
        results.append(per_keyword)
    return results


def indexed_matching_pass(
    corpus: Corpus,
    keywords: Sequence[str],
    windows: Sequence[TimeWindow],
) -> List[Dict[str, List[Post]]]:
    """The indexed engine: one batch sweep per bisected window."""
    return [
        corpus.search_many(keywords, since=window.since, until=window.until)
        for window in windows
    ]


def _matching_results_equal(
    left: Sequence[Dict[str, List[Post]]],
    right: Sequence[Dict[str, List[Post]]],
) -> bool:
    if len(left) != len(right):
        return False
    for per_left, per_right in zip(left, right):
        if set(per_left) != set(per_right):
            return False
        for keyword in per_left:
            ids_left = [p.post_id for p in per_left[keyword]]
            ids_right = [p.post_id for p in per_right[keyword]]
            if ids_left != ids_right:
                return False
    return True


def run_indexed_corpus_bench(
    workload: Optional[BenchWorkload] = None,
) -> BenchResult:
    """Time the pre-index matching loop against the indexed engine.

    The shared text-analysis cache is cleared before each side so both
    pay their full cold cost — the engine's timing includes building the
    inverted index from scratch.
    """
    load = workload or fleet_workload()
    keywords = load.keywords

    analyze_text.cache_clear()
    start = time.perf_counter()
    naive = naive_matching_pass(load.corpus, keywords, load.windows)
    naive_s = time.perf_counter() - start

    engine_corpus = Corpus(load.corpus.posts)
    analyze_text.cache_clear()
    start = time.perf_counter()
    indexed = indexed_matching_pass(engine_corpus, keywords, load.windows)
    engine_s = time.perf_counter() - start

    return BenchResult(
        name="indexed_corpus",
        workload=load.dimensions(),
        naive_seconds=naive_s,
        engine_seconds=engine_s,
        equivalent=_matching_results_equal(naive, indexed),
        extra={
            "distinct_index_terms": engine_corpus.index().distinct_terms,
            "matches_per_window": [
                sum(len(posts) for posts in per_keyword.values())
                for per_keyword in indexed
            ],
        },
    )


# -- batched+cached engine vs the per-keyword query path ---------------------


def sequential_sai_pass(
    client: InMemoryClient,
    database: KeywordDatabase,
    windows: Sequence[TimeWindow],
    *,
    region: str = "europe",
) -> List[SAIList]:
    """The seed path: one synchronous search per keyword per window."""
    computer = SAIComputer(client)
    results = []
    for window in windows:
        posts = {
            entry.keyword: client.search(
                SearchQuery(
                    keyword=entry.keyword,
                    since=window.since,
                    until=window.until,
                    region=region,
                )
            )
            for entry in database
        }
        results.append(computer.compute_from_posts(database, posts))
    return results


def batched_cached_sai_pass(
    client,
    database: KeywordDatabase,
    windows: Sequence[TimeWindow],
    *,
    region: str = "europe",
    prewarm: bool = True,
) -> List[SAIList]:
    """The engine path: one batched query per window over a cached client.

    A monitoring sequence knows its windows up front, so the engine
    first pre-warms the cached client's (keyword × year) segment grid
    for the union year span (one batched platform pass per year) —
    every window query afterwards is answered entirely from cache
    instead of missing on each window's newest year.
    """
    computer = SAIComputer(client)
    if prewarm and isinstance(client, CachedClient):
        bounded = [
            window
            for window in windows
            if window.since is not None and window.until is not None
        ]
        if bounded:
            client.prewarm_segments(
                database.keywords,
                min(window.since.year for window in bounded),
                max(window.until.year for window in bounded),
                region=region,
            )
    return [
        computer.compute(
            database, region=region, since=window.since, until=window.until
        )
        for window in windows
    ]


def run_batch_engine_bench(
    workload: Optional[BenchWorkload] = None,
) -> BenchResult:
    """Time the per-keyword query path against the batched+cached engine."""
    load = workload or fleet_workload()

    plain = InMemoryClient(Corpus(load.corpus.posts))
    start = time.perf_counter()
    sequential = sequential_sai_pass(plain, load.database, load.windows)
    naive_s = time.perf_counter() - start

    cached = CachedClient(
        InMemoryClient(Corpus(load.corpus.posts)), cache=TTLCache()
    )
    start = time.perf_counter()
    batched = batched_cached_sai_pass(cached, load.database, load.windows)
    engine_s = time.perf_counter() - start

    equivalent = all(
        left.as_rows() == right.as_rows()
        for left, right in zip(sequential, batched)
    ) and len(sequential) == len(batched)

    return BenchResult(
        name="batch_engine",
        workload=load.dimensions(),
        naive_seconds=naive_s,
        engine_seconds=engine_s,
        equivalent=equivalent,
        extra={"query_cache": cached.stats.as_dict()},
    )


# -- memoized sentiment vs re-scoring every window ---------------------------


def run_sentiment_memo_bench(
    workload: Optional[BenchWorkload] = None,
) -> BenchResult:
    """Time SAI re-evaluation with a cold vs warm sentiment memo.

    Models the ablation-sweep / fleet shape: the same fetched posts are
    scored repeatedly.  The naive figure clears the shared analysis
    cache before every evaluation (the seed behaviour: every pass
    re-tokenizes and re-scores); the engine figure pays the analysis
    once and reuses the per-fingerprint memo on later passes.
    """
    load = workload or fleet_workload()
    client = InMemoryClient(load.corpus)
    computer = SAIComputer(client)
    rounds = 5

    posts_by_keyword = client.search_many(
        BatchQuery(keywords=load.keywords)
    ).posts_by_keyword

    start = time.perf_counter()
    naive_lists = []
    for _ in range(rounds):
        analyze_text.cache_clear()
        naive_lists.append(
            computer.compute_from_posts(load.database, posts_by_keyword)
        )
    naive_s = time.perf_counter() - start

    analyze_text.cache_clear()
    start = time.perf_counter()
    warm_lists = [
        computer.compute_from_posts(load.database, posts_by_keyword)
        for _ in range(rounds)
    ]
    engine_s = time.perf_counter() - start

    equivalent = all(
        left.as_rows() == right.as_rows()
        for left, right in zip(naive_lists, warm_lists)
    )
    return BenchResult(
        name="sentiment_memo",
        workload={**load.dimensions(), "rounds": rounds},
        naive_seconds=naive_s,
        engine_seconds=engine_s,
        equivalent=equivalent,
        extra={},
    )


# -- compiled-model batch TARA vs N+1 monolith engine runs -------------------


def legacy_tara_run(
    network: VehicleNetwork,
    *,
    table: Optional[WeightTable] = None,
    insider_table: Optional[WeightTable] = None,
    risk_matrix: Optional[RiskMatrix] = None,
    policy: Optional[TreatmentPolicy] = None,
    impact_overrides: Optional[Dict[str, ImpactProfile]] = None,
    extra_threats: Sequence[ThreatScenario] = (),
) -> TaraReportData:
    """The seed-era TARA monolith, replicated faithfully.

    Re-derives assets, STRIDE threats and impact per run, and — the
    expensive part — re-enumerates attack paths through the
    :class:`~repro.vehicle.attack_surface.AttackSurfaceAnalyzer` for
    **every threat**, exactly as the pre-split ``TaraEngine.run`` did.
    This is the naive reference the batch scorer must match
    record-for-record (property-tested in
    ``tests/properties/test_tara_batch_equivalence.py``).
    """
    outsider = table if table is not None else standard_table()
    insider = insider_table if insider_table is not None else outsider
    matrix = risk_matrix if risk_matrix is not None else default_matrix()
    treatment_policy = policy or TreatmentPolicy()
    overrides = dict(impact_overrides or {})
    analyzer = AttackSurfaceAnalyzer(network, table=outsider)
    insider_analyzer = AttackSurfaceAnalyzer(network, table=insider)

    assets = identify_assets(network)
    threats = list(enumerate_threats(network, assets))
    threats.extend(extra_threats)

    records = []
    for threat in threats:
        impact = rate_impact(network, threat, overrides)
        active_table = insider if threat.is_owner_approved else outsider
        active_analyzer = (
            insider_analyzer if threat.is_owner_approved else analyzer
        )
        ecu_id = threat.asset_id.split(".")[0]
        all_paths = active_analyzer.paths_to(ecu_id, threat_id=threat.threat_id)
        paths = [
            p for p in all_paths if p.entry_vector in threat.attack_vectors
        ]
        aggregated = threat_feasibility(paths)
        if aggregated is None:
            best_vector = max(
                threat.attack_vectors,
                key=lambda v: (active_table.rating(v).level, v.reach),
            )
            feasibility = active_table.rating(best_vector)
            entry_vector: Optional[AttackVector] = best_vector
        else:
            feasibility = aggregated
            best_path = max(
                paths, key=lambda p: (p.feasibility.level, -p.length)
            )
            entry_vector = best_path.entry_vector
        risk = matrix.risk_value(impact.overall, feasibility)
        cal = (
            determine_cal(impact.overall, entry_vector)
            if entry_vector is not None
            else CAL.NONE
        )
        records.append(
            TaraRecord(
                threat=threat,
                impact=impact,
                feasibility=feasibility,
                entry_vector=entry_vector,
                risk_value=risk,
                cal=cal,
                treatment=treatment_policy.decide(risk, impact),
                paths=tuple(paths),
            )
        )
    return TaraReportData(table_source=outsider.source, records=tuple(records))


#: Fleet-rescoring acceptance workload: 10 tuned members + 1 baseline.
N_FLEET_TABLES = 10


def fleet_insider_tables(n: int = N_FLEET_TABLES) -> Tuple[WeightTable, ...]:
    """``n`` deterministic, pairwise-distinct insider weight tables.

    Member ``i``'s rating at vector position ``p`` is the ``p``-th
    base-4 digit of ``i`` shifted by ``p`` — distinct ``i`` give
    distinct digit vectors, so every member has a distinct table
    fingerprint and none resolves for free from another's scorer memo.
    """
    if not 1 <= n <= 256:
        raise ValueError(f"n must be in 1..256 for distinct tables, got {n}")
    vectors = (
        AttackVector.NETWORK,
        AttackVector.ADJACENT,
        AttackVector.LOCAL,
        AttackVector.PHYSICAL,
    )
    tables = []
    for i in range(n):
        ratings = {
            vector: FeasibilityRating.from_level(((i >> (2 * position)) + position) % 4)
            for position, vector in enumerate(vectors)
        }
        tables.append(
            WeightTable(ratings, source="psp", note=f"fleet member {i}")
        )
    return tuple(tables)


def tara_fleet_network(domains: int = 6, ecus_per_domain: int = 8) -> VehicleNetwork:
    """The synthetic architecture the TARA fleet workload scores."""
    return scaled_architecture(domains=domains, ecus_per_domain=ecus_per_domain)


def naive_fleet_tara_pass(
    network: VehicleNetwork, tables: Sequence[WeightTable]
) -> List[TaraReportData]:
    """The seed fleet path: one full monolith run per table, plus baseline."""
    reports = [legacy_tara_run(network)]
    reports.extend(
        legacy_tara_run(network, insider_table=table) for table in tables
    )
    return reports


def batch_fleet_tara_pass(
    network: VehicleNetwork, tables: Sequence[WeightTable]
) -> List[TaraReportData]:
    """The engine path: compile once, score the whole fleet in one sweep."""
    scorer = BatchTaraScorer(compile_threat_model(network))
    specs = [TableSpec(label="__static__")]
    specs.extend(
        TableSpec(label=f"member:{i}", insider_table=table)
        for i, table in enumerate(tables)
    )
    return list(scorer.score_many(specs).values())


def _tara_reports_equal(
    left: Sequence[TaraReportData], right: Sequence[TaraReportData]
) -> bool:
    if len(left) != len(right):
        return False
    return all(
        a.table_source == b.table_source and a.records == b.records
        for a, b in zip(left, right)
    )


def run_tara_batch_bench(
    network: Optional[VehicleNetwork] = None,
    tables: Optional[Sequence[WeightTable]] = None,
) -> BenchResult:
    """Time N+1 monolith TARA runs against the compiled batch scorer.

    The compile cache is cleared before the engine side so its timing
    includes building the compiled model from scratch — the measured
    win is compile-once-score-many, not a warm cache.
    """
    net = network if network is not None else tara_fleet_network()
    fleet_tables = tuple(tables) if tables is not None else fleet_insider_tables()

    start = time.perf_counter()
    naive = naive_fleet_tara_pass(net, fleet_tables)
    naive_s = time.perf_counter() - start

    clear_compile_cache()
    start = time.perf_counter()
    batched = batch_fleet_tara_pass(net, fleet_tables)
    engine_s = time.perf_counter() - start

    return BenchResult(
        name="tara_batch",
        workload={
            "ecus": len(net.ecus),
            "threats": len(naive[0].records),
            "tables": len(fleet_tables) + 1,
        },
        naive_seconds=naive_s,
        engine_seconds=engine_s,
        equivalent=_tara_reports_equal(naive, batched),
        extra={
            "paths": compile_threat_model(net).path_count,
            "reports": len(batched),
        },
    )


# -- streaming tick vs full rebuild + full pipeline re-run -------------------


def rebuild_and_rerun_pass(
    posts: Sequence[Post],
    database: KeywordDatabase,
    target,
    window: TimeWindow,
):
    """The batch path a naive "new posts arrived" reaction pays.

    Rebuild the corpus and its inverted index from scratch over the full
    union, then re-run the whole query→sai→split→tune pipeline — exactly
    what the pre-stream :class:`~repro.core.monitor.PSPMonitor` did per
    tick.  Returns ``(sai, insider_table)``.
    """
    from repro.core.config import PSPConfig
    from repro.core.pipeline import PipelineContext, PSPPipeline

    corpus = Corpus(posts)
    client = InMemoryClient(corpus)
    context = PipelineContext(
        client=client,
        target=target,
        database=database,
        config=PSPConfig(),
        window=window,
    )
    PSPPipeline.default(learn=False).run(context)
    return context.sai, context.tuning.insider_table


def run_stream_bench(
    workload: Optional[BenchWorkload] = None,
    *,
    tick_posts: int = 150,
) -> BenchResult:
    """Time one streaming tick against full rebuild + pipeline re-run.

    Both sides react to the same event: ``tick_posts`` new posts arrive
    on top of an already-analysed corpus.  The naive side rebuilds the
    corpus + index from scratch and re-runs the full batch pipeline
    (the pre-stream monitor's grow-window behaviour).  The engine side
    feeds the micro-batch through a warm
    :class:`~repro.stream.runtime.StreamRuntime` tick — index append,
    dirty-keyword SAI update, conditional retune.  Equivalence checks
    that the streamed index answers every keyword post-for-post like a
    from-scratch rebuild and that the streamed insider table/SAI match
    the batch pipeline's.
    """
    from repro.core.config import TargetApplication
    from repro.stream.feed import SyntheticFeed
    from repro.stream.runtime import StreamRuntime

    # A deeper history than the batch workloads: the rebuild cost the
    # tick avoids grows with the corpus, the tick itself does not.
    load = workload or fleet_workload(years=tuple(range(2012, 2024)))
    posts = sorted(
        load.corpus.posts, key=lambda p: (p.created_at, p.post_id)
    )
    if not 0 < tick_posts < len(posts):
        raise ValueError(f"tick_posts must be in 1..{len(posts) - 1}")
    head, tail = posts[:-tick_posts], posts[-tick_posts:]
    target = TargetApplication("fleet_member", "europe", "fleet")
    window = TimeWindow.full_history()

    from repro.obs.registry import MetricsRegistry

    # Warm-up (untimed): the runtime has ingested the historical head.
    # The runtime is fully instrumented so the bench record carries a
    # telemetry snapshot (stage latencies included) next to peak_rss_kb.
    feed = SyntheticFeed(posts)
    metrics = MetricsRegistry()
    runtime = StreamRuntime(
        feed, load.database, target=target, metrics=metrics
    )
    runtime.ingest(feed.events_after(-1, limit=len(head)))

    start = time.perf_counter()
    tick = runtime.ingest(feed.events_after(runtime.cursor))
    engine_s = time.perf_counter() - start

    start = time.perf_counter()
    naive_sai, naive_table = rebuild_and_rerun_pass(
        posts, load.database, target, window
    )
    naive_s = time.perf_counter() - start

    streamed_result = runtime.current_result
    tables_equal = (
        tick.retuned
        and streamed_result is not None
        and streamed_result.insider_table.as_rows() == naive_table.as_rows()
    )
    sai_equal = (
        streamed_result is not None
        and streamed_result.sai.as_rows() == naive_sai.as_rows()
    )
    rebuilt_index = CorpusIndex(posts)
    streamed = runtime.index.search_many(load.keywords)
    rebuilt = rebuilt_index.search_many(load.keywords)
    index_equal = all(
        [p.post_id for p in streamed[k]] == [p.post_id for p in rebuilt[k]]
        for k in load.keywords
    )

    return BenchResult(
        name="stream",
        workload={**load.dimensions(), "tick_posts": tick_posts},
        naive_seconds=naive_s,
        engine_seconds=engine_s,
        equivalent=tables_equal and sai_equal and index_equal,
        extra={
            "dirty_keywords": len(tick.dirty),
            "retuned": tick.retuned,
            "segments": runtime.index.segment_stats,
            "stats": {
                k: v
                for k, v in runtime.stream_stats.items()
                if k != "index"
            },
            "metrics": metrics.snapshot(),
        },
    )


# -- sharded merged tick vs sequential per-feed single-runtime ticks ---------

#: Shard-bench acceptance workload: 4 feeds, quarterly arrival rounds.
N_SHARDS = 4
SHARD_ROUNDS = 4


def run_shard_bench(
    workload: Optional[BenchWorkload] = None,
    *,
    shards: int = N_SHARDS,
    rounds: int = SHARD_ROUNDS,
) -> BenchResult:
    """Time N-feed arrival rounds: merged sharded ticks vs per-feed ticks.

    The continuous multi-feed workload: ``shards`` region/platform feeds
    each deliver a micro-batch per arrival round on top of an
    already-analysed history.  The pre-sharding reaction consumes the
    arrivals through one :class:`~repro.stream.runtime.StreamRuntime`,
    one tick *per shard batch* — every batch pays its own dirty-SAI
    probe pass plus a full conditional retune (and TARA rescore when the
    table shifts).  The sharded runtime ingests the same batches as one
    merged tick per round: per-shard arena-sweep delta jobs (parallel
    across shards on multi-core hosts), a pure-sum merge, and **one**
    shared evaluation per round regardless of shard count.

    Equivalence is checked at matching evaluation points: a fresh
    single-feed run and a fresh sharded run advanced year by year over
    the whole feed must emit identical alerts (years, rating changes,
    TARA records) and finish on identical insider tables and SAI rows.

    ``extra.scaling_fixed_shard_volume`` records the merged-tick cost at
    1/2/4/8 shards with per-shard volume held constant — the flatness
    claim sharding makes as feeds are added (on multi-core hardware the
    executor additionally spreads the per-shard jobs; this box's CPU
    count is recorded alongside).
    """
    import datetime as dt

    from repro.core.config import TargetApplication
    from repro.core.executor import available_cpus, resolve_executor
    from repro.stream.feed import SyntheticFeed
    from repro.stream.runtime import StreamRuntime
    from repro.stream.sharding import (
        ShardedStreamRuntime,
        partition_posts,
        shard_feeds,
    )
    from repro.vehicle import reference_architecture

    if rounds < 1 or 12 % rounds != 0:
        raise ValueError(
            f"rounds must divide the 12 bench months evenly, got {rounds}"
        )
    load = workload or fleet_workload(years=tuple(range(2012, 2024)))
    posts = sorted(load.corpus.posts, key=lambda p: (p.created_at, p.post_id))
    target = TargetApplication("fleet_member", "europe", "fleet")
    network = reference_architecture()
    last_year = max(p.created_at.year for p in posts)

    # Arrival rounds: the last year's traffic lands in `rounds` equal
    # date slices; each round every shard contributes its micro-batch.
    month_step = 12 // rounds
    round_ends = [
        dt.date(last_year, month, _month_end(last_year, month))
        for month in range(month_step, 13, month_step)
    ]

    # -- naive side: one single runtime, one tick per shard batch ------------
    analyze_text.cache_clear()
    single_feed = SyntheticFeed(posts)
    single = StreamRuntime(
        single_feed, load.database, target=target, network=network
    )
    single.advance_to(dt.date(last_year - 1, 12, 31))
    tail_events = single_feed.events_after(single.cursor)
    shard_of = {
        post.post_id: index
        for index, partition in enumerate(partition_posts(posts, shards))
        for post in partition
    }
    naive_batches = []
    previous = dt.date(last_year - 1, 12, 31)
    for round_end in round_ends:
        for shard in range(shards):
            batch = tuple(
                event
                for event in tail_events
                if previous < event.created_at <= round_end
                and shard_of[event.post.post_id] == shard
            )
            if batch:
                naive_batches.append(batch)
        previous = round_end
    for event in tail_events:  # warm text analyses off the clock
        analyze_text(event.post.text)
    start = time.perf_counter()
    for batch in naive_batches:
        single.ingest(batch)
    naive_s = time.perf_counter() - start
    naive_evaluations = len(naive_batches)

    # -- engine side: one sharded runtime, one merged tick per round ---------
    # Threads, not processes, for the timed side: process workers would
    # re-run the text analyses the naive side has warm in-process (cold
    # pickling + analysis inside the timed region), making the gate
    # hardware-dependent.  Threads share the warm memo, so the measured
    # win is the structural one — arena sweeps plus one evaluation per
    # round — on any box; process-pool wall-clock scaling is a
    # deployment choice on top (extra.executor records what ran).
    analyze_text.cache_clear()
    sharded = ShardedStreamRuntime(
        shard_feeds(posts, shards),
        load.database,
        target=target,
        network=network,
        executor=resolve_executor(shards, prefer="thread"),
    )
    sharded.advance_to(dt.date(last_year - 1, 12, 31))
    for event in tail_events:
        analyze_text(event.post.text)
    start = time.perf_counter()
    for round_end in round_ends:
        sharded.advance_to(round_end)
    engine_s = time.perf_counter() - start
    engine_stats = sharded.stream_stats
    sharded.close()

    # -- equivalence: year-by-year parity with the single-feed run -----------
    equivalent = _sharded_run_equivalent(posts, load, target, network, shards)

    # -- scaling: merged tick cost at fixed per-shard volume -----------------
    scaling = _shard_scaling_curve(load, posts, target, network)

    return BenchResult(
        name="shard",
        workload={
            **load.dimensions(),
            "shards": shards,
            "rounds": len(round_ends),
            "tick_posts": len(tail_events),
        },
        naive_seconds=naive_s,
        engine_seconds=engine_s,
        equivalent=equivalent,
        extra={
            "cpus": available_cpus(),
            "executor": engine_stats["executor"],
            "naive_evaluations": naive_evaluations,
            "engine_evaluations": len(round_ends),
            "scaling_fixed_shard_volume": scaling,
        },
    )


def _month_end(year: int, month: int) -> int:
    """The last day of one month."""
    import calendar

    return calendar.monthrange(year, month)[1]


def _sharded_run_equivalent(posts, load, target, network, shards) -> bool:
    """Year-by-year alert/table/TARA/SAI parity, sharded vs single feed."""
    import datetime as dt

    from repro.stream.feed import SyntheticFeed
    from repro.stream.runtime import StreamRuntime
    from repro.stream.sharding import ShardedStreamRuntime, shard_feeds

    years = sorted({p.created_at.year for p in posts})
    single = StreamRuntime(
        SyntheticFeed(posts), load.database, target=target, network=network
    )
    sharded = ShardedStreamRuntime(
        shard_feeds(posts, shards), load.database, target=target, network=network
    )
    for year in years:
        single.advance_to(dt.date(year, 12, 31), upto_year=year)
        sharded.advance_to(dt.date(year, 12, 31), upto_year=year)
    alerts_equal = [
        (alert.upto_year, alert.changes) for alert in single.alerts
    ] == [(alert.upto_year, alert.changes) for alert in sharded.alerts]
    taras_equal = all(
        (a.tara is None) == (b.tara is None)
        and (a.tara is None or a.tara.records == b.tara.records)
        for a, b in zip(single.alerts, sharded.alerts)
    )
    tables_equal = (
        single.current_table is not None
        and sharded.current_table is not None
        and single.current_table.as_rows() == sharded.current_table.as_rows()
    )
    sai_equal = (
        single.current_result.sai.as_rows()
        == sharded.current_result.sai.as_rows()
    )
    return alerts_equal and taras_equal and tables_equal and sai_equal


#: Per-shard micro-batch size of the scaling measurement.
_SCALING_SHARD_POSTS = 24


def _shard_scaling_curve(load, posts, target, network):
    """Merged-tick seconds at 1/2/4/8 shards, fixed per-shard volume."""
    import datetime as dt

    from repro.stream.sharding import ShardedStreamRuntime, shard_feeds

    last_year = max(p.created_at.year for p in posts)
    head = [p for p in posts if p.created_at.year < last_year]
    tail = [p for p in posts if p.created_at.year == last_year]
    curve = {}
    for shards in (1, 2, 4, 8):
        volume = min(shards * _SCALING_SHARD_POSTS, len(tail))
        subset = head + tail[:volume]
        runtime = ShardedStreamRuntime(
            shard_feeds(subset, shards),
            load.database,
            target=target,
            network=network,
        )
        runtime.advance_to(dt.date(last_year - 1, 12, 31))
        start = time.perf_counter()
        runtime.advance_to(dt.date(last_year, 12, 31))
        curve[str(shards)] = round(time.perf_counter() - start, 4)
        runtime.close()
    return curve


# -- columnar arena ingest vs per-object delta-segment append ----------------

#: S9 workload profiles: engine-side ingest volume, the naive-side
#: measured sample, and the append micro-batch size.  ``full`` is the
#: acceptance workload (a 1M+-post synthetic stream); ``smoke`` is the
#: CI profile — same kernels, same equivalence and RSS checks, a
#: fraction of the wall time.
S9_PROFILES: Dict[str, Dict[str, int]] = {
    "full": {
        "engine_posts": 1_048_576,
        "naive_posts": 131_072,
        "batch_posts": 1024,
    },
    "smoke": {
        "engine_posts": 131_072,
        "naive_posts": 32_768,
        "batch_posts": 1024,
    },
}

#: Engine-phase peak-RSS budget (KB) per profile.  The full profile
#: holds 1M+ posts of columns, arena, postings and id set; the budget
#: gives roughly 2x headroom over the observed footprint so allocator
#: and platform variance does not flake the gate.
S9_RSS_BUDGET_KB: Dict[str, int] = {
    "full": 2_400_000,
    "smoke": 800_000,
}

#: Distinct post texts in the synthetic stream.  Deliberately below the
#: ``analyze_text`` memo capacity (32768) so the *naive* side re-serves
#: warm analyses during its compaction rebuilds — the measured win is
#: then the structural one (array concatenation vs O(corpus) per-object
#: re-index), not memo thrash the legacy path would additionally pay at
#: real scale.
_S9_DISTINCT_TEXTS = 24_576

_S9_TOPICS = (
    "dpf delete kit for the fleet",
    "egr removal remap no fault codes",
    "adblue off emulator install",
    "stage2 chip tuning session",
    "routine telematics mileage log",
    "dealer service inspection note",
)
_S9_TAGS = ("#dpfdelete", "#egroff", "#stage2", "#fleetops")
_S9_REGIONS = ("europe", "america", "asia")
_S9_START_ORDINAL = 737060  # 2019-01-01
_S9_POSTS_PER_DAY = 2048

_S9_KEYWORDS = (
    "dpf delete",
    "#dpfdelete",
    "egr removal",
    "stage2",
    "adblue off",
    "emulator",
    "unit00042",
    "nomatchzz",
)


def _s9_text_pool(distinct_texts: int) -> List[str]:
    """Deterministic pool of distinct post texts (keyword-bearing)."""
    topics, tags = _S9_TOPICS, _S9_TAGS
    return [
        f"{topics[i % len(topics)]} unit{i:05d} {tags[i % len(tags)]}"
        for i in range(distinct_texts)
    ]


def _s9_batches(
    n_posts: int,
    batch_posts: int,
    pool: Sequence[str],
    *,
    posts_per_day: int = _S9_POSTS_PER_DAY,
):
    """A deterministic date-ordered synthetic stream, yielded batch-wise.

    Arithmetic only — no RNG — so both bench sides and every rerun see
    the identical stream.  Yielding batches keeps at most one batch of
    ``Post`` objects alive outside the index under test, so the peak-RSS
    sample reflects the index, not the generator.
    """
    import datetime as dt

    from repro.social.post import Engagement

    regions = _S9_REGIONS
    n_pool = len(pool)
    for start in range(0, n_posts, batch_posts):
        batch = []
        for i in range(start, min(start + batch_posts, n_posts)):
            batch.append(
                Post(
                    post_id=f"s9{i:08d}",
                    text=pool[i % n_pool],
                    author=f"user{i % 311}",
                    created_at=dt.date.fromordinal(
                        _S9_START_ORDINAL + i // posts_per_day
                    ),
                    region=regions[i % 3],
                    engagement=Engagement(
                        views=(i * 7) % 4096,
                        likes=(i * 3) % 512,
                        reposts=i % 65,
                        replies=i % 23,
                    ),
                )
            )
        yield batch


def _s9_timed_ingest(index, n_posts, batch_posts, pool) -> float:
    """Seconds spent inside ``index.append`` (generation untimed)."""
    elapsed = 0.0
    for batch in _s9_batches(n_posts, batch_posts, pool):
        start = time.perf_counter()
        index.append(batch)
        elapsed += time.perf_counter() - start
    return elapsed


#: Equivalence-check sample: small enough to be untimed noise, large
#: enough for >= 2 compactions on both sides at the check threshold.
_S9_EQUIVALENCE_POSTS = 3000


def _s9_equivalent(pool) -> bool:
    """Columnar vs legacy parity on an out-of-order streamed sample.

    Both indexes ingest the same strided (strongly out-of-order)
    arrival in uneven chunks across multiple compactions, then must
    agree post-for-post on windowed batch searches and on the global
    post order.
    """
    import datetime as dt

    from repro.analysis._legacy_index import LegacyStreamingCorpusIndex
    from repro.stream.index import StreamingCorpusIndex

    posts = [
        post
        for batch in _s9_batches(
            _S9_EQUIVALENCE_POSTS, 500, pool, posts_per_day=97
        )
        for post in batch
    ]
    arrival = posts[0::3] + posts[1::3] + posts[2::3]
    engine = StreamingCorpusIndex(compact_threshold=700)
    legacy = LegacyStreamingCorpusIndex(compact_threshold=700)
    for start in range(0, len(arrival), 257):
        chunk = arrival[start : start + 257]
        engine.append(chunk)
        legacy.append(chunk)
    windows = (
        (None, None),
        (dt.date(2019, 1, 5), dt.date(2019, 1, 20)),
        (dt.date(2019, 1, 25), None),
    )
    for since, until in windows:
        got = engine.search_many(_S9_KEYWORDS, since=since, until=until)
        want = legacy.search_many(_S9_KEYWORDS, since=since, until=until)
        for keyword in _S9_KEYWORDS:
            if [p.post_id for p in got[keyword]] != [
                p.post_id for p in want[keyword]
            ]:
                return False
    return [p.post_id for p in engine.posts] == [
        p.post_id for p in legacy.posts
    ]


def run_columnar_bench(profile: str = "full") -> BenchResult:
    """Time columnar arena ingest against the per-object append path.

    Both sides consume the identical deterministic synthetic stream in
    date-ordered micro-batches; only the time inside ``append`` is on
    the clock.  The engine side is the columnar
    :class:`~repro.stream.index.StreamingCorpusIndex` under a geometric
    compaction policy (ratio 0.5, no fixed threshold), so its total
    compaction work is O(posts) array concatenation.  The naive side is
    the frozen pre-columnar replica
    (:mod:`repro.analysis._legacy_index`) under its original default
    policy — a fixed 1024-post threshold whose every compaction rebuilds
    per-post objects and dict postings over the whole corpus, O(N^2 /
    threshold) overall.

    The naive side is therefore measured on a smaller sample and scaled
    to the engine volume at its *measured per-post rate* — a linear
    extrapolation that understates the legacy path's true superlinear
    cost, so the reported speedup is a floor.  ``speedup`` is exactly
    the ingest-throughput ratio (posts/second, engine over naive).

    The engine ingests first so the engine-phase ``ru_maxrss`` sample is
    an upper bound on the columnar footprint (the counter is a
    process-lifetime maximum); the budget verdict lands in
    ``extra.rss_within_budget``.  Equivalence is checked untimed on an
    out-of-order streamed sample spanning multiple compactions.
    """
    from repro.analysis._legacy_index import (
        LEGACY_COMPACT_THRESHOLD,
        LegacyStreamingCorpusIndex,
    )
    from repro.analysis.benchjson import peak_rss_kb
    from repro.stream.index import StreamingCorpusIndex

    if profile not in S9_PROFILES:
        raise ValueError(
            f"profile must be one of {sorted(S9_PROFILES)}, got {profile!r}"
        )
    dims = S9_PROFILES[profile]
    engine_posts = dims["engine_posts"]
    naive_posts = dims["naive_posts"]
    batch_posts = dims["batch_posts"]
    pool = _s9_text_pool(_S9_DISTINCT_TEXTS)

    engine = StreamingCorpusIndex(
        compact_threshold=1 << 30, compact_ratio=0.5
    )
    engine_s = _s9_timed_ingest(engine, engine_posts, batch_posts, pool)
    engine_rss = peak_rss_kb()
    engine_segments = engine.segment_stats

    # The engine phase left the analyze_text memo warm for the shared
    # text pool, so the naive side starts with every analysis served
    # from cache — another conservative tilt in its favour.
    naive = LegacyStreamingCorpusIndex()
    naive_measured_s = _s9_timed_ingest(naive, naive_posts, batch_posts, pool)
    naive_segments = naive.segment_stats

    scale = engine_posts / naive_posts
    naive_s = naive_measured_s * scale

    budget_kb = S9_RSS_BUDGET_KB[profile]
    return BenchResult(
        name="columnar",
        workload={
            "posts": engine_posts,
            "naive_posts": naive_posts,
            "batch_posts": batch_posts,
            "distinct_texts": len(pool),
            "profile": profile,
        },
        naive_seconds=naive_s,
        engine_seconds=engine_s,
        equivalent=_s9_equivalent(pool),
        extra={
            "profile": profile,
            "naive_measured_seconds": round(naive_measured_s, 4),
            "naive_extrapolation": (
                "linear per-post rate from the measured sample; the legacy "
                f"path compacts every {LEGACY_COMPACT_THRESHOLD} posts with "
                "a full O(corpus) per-object rebuild, so its true cost at "
                "the engine volume is superlinear and this figure "
                "understates it"
            ),
            "engine_posts_per_second": (
                round(engine_posts / engine_s) if engine_s > 0 else None
            ),
            "naive_posts_per_second": (
                round(naive_posts / naive_measured_s)
                if naive_measured_s > 0
                else None
            ),
            "peak_rss_kb_engine_phase": engine_rss,
            "peak_rss_budget_kb": budget_kb,
            "rss_within_budget": (
                engine_rss is not None and engine_rss <= budget_kb
            ),
            "engine_segments": engine_segments,
            "naive_segments": naive_segments,
        },
    )


# -- tiered retention vs single-tier flat index ------------------------------

#: S10 workload profiles: a multi-year sharded stream replayed twice —
#: once on the tiered (hot/warm/cold) index, once on the single-tier
#: PR-7 configuration — comparing *steady-state tick latency* and peak
#: RSS.  ``full`` is the acceptance workload (5 years); ``smoke`` is the
#: CI profile — same kernels, same equivalence checks, a fraction of
#: the wall time.
S10_PROFILES: Dict[str, Dict[str, int]] = {
    "full": {
        "years": 5,
        "posts_per_day": 1024,
        "batch_posts": 256,
        "shards": 2,
        "distinct_texts": 262_144,
        "warm_span_days": 90,
        "cold_age_days": 365,
        "replay_months": 6,
    },
    "smoke": {
        "years": 2,
        "posts_per_day": 96,
        "batch_posts": 128,
        "shards": 2,
        "distinct_texts": 12_288,
        "warm_span_days": 60,
        "cold_age_days": 180,
        "replay_months": 2,
    },
}

#: Peak-RSS ratio budget (tiered phase over flat phase) per profile.
#: The counter is the process-lifetime ``ru_maxrss`` maximum and the
#: tiered phase runs first, so the ratio is exact for the tiered side
#: and conservative for the flat side (if the flat phase never exceeds
#: the tiered peak the ratio reads 1.0 and the gate fails loudly).
#: The smoke stream is too short for cold tiers to dominate the
#: footprint, so its budget is looser than the acceptance 0.5x.
S10_RSS_RATIO_BUDGET: Dict[str, float] = {
    "full": 0.5,
    "smoke": 0.9,
}

#: One in eight topics bears an attack keyword: the per-tick delta
#: compute (arena sweep + sentiment for matches) is then a minority
#: cost shared by both sides, and the measured ratio isolates the
#: structural difference — bounded per-span tier maintenance vs
#: O(corpus) single-tier compactions that grow with stream age.
_S10_TOPICS = (
    "dpf delete kit fitted for the fleet",
    "routine telematics mileage log",
    "dealer service inspection note",
    "depot fuel consumption summary",
    "tyre rotation schedule reminder",
    "driver shift handover checklist",
    "winter coolant level audit",
    "trailer brake wear measurement",
)

_S10_KEYWORDS = ("dpf delete", "egr removal", "adblue off")


def _s10_database() -> KeywordDatabase:
    database = KeywordDatabase()
    for keyword in _S10_KEYWORDS:
        database.add(
            AttackKeyword(keyword=keyword, vector=AttackVector.LOCAL)
        )
    return database


def _s10_text_pool(distinct_texts: int) -> List[str]:
    """Deterministic pool of distinct post texts (1/8 keyword-bearing)."""
    topics = _S10_TOPICS
    return [
        f"{topics[i % len(topics)]} unit{i:06d}"
        for i in range(distinct_texts)
    ]


def _s10_run_phase(
    runtime,
    *,
    n_posts: int,
    batch_posts: int,
    shards: int,
    pool: Sequence[str],
    posts_per_day: int,
) -> List[float]:
    """Push the deterministic stream through one runtime, timing ticks.

    Events are generated on the fly and handed to the push-style
    :meth:`~repro.stream.sharding.ShardedStreamRuntime.ingest`, so no
    feed retains the stream and the peak-RSS samples reflect the index
    layout under test, not a pre-materialized post list.  Text indices
    map *monotonically* onto the stream (``pool[i * n_pool // n_posts]``,
    each distinct text used for a consecutive run of posts) — the
    realistic shape for evolving chatter, and the one that lets the
    tiered side actually retire cold texts from the interner pool.
    Generation is untimed; only ``ingest`` is on the clock.
    """
    import datetime as dt

    from repro.social.post import Engagement
    from repro.stream.feed import PostEvent

    regions = _S9_REGIONS
    n_pool = len(pool)
    per_tick = batch_posts * shards
    seqs = [0] * shards
    tick_seconds: List[float] = []
    for start in range(0, n_posts, per_tick):
        batches: List[List[PostEvent]] = [[] for _ in range(shards)]
        for i in range(start, min(start + per_tick, n_posts)):
            shard = i % shards
            post = Post(
                post_id=f"s10{i:08d}",
                text=pool[(i * n_pool) // n_posts],
                author=f"user{i % 311}",
                created_at=dt.date.fromordinal(
                    _S9_START_ORDINAL + i // posts_per_day
                ),
                region=regions[i % 3],
                engagement=Engagement(
                    views=(i * 7) % 4096,
                    likes=(i * 3) % 512,
                    reposts=i % 65,
                    replies=i % 23,
                ),
            )
            batches[shard].append(PostEvent(seq=seqs[shard], post=post))
            seqs[shard] += 1
        begin = time.perf_counter()
        runtime.ingest(batches)
        tick_seconds.append(time.perf_counter() - begin)
    return tick_seconds


def _s10_steady_seconds(tick_seconds: Sequence[float]) -> float:
    """Mean per-tick latency over the final 20% of ticks.

    By then the flat side's corpus — and with it each compaction — has
    reached its full-stream size, while the tiered side has settled
    into its bounded hot/warm working set; the tail mean is the
    steady-state cost an always-on monitor actually pays.
    """
    window = max(1, len(tick_seconds) // 5)
    tail = tick_seconds[-window:]
    return sum(tail) / len(tail)


def _s10_alert_keys(runtime) -> List[tuple]:
    return [
        (
            alert.upto_year,
            alert.changes,
            alert.result.insider_table.as_rows(),
        )
        for alert in runtime.alerts
    ]


def run_retention_bench(profile: str = "full") -> BenchResult:
    """Time tiered steady-state ticks against the single-tier index.

    Both phases drive the identical deterministic multi-year stream
    through a :class:`~repro.stream.sharding.ShardedStreamRuntime` —
    first on the tiered hot/warm/cold index (retention knobs set),
    then on the single-tier PR-7 configuration (flat columnar index,
    default compaction policy).  ``naive_seconds`` /
    ``engine_seconds`` are the *steady-state per-tick latency means*
    (final 20% of ticks), so ``speedup`` is the flat-over-tiered
    latency ratio: the factor by which tier decay shrinks the
    always-on monitor's tick cost once the corpus has aged.

    The tiered phase runs first: ``ru_maxrss`` is a process-lifetime
    maximum, so its snapshot is an exact tiered ceiling and the flat
    phase can only push the counter higher.  ``extra.rss_ratio``
    (tiered peak over flat peak) must come in under the profile's
    budget — 0.5x on the acceptance profile.

    Equivalence is twofold: the two phases — identical stream,
    identical database — must raise identical alert sequences and
    finish on the identical SAI table, and a tiered sharded
    ``replay_scenario`` audit must hold parity (plus checkpoint
    resume and bounded memory) against the paper's batch monitor.
    """
    import gc

    from repro.analysis.benchjson import peak_rss_kb
    from repro.core.config import TargetApplication
    from repro.core.executor import resolve_executor
    from repro.stream.feed import SyntheticFeed
    from repro.stream.replay import replay_scenario
    from repro.stream.sharding import ShardedStreamRuntime

    if profile not in S10_PROFILES:
        raise ValueError(
            f"profile must be one of {sorted(S10_PROFILES)}, got {profile!r}"
        )
    dims = S10_PROFILES[profile]
    n_posts = dims["years"] * 365 * dims["posts_per_day"]
    shards = dims["shards"]
    pool = _s10_text_pool(dims["distinct_texts"])
    target = TargetApplication("fleet", "europe", "stream")

    def _phase(**index_knobs):
        analyze_text.cache_clear()
        runtime = ShardedStreamRuntime(
            [SyntheticFeed(()) for _ in range(shards)],
            _s10_database(),
            target=target,
            since_year=2019,
            batch_size=dims["batch_posts"],
            executor=resolve_executor(shards, prefer="thread"),
            **index_knobs,
        )
        ticks = _s10_run_phase(
            runtime,
            n_posts=n_posts,
            batch_posts=dims["batch_posts"],
            shards=shards,
            pool=pool,
            posts_per_day=dims["posts_per_day"],
        )
        result = runtime.current_result
        summary = {
            "ticks": ticks,
            "alerts": _s10_alert_keys(runtime),
            "table": result.sai.as_rows() if result is not None else None,
            "segments": runtime.stream_stats["shard_stats"][0]["index"],
        }
        runtime.close()
        return summary

    tiered = _phase(
        warm_span_days=dims["warm_span_days"],
        cold_age_days=dims["cold_age_days"],
    )
    tiered_rss = peak_rss_kb()
    gc.collect()

    flat = _phase()
    flat_rss = peak_rss_kb()

    engine_s = _s10_steady_seconds(tiered["ticks"])
    naive_s = _s10_steady_seconds(flat["ticks"])
    phases_agree = (
        tiered["alerts"] == flat["alerts"]
        and tiered["table"] == flat["table"]
        and tiered["table"] is not None
    )
    replay = replay_scenario(
        "excavator",
        months=dims["replay_months"],
        shards=2,
        warm_span_days=dims["warm_span_days"],
        cold_age_days=dims["cold_age_days"],
    )

    rss_ratio = (
        tiered_rss / flat_rss
        if tiered_rss is not None and flat_rss
        else None
    )
    budget = S10_RSS_RATIO_BUDGET[profile]
    return BenchResult(
        name="retention",
        workload={
            "posts": n_posts,
            "years": dims["years"],
            "posts_per_day": dims["posts_per_day"],
            "batch_posts": dims["batch_posts"],
            "shards": shards,
            "distinct_texts": len(pool),
            "warm_span_days": dims["warm_span_days"],
            "cold_age_days": dims["cold_age_days"],
            "profile": profile,
        },
        naive_seconds=naive_s,
        engine_seconds=engine_s,
        equivalent=phases_agree and replay.ok,
        extra={
            "profile": profile,
            "semantics": (
                "naive/engine seconds are steady-state per-tick latency "
                "means over the final 20% of ticks (flat single-tier vs "
                "tiered); speedup is their ratio"
            ),
            "ticks": len(tiered["ticks"]),
            "steady_ticks": max(1, len(tiered["ticks"]) // 5),
            "tiered_total_seconds": round(sum(tiered["ticks"]), 4),
            "flat_total_seconds": round(sum(flat["ticks"]), 4),
            "peak_rss_kb_tiered_phase": tiered_rss,
            "peak_rss_kb_flat_phase": flat_rss,
            "rss_ratio": (
                round(rss_ratio, 4) if rss_ratio is not None else None
            ),
            "rss_ratio_budget": budget,
            "rss_within_budget": (
                rss_ratio is not None and rss_ratio <= budget
            ),
            "phase_alert_parity": phases_agree,
            "replay_scenario": "excavator",
            "replay_ok": replay.ok,
            "tiered_segments": tiered["segments"],
            "flat_segments": flat["segments"],
        },
    )


# -- cold-segment spill-to-disk vs fully resident tiers ----------------------

#: S12 workload profiles: the S10 multi-year sharded stream shape
#: replayed twice on the *tiered* index — once with cold segments
#: spilled to a disk store (bounded hydration cache), once fully
#: resident — comparing peak RSS and steady-state tick latency.
#: Unlike S10's pooled texts (which the arena interner dedupes until
#: cold columns cost almost nothing resident), every S12 post carries
#: a *distinct* ``text_chars``-sized text — the realistic chatter
#: shape, and the one where a decade-scale resident corpus actually
#: pays memory for posts it never re-reads.  ``full`` is the
#: acceptance workload (the 5-year S10 corpus dimensions); ``smoke``
#: is the CI profile.
S12_PROFILES: Dict[str, Dict[str, int]] = {
    "full": {
        "years": 5,
        "posts_per_day": 1024,
        "batch_posts": 256,
        "shards": 2,
        "text_chars": 360,
        "warm_span_days": 15,
        "cold_age_days": 120,
        "max_resident_cold": 4,
        "replay_months": 6,
    },
    "smoke": {
        "years": 2,
        "posts_per_day": 384,
        "batch_posts": 256,
        "shards": 2,
        "text_chars": 160,
        "warm_span_days": 60,
        "cold_age_days": 180,
        "max_resident_cold": 2,
        "replay_months": 2,
    },
}

#: Peak-RSS ratio budget (spilled phase over resident phase) per
#: profile.  Each phase runs in its own subprocess, so the two
#: ``ru_maxrss`` readings are independent standalone peaks — neither
#: inherits the other's allocator arenas nor its cumulative-maximum
#: counter.  The acceptance 0.5x claim lives on the full profile,
#: whose ~1.7M distinct-text cold posts (a tight 15-day warm span
#: ages out after 120 days, so almost the whole 5-year corpus is
#: cold) dominate the resident footprint; the smoke stream's cold
#: columns are small next to the
#: interpreter+NLP-memo baseline shared by both phases, so its budget
#: only guards the direction (spilling must never *cost* memory).
S12_RSS_RATIO_BUDGET: Dict[str, float] = {
    "full": 0.5,
    "smoke": 0.98,
}

#: Steady-state latency budget per profile: the spilled phase's steady
#: tick mean may exceed the resident phase's by at most this factor —
#: spilling happens once per cold seal and queries ride sidecars, so
#: the monitoring loop must not feel the disk.  Both phases run in
#: fresh subprocesses, so neither benefits from the other's warmed
#: allocator or branch caches.  The acceptance 10% bound is the full
#: profile's, whose 3650-tick tail averages out scheduler noise; the
#: smoke tail is ~100 ticks and a single cold-seal spill landing
#: inside it swings the mean, so its budget is wide enough to only
#: catch systematic per-tick regressions.
S12_LATENCY_RATIO_BUDGET: Dict[str, float] = {
    "full": 1.10,
    "smoke": 1.50,
}


def _s12_post_text(i: int, text_chars: int) -> str:
    """Post ``i``'s distinct text, padded to ``text_chars`` characters.

    The unique ``unit%07d`` token makes every post's text distinct (so
    resident cold columns pay for every post, like real chatter); the
    filler sentence is shared vocabulary, keeping the NLP token space —
    and with it the per-tick analysis cost — comparable across posts.
    """
    topics = _S10_TOPICS
    stem = f"{topics[i % len(topics)]} unit{i:07d} "
    filler = (
        "field report from the workshop floor logged for the audit "
        "trail with torque specs and harness pinouts attached "
    )
    if len(stem) >= text_chars:
        return stem[:text_chars]
    need = text_chars - len(stem)
    body = (filler * (need // len(filler) + 1))[:need]
    return stem + body


def _s12_run_phase(
    runtime,
    *,
    n_posts: int,
    batch_posts: int,
    shards: int,
    posts_per_day: int,
    text_chars: int,
) -> List[float]:
    """Push the distinct-text S12 stream through one runtime.

    Same push-style shape as :func:`_s10_run_phase`, but each post's
    text is synthesized inline — nothing outside the index retains a
    reference, so the phase's peak RSS reflects what the index layout
    keeps, not a pre-materialized text pool.  Generation is untimed;
    only ``ingest`` is on the clock.
    """
    import datetime as dt

    from repro.social.post import Engagement
    from repro.stream.feed import PostEvent

    regions = _S9_REGIONS
    per_tick = batch_posts * shards
    seqs = [0] * shards
    tick_seconds: List[float] = []
    for start in range(0, n_posts, per_tick):
        batches: List[List[PostEvent]] = [[] for _ in range(shards)]
        for i in range(start, min(start + per_tick, n_posts)):
            shard = i % shards
            post = Post(
                post_id=f"s12{i:08d}",
                text=_s12_post_text(i, text_chars),
                author=f"user{i % 311}",
                created_at=dt.date.fromordinal(
                    _S9_START_ORDINAL + i // posts_per_day
                ),
                region=regions[i % 3],
                engagement=Engagement(
                    views=(i * 7) % 4096,
                    likes=(i * 3) % 512,
                    reposts=i % 65,
                    replies=i % 23,
                ),
            )
            batches[shard].append(PostEvent(seq=seqs[shard], post=post))
            seqs[shard] += 1
        begin = time.perf_counter()
        runtime.ingest(batches)
        tick_seconds.append(time.perf_counter() - begin)
    return tick_seconds


def _s12_phase_main(config_path: str) -> None:
    """Subprocess entry point: run one S12 phase, write a JSON summary.

    The config file carries the profile dimensions plus ``spill_dir``
    (``null`` for the resident phase) and ``out`` (where to write the
    result).  Running each phase in its own interpreter makes the two
    ``ru_maxrss`` readings independent standalone peaks — in a shared
    process the second phase reuses the first's allocator arenas and
    inherits its cumulative maximum, understating the resident cost.
    """
    import json as json_mod
    from pathlib import Path

    from repro.analysis.benchjson import peak_rss_kb
    from repro.core.config import TargetApplication
    from repro.core.executor import resolve_executor
    from repro.stream.feed import SyntheticFeed
    from repro.stream.sharding import ShardedStreamRuntime

    config = json_mod.loads(Path(config_path).read_text())
    dims = config["dims"]
    shards = dims["shards"]
    n_posts = dims["years"] * 365 * dims["posts_per_day"]
    index_knobs = {}
    if config.get("spill_dir"):
        index_knobs["spill_dir"] = config["spill_dir"]
        index_knobs["max_resident_cold"] = dims["max_resident_cold"]
    runtime = ShardedStreamRuntime(
        [SyntheticFeed(()) for _ in range(shards)],
        _s10_database(),
        target=TargetApplication("fleet", "europe", "stream"),
        since_year=2019,
        batch_size=dims["batch_posts"],
        executor=resolve_executor(shards, prefer="thread"),
        warm_span_days=dims["warm_span_days"],
        cold_age_days=dims["cold_age_days"],
        **index_knobs,
    )
    ticks = _s12_run_phase(
        runtime,
        n_posts=n_posts,
        batch_posts=dims["batch_posts"],
        shards=shards,
        posts_per_day=dims["posts_per_day"],
        text_chars=dims["text_chars"],
    )
    result = runtime.current_result
    store = runtime.store
    summary = {
        "ticks": ticks,
        "alerts": _s10_alert_keys(runtime),
        "table": result.sai.as_rows() if result is not None else None,
        "segments": runtime.stream_stats["shard_stats"][0]["index"],
        "store": dict(store.stats) if store is not None else None,
        "peak_rss_kb": peak_rss_kb(),
    }
    runtime.close()
    Path(config["out"]).write_text(json_mod.dumps(summary))


#: ``python -c`` bootstrap for S12 phase subprocesses: argv[1] is the
#: src root to import from, argv[2] the phase config file.
_S12_BOOTSTRAP = (
    "import sys; sys.path.insert(0, sys.argv[1]); "
    "from repro.analysis.benchkit import _s12_phase_main; "
    "_s12_phase_main(sys.argv[2])"
)


def run_spill_bench(profile: str = "full") -> BenchResult:
    """Time spilled-to-disk cold tiers against fully resident ones.

    Both phases drive the identical deterministic distinct-text stream
    through a tiered :class:`~repro.stream.sharding.ShardedStreamRuntime`
    — one with a :class:`~repro.stream.store.SegmentStore` attached
    (cold seals spill their columns to disk, a small LRU keeps at most
    ``max_resident_cold`` segments hydrated), one fully resident.
    Each phase runs in its own subprocess so its peak RSS and tick
    latencies are standalone measurements (see :func:`_s12_phase_main`).
    ``naive_seconds`` / ``engine_seconds`` are the steady-state
    per-tick latency means of the spilled and resident phases, so
    ``speedup`` hovers at ~1.0x by design; the gates are
    ``extra.rss_ratio`` (spilled peak over resident peak, under the
    profile budget — 0.5x on acceptance) and ``extra.latency_ratio``
    (spilled-over-resident steady tick mean, within
    :data:`S12_LATENCY_RATIO_BUDGET`).

    Equivalence is bit-level: both phases must raise identical alert
    sequences and finish on the identical SAI table, and a spilled
    sharded ``replay_scenario`` audit (checkpoint save/restore against
    the same store) must hold parity against the paper's batch monitor.
    ``extra.store_bytes`` / ``extra.hydrations`` ride next to
    ``extra.peak_rss_kb`` so ``run_benches.py --check`` can flag store
    blow-ups exactly like RSS ones.
    """
    import json as json_mod
    import subprocess
    import sys as sys_mod
    import tempfile
    from pathlib import Path

    from repro.stream.replay import replay_scenario

    if profile not in S12_PROFILES:
        raise ValueError(
            f"profile must be one of {sorted(S12_PROFILES)}, got {profile!r}"
        )
    dims = S12_PROFILES[profile]
    n_posts = dims["years"] * 365 * dims["posts_per_day"]
    shards = dims["shards"]
    src_root = str(Path(__file__).resolve().parents[2])

    def _phase(work_dir: Path, name: str, spill_dir) -> Dict[str, object]:
        config_path = work_dir / f"{name}.json"
        out_path = work_dir / f"{name}-result.json"
        config_path.write_text(
            json_mod.dumps(
                {
                    "dims": dims,
                    "spill_dir": str(spill_dir) if spill_dir else None,
                    "out": str(out_path),
                }
            )
        )
        proc = subprocess.run(
            [sys_mod.executable, "-c", _S12_BOOTSTRAP, src_root,
             str(config_path)],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0 or not out_path.is_file():
            raise RuntimeError(
                f"S12 {name} phase subprocess failed "
                f"(exit {proc.returncode}):\n{proc.stderr[-4000:]}"
            )
        return json_mod.loads(out_path.read_text())

    with tempfile.TemporaryDirectory(prefix="s12-") as work:
        work_dir = Path(work)
        spill_dir = work_dir / "store"
        spilled = _phase(work_dir, "spilled", spill_dir)
        resident = _phase(work_dir, "resident", None)
    spilled_rss = spilled["peak_rss_kb"]
    resident_rss = resident["peak_rss_kb"]

    spilled_s = _s10_steady_seconds(spilled["ticks"])
    resident_s = _s10_steady_seconds(resident["ticks"])
    phases_agree = (
        spilled["alerts"] == resident["alerts"]
        and spilled["table"] == resident["table"]
        and spilled["table"] is not None
    )
    with tempfile.TemporaryDirectory(prefix="s12-replay-") as replay_dir:
        replay = replay_scenario(
            "excavator",
            months=dims["replay_months"],
            shards=2,
            warm_span_days=dims["warm_span_days"],
            cold_age_days=dims["cold_age_days"],
            spill_dir=replay_dir,
            max_resident_cold=dims["max_resident_cold"],
        )

    rss_ratio = (
        spilled_rss / resident_rss
        if spilled_rss is not None and resident_rss
        else None
    )
    latency_ratio = spilled_s / resident_s if resident_s > 0 else None
    rss_budget = S12_RSS_RATIO_BUDGET[profile]
    latency_budget = S12_LATENCY_RATIO_BUDGET[profile]
    store_stats = spilled["store"] or {}
    return BenchResult(
        name="spill",
        workload={
            "posts": n_posts,
            "years": dims["years"],
            "posts_per_day": dims["posts_per_day"],
            "batch_posts": dims["batch_posts"],
            "shards": shards,
            "distinct_texts": n_posts,
            "text_chars": dims["text_chars"],
            "warm_span_days": dims["warm_span_days"],
            "cold_age_days": dims["cold_age_days"],
            "max_resident_cold": dims["max_resident_cold"],
            "profile": profile,
        },
        naive_seconds=spilled_s,
        engine_seconds=resident_s,
        equivalent=phases_agree and replay.ok,
        extra={
            "profile": profile,
            "semantics": (
                "naive/engine seconds are steady-state per-tick latency "
                "means over the final 20% of ticks (spilled vs resident "
                "tiers); speedup ~1.0x by design, the gates are "
                "rss_ratio and latency_ratio"
            ),
            "ticks": len(spilled["ticks"]),
            "steady_ticks": max(1, len(spilled["ticks"]) // 5),
            "spilled_total_seconds": round(sum(spilled["ticks"]), 4),
            "resident_total_seconds": round(sum(resident["ticks"]), 4),
            "peak_rss_kb_spilled_phase": spilled_rss,
            "peak_rss_kb_resident_phase": resident_rss,
            "rss_ratio": (
                round(rss_ratio, 4) if rss_ratio is not None else None
            ),
            "rss_ratio_budget": rss_budget,
            "rss_within_budget": (
                rss_ratio is not None and rss_ratio <= rss_budget
            ),
            "latency_ratio": (
                round(latency_ratio, 4) if latency_ratio is not None else None
            ),
            "latency_ratio_budget": latency_budget,
            "latency_within_budget": (
                latency_ratio is not None and latency_ratio <= latency_budget
            ),
            "store_bytes": store_stats.get("bytes"),
            "store_segments": store_stats.get("segments"),
            "spills": store_stats.get("spills"),
            "hydrations": store_stats.get("hydrations"),
            "cache_hits": store_stats.get("cache_hits"),
            "cache_evictions": store_stats.get("cache_evictions"),
            "phase_alert_parity": phases_agree,
            "replay_scenario": "excavator",
            "replay_ok": replay.ok,
            "spilled_segments": spilled["segments"],
            "resident_segments": resident["segments"],
        },
    )


# -- telemetry overhead: instrumented vs NullRegistry ticks ------------------

#: Acceptance gate: a fully-enabled metrics registry (counters, gauges,
#: histograms *and* span tracing on every tick stage) may cost at most
#: this much extra tick latency over the NullRegistry default path.
OBS_OVERHEAD_BUDGET_PCT = 3.0


def run_obs_overhead_bench(
    workload: Optional[BenchWorkload] = None,
    *,
    rounds: int = 9,
    batch_size: int = 200,
) -> BenchResult:
    """Time a full instrumented stream run against the NullRegistry path.

    The telemetry layer's whole contract is "free when off, cheap when
    on": the default :class:`~repro.obs.registry.NullRegistry` path must
    cost nothing, and a live :class:`~repro.obs.registry.MetricsRegistry`
    with span tracing on every tick stage must stay within
    :data:`OBS_OVERHEAD_BUDGET_PCT` of it.  Both sides consume the
    identical fleet-scale feed through identical runtimes; rounds are
    interleaved (null, instrumented, null, …) and each side reports its
    **minimum** total wall time so scheduler noise cancels instead of
    accumulating.  ``naive_seconds`` is the instrumented side, so the
    reported ``speedup`` reads as "instrumented-over-null cost ratio"
    and hovers at ~1.0x; the gate is ``extra.overhead_pct``.

    Equivalence checks the instrumentation is purely observational:
    identical final insider tables, SAI rows and legacy ``stream_stats``
    counters on both sides — and the registry's own counters must agree
    with the legacy dict it mirrors.
    """
    from repro.core.config import TargetApplication
    from repro.obs.registry import MetricsRegistry
    from repro.stream.feed import SyntheticFeed
    from repro.stream.runtime import StreamRuntime

    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    load = workload or fleet_workload()
    posts = sorted(
        load.corpus.posts, key=lambda p: (p.created_at, p.post_id)
    )
    target = TargetApplication("fleet_member", "europe", "fleet")

    def _run(metrics):
        # The NLP memo stays warm across rounds (the untimed warm-up
        # fills it): re-analysing identical texts per round would let
        # the cache-miss pass's variance swamp the few-microsecond
        # instrumentation cost this bench exists to measure.
        runtime = StreamRuntime(
            SyntheticFeed(posts),
            load.database,
            target=target,
            batch_size=batch_size,
            metrics=metrics,
        )
        start = time.perf_counter()
        for _ in runtime.run():
            pass
        elapsed = time.perf_counter() - start
        result = runtime.current_result
        stats = runtime.stream_stats
        return elapsed, {
            "table": (
                result.insider_table.as_rows() if result is not None else None
            ),
            "sai": result.sai.as_rows() if result is not None else None,
            "counters": {
                k: stats[k]
                for k in ("ticks", "posts_ingested", "retunes", "alerts")
            },
        }

    # Untimed warm-up round: both sides start from warm code paths.
    _run(None)
    null_times: List[float] = []
    instr_times: List[float] = []
    null_summary = instr_summary = None
    registry: Optional[MetricsRegistry] = None
    for _ in range(rounds):
        elapsed, null_summary = _run(None)
        null_times.append(elapsed)
        registry = MetricsRegistry()
        elapsed, instr_summary = _run(registry)
        instr_times.append(elapsed)

    engine_s = min(null_times)
    naive_s = min(instr_times)
    overhead_pct = (naive_s / engine_s - 1.0) * 100.0 if engine_s else 0.0
    assert registry is not None and instr_summary is not None
    collected = registry.collect()
    registry_agrees = (
        collected["psp_ticks_total"].value()
        == instr_summary["counters"]["ticks"]
        and collected["psp_posts_ingested_total"].value()
        == instr_summary["counters"]["posts_ingested"]
        and collected["psp_alerts_total"].value()
        == instr_summary["counters"]["alerts"]
    )
    return BenchResult(
        name="obs_overhead",
        workload={
            **load.dimensions(),
            "batch_size": batch_size,
            "rounds": rounds,
        },
        naive_seconds=naive_s,
        engine_seconds=engine_s,
        equivalent=null_summary == instr_summary and registry_agrees,
        extra={
            "semantics": (
                "naive is the instrumented run, engine the NullRegistry "
                "run; speedup ~1.0x by design, the gate is overhead_pct"
            ),
            "overhead_pct": round(overhead_pct, 2),
            "overhead_budget_pct": OBS_OVERHEAD_BUDGET_PCT,
            "within_budget": overhead_pct <= OBS_OVERHEAD_BUDGET_PCT,
            "null_seconds_per_round": [round(t, 4) for t in null_times],
            "instrumented_seconds_per_round": [
                round(t, 4) for t in instr_times
            ],
            "registry_matches_legacy_stats": registry_agrees,
            "metrics": registry.snapshot(),
        },
    )


#: Registry used by ``benchmarks/run_benches.py``.
BENCH_RUNNERS: Dict[str, Callable[[], BenchResult]] = {
    "indexed_corpus": run_indexed_corpus_bench,
    "batch_engine": run_batch_engine_bench,
    "sentiment_memo": run_sentiment_memo_bench,
    "tara_batch": run_tara_batch_bench,
    "stream": run_stream_bench,
    "shard": run_shard_bench,
    "columnar": run_columnar_bench,
    "retention": run_retention_bench,
    "spill": run_spill_bench,
    "obs_overhead": run_obs_overhead_bench,
}

#: Benches whose runner accepts a ``profile`` keyword ("full"/"smoke");
#: ``run_benches.py --smoke`` switches these to their smoke profile.
PROFILED_BENCHES = frozenset({"columnar", "retention", "spill"})
