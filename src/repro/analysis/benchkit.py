"""Reusable benchmark kernels behind the ``BENCH_*.json`` harness.

Each ``run_*_bench`` function times a naive (seed-era) path against the
current engine on the fleet-scale acceptance workload, checks the two
paths produce identical results, and returns a
:class:`~repro.analysis.benchjson.BenchResult` ready to be written as
``BENCH_<name>.json``.  The kernels are shared by the pytest benches
under ``benchmarks/`` (which assert the speedup gates) and by the
standalone ``benchmarks/run_benches.py`` runner (which emits the JSON
trajectory in CI).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.benchjson import BenchResult
from repro.core.cache import CachedClient, TTLCache
from repro.core.keywords import AttackKeyword, KeywordDatabase
from repro.core.sai import SAIComputer, SAIList
from repro.core.timewindow import TimeWindow
from repro.iso21434.enums import AttackVector
from repro.nlp.analysis import analyze_text
from repro.nlp.normalize import canonical_keyword, keyword_in_text
from repro.social.api import BatchQuery, InMemoryClient, SearchQuery
from repro.social.corpus import Corpus
from repro.social.post import Post
from repro.social.synthetic import AttackTopicSpec, generate_corpus

#: Fleet-scale acceptance workload: >= 50 keywords over the monitor's
#: growing-window cadence (5 overlapping windows, 4-8 years each).
N_KEYWORDS = 56
YEARS = tuple(range(2016, 2024))
WINDOW_LAST_YEARS = tuple(range(2019, 2024))

_VECTORS = (
    AttackVector.PHYSICAL,
    AttackVector.LOCAL,
    AttackVector.ADJACENT,
    AttackVector.NETWORK,
)


@dataclass(frozen=True)
class BenchWorkload:
    """One materialised benchmark workload."""

    corpus: Corpus
    database: KeywordDatabase
    windows: Tuple[TimeWindow, ...]

    @property
    def keywords(self) -> Tuple[str, ...]:
        """The database keywords, in insertion order."""
        return self.database.keywords

    def dimensions(self) -> Dict[str, int]:
        """The workload block of the BENCH json payload."""
        return {
            "keywords": len(self.database),
            "windows": len(self.windows),
            "posts": len(self.corpus),
        }


def fleet_workload_specs(
    n_keywords: int = N_KEYWORDS, years: Sequence[int] = YEARS
) -> Tuple[AttackTopicSpec, ...]:
    """Deterministic attack-topic specs for the fleet-scale workload."""
    return tuple(
        AttackTopicSpec(
            keyword=f"attacktopic{i:02d}",
            vector=_VECTORS[i % len(_VECTORS)],
            owner_approved=(i % 3 != 0),
            yearly_volume={year: 4 + (i + year) % 7 for year in years},
            engagement_scale=0.5 + (i % 5) * 0.3,
        )
        for i in range(n_keywords)
    )


def database_for_specs(specs: Sequence[AttackTopicSpec]) -> KeywordDatabase:
    """A keyword database covering every spec'd topic."""
    database = KeywordDatabase()
    for spec in specs:
        database.add(
            AttackKeyword(
                keyword=spec.keyword,
                vector=spec.vector,
                owner_approved=spec.owner_approved,
            )
        )
    return database


def fleet_workload(
    n_keywords: int = N_KEYWORDS,
    years: Sequence[int] = YEARS,
    *,
    seed: int = 21434,
) -> BenchWorkload:
    """The 56-keyword x 5-overlapping-window acceptance workload."""
    specs = fleet_workload_specs(n_keywords, years)
    windows = tuple(
        TimeWindow.years(years[0], last) for last in WINDOW_LAST_YEARS
    )
    return BenchWorkload(
        corpus=generate_corpus(specs, seed=seed),
        database=database_for_specs(specs),
        windows=windows,
    )


# -- indexed corpus engine vs the pre-index matching loop --------------------


def naive_matching_pass(
    corpus: Corpus,
    keywords: Sequence[str],
    windows: Sequence[TimeWindow],
) -> List[Dict[str, List[Post]]]:
    """The pre-index ``Corpus.matching`` loop, replicated faithfully.

    Per window: materialise the sub-corpus, build its lazy hashtag
    index, then scan linearly per keyword with the folded free-text
    matcher (:func:`~repro.nlp.normalize.keyword_in_text`) on every
    untagged post — O(keywords x posts x windows) repeated string work.
    """
    results: List[Dict[str, List[Post]]] = []
    for window in windows:
        scope = corpus.in_window(since=window.since, until=window.until)
        posts = list(scope)
        hashtag_index: Dict[str, List[Post]] = {}
        for post in posts:
            for tag in set(post.hashtags):
                hashtag_index.setdefault(tag, []).append(post)
        per_keyword: Dict[str, List[Post]] = {}
        for keyword in keywords:
            canonical = canonical_keyword(keyword)
            matched = list(hashtag_index.get(canonical, ()))
            tagged_ids = {p.post_id for p in matched}
            for post in posts:
                if post.post_id in tagged_ids:
                    continue
                if keyword_in_text(keyword, post.text):
                    matched.append(post)
            matched.sort(key=lambda p: (p.created_at, p.post_id))
            per_keyword[keyword] = matched
        results.append(per_keyword)
    return results


def indexed_matching_pass(
    corpus: Corpus,
    keywords: Sequence[str],
    windows: Sequence[TimeWindow],
) -> List[Dict[str, List[Post]]]:
    """The indexed engine: one batch sweep per bisected window."""
    return [
        corpus.search_many(keywords, since=window.since, until=window.until)
        for window in windows
    ]


def _matching_results_equal(
    left: Sequence[Dict[str, List[Post]]],
    right: Sequence[Dict[str, List[Post]]],
) -> bool:
    if len(left) != len(right):
        return False
    for per_left, per_right in zip(left, right):
        if set(per_left) != set(per_right):
            return False
        for keyword in per_left:
            ids_left = [p.post_id for p in per_left[keyword]]
            ids_right = [p.post_id for p in per_right[keyword]]
            if ids_left != ids_right:
                return False
    return True


def run_indexed_corpus_bench(
    workload: Optional[BenchWorkload] = None,
) -> BenchResult:
    """Time the pre-index matching loop against the indexed engine.

    The shared text-analysis cache is cleared before each side so both
    pay their full cold cost — the engine's timing includes building the
    inverted index from scratch.
    """
    load = workload or fleet_workload()
    keywords = load.keywords

    analyze_text.cache_clear()
    start = time.perf_counter()
    naive = naive_matching_pass(load.corpus, keywords, load.windows)
    naive_s = time.perf_counter() - start

    engine_corpus = Corpus(load.corpus.posts)
    analyze_text.cache_clear()
    start = time.perf_counter()
    indexed = indexed_matching_pass(engine_corpus, keywords, load.windows)
    engine_s = time.perf_counter() - start

    return BenchResult(
        name="indexed_corpus",
        workload=load.dimensions(),
        naive_seconds=naive_s,
        engine_seconds=engine_s,
        equivalent=_matching_results_equal(naive, indexed),
        extra={
            "distinct_index_terms": engine_corpus.index().distinct_terms,
            "matches_per_window": [
                sum(len(posts) for posts in per_keyword.values())
                for per_keyword in indexed
            ],
        },
    )


# -- batched+cached engine vs the per-keyword query path ---------------------


def sequential_sai_pass(
    client: InMemoryClient,
    database: KeywordDatabase,
    windows: Sequence[TimeWindow],
    *,
    region: str = "europe",
) -> List[SAIList]:
    """The seed path: one synchronous search per keyword per window."""
    computer = SAIComputer(client)
    results = []
    for window in windows:
        posts = {
            entry.keyword: client.search(
                SearchQuery(
                    keyword=entry.keyword,
                    since=window.since,
                    until=window.until,
                    region=region,
                )
            )
            for entry in database
        }
        results.append(computer.compute_from_posts(database, posts))
    return results


def batched_cached_sai_pass(
    client,
    database: KeywordDatabase,
    windows: Sequence[TimeWindow],
    *,
    region: str = "europe",
) -> List[SAIList]:
    """The engine path: one batched query per window over a cached client."""
    computer = SAIComputer(client)
    return [
        computer.compute(
            database, region=region, since=window.since, until=window.until
        )
        for window in windows
    ]


def run_batch_engine_bench(
    workload: Optional[BenchWorkload] = None,
) -> BenchResult:
    """Time the per-keyword query path against the batched+cached engine."""
    load = workload or fleet_workload()

    plain = InMemoryClient(Corpus(load.corpus.posts))
    start = time.perf_counter()
    sequential = sequential_sai_pass(plain, load.database, load.windows)
    naive_s = time.perf_counter() - start

    cached = CachedClient(
        InMemoryClient(Corpus(load.corpus.posts)), cache=TTLCache()
    )
    start = time.perf_counter()
    batched = batched_cached_sai_pass(cached, load.database, load.windows)
    engine_s = time.perf_counter() - start

    equivalent = all(
        left.as_rows() == right.as_rows()
        for left, right in zip(sequential, batched)
    ) and len(sequential) == len(batched)

    return BenchResult(
        name="batch_engine",
        workload=load.dimensions(),
        naive_seconds=naive_s,
        engine_seconds=engine_s,
        equivalent=equivalent,
        extra={"query_cache": cached.stats.as_dict()},
    )


# -- memoized sentiment vs re-scoring every window ---------------------------


def run_sentiment_memo_bench(
    workload: Optional[BenchWorkload] = None,
) -> BenchResult:
    """Time SAI re-evaluation with a cold vs warm sentiment memo.

    Models the ablation-sweep / fleet shape: the same fetched posts are
    scored repeatedly.  The naive figure clears the shared analysis
    cache before every evaluation (the seed behaviour: every pass
    re-tokenizes and re-scores); the engine figure pays the analysis
    once and reuses the per-fingerprint memo on later passes.
    """
    load = workload or fleet_workload()
    client = InMemoryClient(load.corpus)
    computer = SAIComputer(client)
    rounds = 5

    posts_by_keyword = client.search_many(
        BatchQuery(keywords=load.keywords)
    ).posts_by_keyword

    start = time.perf_counter()
    naive_lists = []
    for _ in range(rounds):
        analyze_text.cache_clear()
        naive_lists.append(
            computer.compute_from_posts(load.database, posts_by_keyword)
        )
    naive_s = time.perf_counter() - start

    analyze_text.cache_clear()
    start = time.perf_counter()
    warm_lists = [
        computer.compute_from_posts(load.database, posts_by_keyword)
        for _ in range(rounds)
    ]
    engine_s = time.perf_counter() - start

    equivalent = all(
        left.as_rows() == right.as_rows()
        for left, right in zip(naive_lists, warm_lists)
    )
    return BenchResult(
        name="sentiment_memo",
        workload={**load.dimensions(), "rounds": rounds},
        naive_seconds=naive_s,
        engine_seconds=engine_s,
        equivalent=equivalent,
        extra={},
    )


#: Registry used by ``benchmarks/run_benches.py``.
BENCH_RUNNERS: Dict[str, Callable[[], BenchResult]] = {
    "indexed_corpus": run_indexed_corpus_bench,
    "batch_engine": run_batch_engine_bench,
    "sentiment_memo": run_sentiment_memo_bench,
}
