"""Markdown assessment-report generation.

Produces the work product an ISO/SAE-21434 assessor would file: one
self-contained markdown document per PSP run, covering the target, the
SAI evidence, the insider/outsider split, the generated weight tables,
optional financial assessments and an optional full-vehicle TARA summary.
Used by the ``generate_assessment`` example and suitable for attaching to
a TARA record in an audit trail (ISO/PAS 5112 context).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.classification import InsiderOutsiderSplit
from repro.core.financial import FinancialAssessment
from repro.core.framework import PSPRunResult
from repro.core.sai import SAIList
from repro.iso21434.feasibility.attack_vector import WeightTable, standard_table
from repro.tara.engine import TaraReportData


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    """Render a markdown table as a list of lines."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return lines


def _weight_table_section(title: str, table: WeightTable) -> List[str]:
    lines = [f"### {title}", ""]
    lines.extend(
        _md_table(
            ("Attack vector", "Feasibility rating"),
            table.as_rows(),
        )
    )
    if table.note:
        lines.extend(["", f"*{table.note}*"])
    lines.append("")
    return lines


def _sai_section(sai: SAIList) -> List[str]:
    lines = ["## Social Attraction Index", ""]
    rows = [
        (
            str(rank),
            entry.keyword,
            f"{entry.score:.3f}",
            f"{entry.probability:.3f}",
            str(entry.post_count),
            f"{entry.mean_sentiment:+.2f}",
        )
        for rank, entry in enumerate(sai, start=1)
    ]
    lines.extend(
        _md_table(
            ("#", "Attack keyword", "Score", "Probability", "Posts", "Sentiment"),
            rows,
        )
    )
    lines.append("")
    return lines


def _split_section(split: InsiderOutsiderSplit) -> List[str]:
    lines = ["## Insider / outsider classification", ""]
    rows = []
    for classified in split.insider:
        source = "annotation" if classified.from_annotation else "text signals"
        rows.append((classified.entry.keyword, "insider", source))
    for classified in split.outsider:
        source = "annotation" if classified.from_annotation else "text signals"
        rows.append((classified.entry.keyword, "outsider", source))
    lines.extend(_md_table(("Keyword", "Class", "Decided by"), rows))
    lines.extend(
        [
            "",
            f"Insider probability mass: "
            f"{split.insider_probability_mass:.3f}",
            "",
        ]
    )
    return lines


def _financial_section(
    assessments: Sequence[FinancialAssessment],
) -> List[str]:
    lines = ["## Financial attack feasibility", ""]
    rows = [
        (
            a.keyword,
            f"{a.pae:,}",
            f"{a.ppia:,.0f}",
            f"{a.vcu:,.0f}",
            str(a.competitors),
            f"{a.mv:,.0f}",
            f"{a.fc_required:,.0f}",
            a.feasibility.label(),
        )
        for a in assessments
    ]
    lines.extend(
        _md_table(
            ("Attack", "PAE", "PPIA €", "VCU €", "n", "MV €/yr",
             "Required FC €", "Feasibility"),
            rows,
        )
    )
    lines.append("")
    return lines


def _tara_section(tara: TaraReportData, min_risk: int) -> List[str]:
    lines = [f"## TARA summary (risk ≥ {min_risk})", ""]
    records = sorted(
        (r for r in tara.records if r.risk_value >= min_risk),
        key=lambda r: (-r.risk_value, r.threat.threat_id),
    )
    rows = [
        (
            r.threat.threat_id,
            r.impact.overall.label(),
            r.feasibility.label(),
            str(r.risk_value),
            r.cal.label(),
            r.treatment.value,
        )
        for r in records
    ]
    lines.extend(
        _md_table(
            ("Threat scenario", "Impact", "Feasibility", "Risk", "CAL",
             "Treatment"),
            rows,
        )
    )
    lines.append("")
    return lines


def generate_assessment_report(
    result: PSPRunResult,
    *,
    financial: Sequence[FinancialAssessment] = (),
    tara: Optional[TaraReportData] = None,
    tara_min_risk: int = 4,
) -> str:
    """Render one PSP run (plus optional extras) as a markdown document.

    Args:
        result: the PSP run to document.
        financial: financial assessments to include.
        tara: a full-vehicle TARA to summarise, if available.
        tara_min_risk: risk threshold for the TARA summary table.
    """
    lines: List[str] = [
        "# PSP risk assessment report",
        "",
        f"- **Target:** {result.target.describe()}",
        f"- **Analysis window:** {result.window.describe()}",
        f"- **Keywords analysed:** {len(result.sai)}",
    ]
    if result.learned_keywords:
        learned = ", ".join(k.keyword for k in result.learned_keywords)
        lines.append(f"- **Auto-learned keywords:** {learned}")
    lines.append("")

    lines.extend(_sai_section(result.sai))
    lines.extend(_split_section(result.split))

    lines.append("## Attack-feasibility weight tables")
    lines.append("")
    lines.extend(
        _weight_table_section("Original ISO/SAE-21434 G.9", standard_table())
    )
    lines.extend(
        _weight_table_section(
            "Outsider threats (unchanged)", result.outsider_table
        )
    )
    lines.extend(
        _weight_table_section(
            "Insider threats (PSP-tuned)", result.insider_table
        )
    )

    if financial:
        lines.extend(_financial_section(financial))
    if tara is not None:
        lines.extend(_tara_section(tara, tara_min_risk))

    return "\n".join(lines).rstrip() + "\n"
