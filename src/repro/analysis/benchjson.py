"""Machine-readable benchmark records (``BENCH_<name>.json``).

Every key bench emits one JSON file so the repository's performance
trajectory becomes data instead of prose: wall times of the naive and
engine paths, the speedup, the workload dimensions and an equivalence
verdict.  The schema is documented in docs/BENCHMARKS.md and validated
by :func:`validate_payload`; CI uploads the emitted files as workflow
artifacts.
"""

from __future__ import annotations

import json
import math
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Bump when the payload layout changes incompatibly.
SCHEMA_VERSION = 1

#: Emitted file name pattern.
FILE_PATTERN = "BENCH_{name}.json"


@dataclass(frozen=True)
class BenchResult:
    """Outcome of one benchmark run: naive path vs engine path.

    Attributes:
        name: bench identifier (``indexed_corpus``, ``batch_engine``, …);
            becomes the ``BENCH_<name>.json`` file name.
        workload: workload dimensions (keywords, windows, posts, …).
        naive_seconds: wall time of the reference (pre-optimisation) path.
        engine_seconds: wall time of the optimised path.
        equivalent: whether both paths produced identical results.
        extra: bench-specific additions (cache statistics, index sizes).
    """

    name: str
    workload: Dict[str, Any]
    naive_seconds: float
    engine_seconds: float
    equivalent: bool
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"bench name must be a slug, got {self.name!r}")
        if self.naive_seconds < 0 or self.engine_seconds < 0:
            raise ValueError("wall times must be >= 0")

    @property
    def speedup(self) -> float:
        """Naive-over-engine wall-time ratio (inf for a zero-cost engine)."""
        if self.engine_seconds <= 0:
            return float("inf")
        return self.naive_seconds / self.engine_seconds

    def to_payload(self) -> Dict[str, Any]:
        """The JSON-serialisable record written to ``BENCH_<name>.json``.

        An infinite speedup (engine time below timer granularity) is
        emitted as ``null`` — ``json.dumps`` would otherwise write the
        non-standard ``Infinity`` literal and break strict consumers.
        """
        speedup = self.speedup
        return {
            "schema_version": SCHEMA_VERSION,
            "bench": self.name,
            "workload": dict(self.workload),
            "naive_seconds": round(self.naive_seconds, 4),
            "engine_seconds": round(self.engine_seconds, 4),
            "speedup": round(speedup, 2) if math.isfinite(speedup) else None,
            "equivalent": self.equivalent,
            "extra": dict(self.extra),
        }


def bench_file_path(name: str, out_dir: Union[str, Path] = ".") -> Path:
    """Where ``BENCH_<name>.json`` lives under ``out_dir``."""
    return Path(out_dir) / FILE_PATTERN.format(name=name)


def peak_rss_kb() -> Optional[int]:
    """Process-lifetime peak resident set size in KB (None if unknown).

    Reads ``getrusage(RUSAGE_SELF).ru_maxrss`` — kilobytes on Linux,
    bytes on macOS (converted here); None on platforms without the
    ``resource`` module.  The counter is monotonic over the process
    lifetime, so in a multi-bench run each record carries the peak *up
    to* its write moment; compare like-for-like (``--only`` runs) when
    per-bench precision matters.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss in bytes
        peak //= 1024
    return int(peak)


def write_bench_result(
    result: BenchResult, out_dir: Union[str, Path] = "."
) -> Path:
    """Write one bench record; returns the file path.

    The writer stamps ``extra.peak_rss_kb`` (unless the bench already
    recorded one) so every emitted record carries its memory footprint,
    whether it came from ``run_benches.py`` or a pytest gate's
    ``bench_report`` fixture.
    """
    path = bench_file_path(result.name, out_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = result.to_payload()
    rss = peak_rss_kb()
    if rss is not None:
        payload["extra"].setdefault("peak_rss_kb", rss)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


#: Required payload keys and their types, for :func:`validate_payload`.
_REQUIRED: Dict[str, Any] = {
    "schema_version": int,
    "bench": str,
    "workload": dict,
    "naive_seconds": (int, float),
    "engine_seconds": (int, float),
    "speedup": (int, float, type(None)),
    "equivalent": bool,
    "extra": dict,
}


def validate_payload(payload: Dict[str, Any]) -> List[str]:
    """Schema problems of one bench payload (empty list = valid)."""
    problems: List[str] = []
    for key, expected in _REQUIRED.items():
        if key not in payload:
            problems.append(f"missing key {key!r}")
        elif not isinstance(payload[key], expected):
            problems.append(
                f"key {key!r} has type {type(payload[key]).__name__}"
            )
    if not problems and payload["schema_version"] != SCHEMA_VERSION:
        problems.append(
            f"schema_version {payload['schema_version']} != {SCHEMA_VERSION}"
        )
    return problems


def load_bench_result(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate one ``BENCH_*.json`` file."""
    payload = json.loads(Path(path).read_text())
    problems = validate_payload(payload)
    if problems:
        raise ValueError(f"invalid bench record {path}: {problems}")
    return payload


#: A fresh speedup below ``(1 - tolerance) x committed`` is a regression.
DEFAULT_REGRESSION_TOLERANCE = 0.30


def speedup_regression(
    fresh: Dict[str, Any],
    committed: Dict[str, Any],
    *,
    tolerance: float = DEFAULT_REGRESSION_TOLERANCE,
) -> Optional[str]:
    """Whether a fresh bench run regressed against its committed record.

    Compares the speedup *ratios*, not wall times — ratios are what the
    committed records promise and they transfer across machines far
    better than absolute seconds.  Returns a human-readable description
    of the regression, or None when the fresh run holds up.  A ``null``
    (infinite) speedup on either side is not comparable and never
    flags.
    """
    if not 0.0 < tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    if fresh.get("bench") != committed.get("bench"):
        raise ValueError(
            f"bench mismatch: fresh {fresh.get('bench')!r} vs committed "
            f"{committed.get('bench')!r}"
        )
    fresh_speedup = fresh.get("speedup")
    committed_speedup = committed.get("speedup")
    if fresh_speedup is None or committed_speedup is None:
        return None
    floor = committed_speedup * (1.0 - tolerance)
    if fresh_speedup < floor:
        return (
            f"{fresh['bench']}: speedup {fresh_speedup:.2f}x fell more "
            f"than {tolerance:.0%} below the committed "
            f"{committed_speedup:.2f}x (floor {floor:.2f}x)"
        )
    return None


#: A fresh peak RSS above ``ratio x committed`` is a memory regression.
#: Loose by design — RSS depends on allocator, platform and what ran
#: earlier in the process — so only a blow-up flags, not noise.
DEFAULT_RSS_RATIO = 2.0


def rss_regression(
    fresh: Dict[str, Any],
    committed: Dict[str, Any],
    *,
    ratio: float = DEFAULT_RSS_RATIO,
) -> Optional[str]:
    """Whether a fresh run's peak RSS blew past the committed record's.

    Compares ``extra.peak_rss_kb`` on both sides.  Records missing the
    key (pre-RSS records, non-POSIX hosts) never flag.  Returns a
    human-readable description of the regression, or None.
    """
    if ratio <= 1.0:
        raise ValueError(f"ratio must be > 1, got {ratio}")
    fresh_rss = (fresh.get("extra") or {}).get("peak_rss_kb")
    committed_rss = (committed.get("extra") or {}).get("peak_rss_kb")
    if not isinstance(fresh_rss, (int, float)) or isinstance(
        fresh_rss, bool
    ):
        return None
    if not isinstance(committed_rss, (int, float)) or isinstance(
        committed_rss, bool
    ):
        return None
    if committed_rss <= 0:
        return None
    if fresh_rss > committed_rss * ratio:
        return (
            f"{fresh.get('bench')}: peak RSS {int(fresh_rss)} KB is more "
            f"than {ratio:.1f}x the committed {int(committed_rss)} KB"
        )
    return None


#: A fresh on-disk store size above ``ratio x committed`` is a spill
#: blow-up.  Same philosophy as :data:`DEFAULT_RSS_RATIO`: the segment
#: codec is deterministic, so the size should barely move between runs
#: of the same profile — only a genuine layout regression (a column
#: serialized twice, compression of the text arena lost) doubles it.
DEFAULT_STORE_RATIO = 2.0


def store_regression(
    fresh: Dict[str, Any],
    committed: Dict[str, Any],
    *,
    ratio: float = DEFAULT_STORE_RATIO,
) -> Optional[str]:
    """Whether a fresh run's on-disk store blew past the committed one.

    Compares ``extra.store_bytes`` on both sides — the
    :class:`~repro.stream.store.SegmentStore` footprint spill-capable
    benches stamp next to ``extra.peak_rss_kb``.  Records missing the
    key (non-spill benches, pre-spill records) never flag.  Returns a
    human-readable description of the regression, or None.
    """
    if ratio <= 1.0:
        raise ValueError(f"ratio must be > 1, got {ratio}")
    fresh_bytes = (fresh.get("extra") or {}).get("store_bytes")
    committed_bytes = (committed.get("extra") or {}).get("store_bytes")
    if not isinstance(fresh_bytes, (int, float)) or isinstance(
        fresh_bytes, bool
    ):
        return None
    if not isinstance(committed_bytes, (int, float)) or isinstance(
        committed_bytes, bool
    ):
        return None
    if committed_bytes <= 0:
        return None
    if fresh_bytes > committed_bytes * ratio:
        return (
            f"{fresh.get('bench')}: store size {int(fresh_bytes)} bytes is "
            f"more than {ratio:.1f}x the committed {int(committed_bytes)} "
            "bytes"
        )
    return None
