"""Frozen replica of the pre-columnar per-object index (bench reference).

The S9 columnar bench (:func:`repro.analysis.benchkit.run_columnar_bench`)
measures ingest throughput of the columnar
:class:`~repro.stream.index.StreamingCorpusIndex` against the append
path it replaced: per-post ``Post``/``PostAnalysis`` object lists, three
``dict[str, list[int]]`` posting maps rebuilt from scratch on every
compaction, and the default fixed compaction threshold.  That code no
longer exists on the live path, so this module keeps a faithful private
copy — same sort keys, same posting construction, same sweep semantics,
same compaction policy — solely as the naive side of the benchmark.

Do not import this from production code; it is deliberately the slow
path.
"""

from __future__ import annotations

import datetime as dt
from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.nlp.analysis import PostAnalysis, analyze_text
from repro.nlp.normalize import canonical_keyword
from repro.social.post import Post

#: The pre-columnar default tail size that triggered compaction.
LEGACY_COMPACT_THRESHOLD = 1024


class LegacyCorpusIndex:
    """The pre-columnar immutable index: per-post objects and dict postings."""

    def __init__(self, posts: Iterable[Post]) -> None:
        order = sorted(posts, key=lambda p: (p.created_at, p.post_id))
        self._order: Tuple[Post, ...] = tuple(order)
        self._dates: List[dt.date] = [p.created_at for p in order]
        self._analyses: List[PostAnalysis] = [
            analyze_text(p.text) for p in order
        ]
        self._haystacks: List[str] = [a.haystack for a in self._analyses]
        tag_postings: Dict[str, List[int]] = {}
        token_postings: Dict[str, List[int]] = {}
        stem_postings: Dict[str, List[int]] = {}
        for position, analysis in enumerate(self._analyses):
            for tag in analysis.hashtag_set:
                tag_postings.setdefault(tag, []).append(position)
            for word in analysis.word_set:
                token_postings.setdefault(word, []).append(position)
            for stemmed in set(analysis.stems):
                stem_postings.setdefault(stemmed, []).append(position)
        self._tag_postings = tag_postings
        self._token_postings = token_postings
        self._stem_postings = stem_postings

    def __len__(self) -> int:
        return len(self._order)

    @property
    def posts(self) -> Tuple[Post, ...]:
        return self._order

    def window_bounds(
        self,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
    ) -> Tuple[int, int]:
        lo = 0 if since is None else bisect_left(self._dates, since)
        hi = (
            len(self._dates)
            if until is None
            else bisect_right(self._dates, until)
        )
        return lo, max(lo, hi)

    def _confirmed_positions(
        self, canonical: str, lo: int, hi: int
    ) -> Set[int]:
        confirmed: Set[int] = set()
        for postings in (
            self._tag_postings,
            self._token_postings,
            self._stem_postings,
        ):
            positions = postings.get(canonical)
            if positions:
                start = bisect_left(positions, lo)
                stop = bisect_left(positions, hi)
                confirmed.update(positions[start:stop])
        return confirmed

    def search_many(
        self,
        keywords: Sequence[str],
        *,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, List[Post]]:
        lo, hi = self.window_bounds(since, until)
        groups: Dict[str, List[str]] = {}
        for keyword in dict.fromkeys(keywords):
            groups.setdefault(canonical_keyword(keyword), []).append(keyword)

        jobs: List[Tuple[str, Set[int], List[int]]] = [
            (canonical, self._confirmed_positions(canonical, lo, hi), [])
            for canonical in groups
        ]
        sweep_jobs = [job for job in jobs if job[0]]

        haystacks = self._haystacks
        for position in range(lo, hi):
            haystack = haystacks[position]
            for canonical, confirmed, matched in sweep_jobs:
                if position in confirmed or canonical in haystack:
                    matched.append(position)

        order = self._order
        results: Dict[str, List[Post]] = {}
        for canonical, confirmed, matched in jobs:
            if not canonical:
                matched = sorted(confirmed)
            if limit is not None:
                matched = matched[:limit]
            posts = [order[position] for position in matched]
            for keyword in groups[canonical]:
                results[keyword] = list(posts)
        return results

    def extended_with(self, posts: Iterable[Post]) -> "LegacyCorpusIndex":
        """Compaction primitive: full re-sort + re-index of the union."""
        return LegacyCorpusIndex(list(self._order) + list(posts))


def _merge_ordered(left: Sequence[Post], right: Sequence[Post]) -> List[Post]:
    merged: List[Post] = []
    i = j = 0
    while i < len(left) and j < len(right):
        a, b = left[i], right[j]
        if (a.created_at, a.post_id) <= (b.created_at, b.post_id):
            merged.append(a)
            i += 1
        else:
            merged.append(b)
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged


class LegacyStreamingCorpusIndex:
    """The pre-columnar delta-segment index: object lists plus dict postings."""

    def __init__(
        self,
        posts: Iterable[Post] = (),
        *,
        compact_threshold: int = LEGACY_COMPACT_THRESHOLD,
        compact_ratio: Optional[float] = None,
    ) -> None:
        self._compact_threshold = compact_threshold
        self._compact_ratio = compact_ratio
        self._base = LegacyCorpusIndex(posts)
        self._tail_posts: List[Post] = []
        self._tail_index: Optional[LegacyCorpusIndex] = None
        self._ids: Set[str] = {p.post_id for p in self._base.posts}
        self._appends = 0
        self._compactions = 0

    def append(self, posts: Iterable[Post]) -> int:
        batch = list(posts)
        seen: Set[str] = set()
        for post in batch:
            if post.post_id in self._ids or post.post_id in seen:
                raise ValueError(f"duplicate post id {post.post_id!r}")
            seen.add(post.post_id)
        if not batch:
            return 0
        self._ids.update(seen)
        self._tail_posts.extend(batch)
        self._tail_index = None
        self._appends += 1
        if self._should_compact():
            self.compact()
        return len(batch)

    def _should_compact(self) -> bool:
        tail = len(self._tail_posts)
        if tail >= self._compact_threshold:
            return True
        if self._compact_ratio is None:
            return False
        return tail >= self._compact_ratio * max(1, len(self._base))

    def compact(self) -> None:
        if not self._tail_posts:
            return
        self._base = self._base.extended_with(self._tail_posts)
        self._tail_posts = []
        self._tail_index = None
        self._compactions += 1

    def _tail(self) -> Optional[LegacyCorpusIndex]:
        if not self._tail_posts:
            return None
        if self._tail_index is None:
            self._tail_index = LegacyCorpusIndex(self._tail_posts)
        return self._tail_index

    @property
    def segment_stats(self) -> Dict[str, object]:
        return {
            "base_posts": len(self._base),
            "tail_posts": len(self._tail_posts),
            "appends": self._appends,
            "compactions": self._compactions,
        }

    def __len__(self) -> int:
        return len(self._base) + len(self._tail_posts)

    @property
    def posts(self) -> Tuple[Post, ...]:
        tail = self._tail()
        if tail is None:
            return self._base.posts
        return tuple(_merge_ordered(self._base.posts, tail.posts))

    def search_many(
        self,
        keywords: Sequence[str],
        *,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, List[Post]]:
        base_results = self._base.search_many(
            keywords, since=since, until=until
        )
        tail = self._tail()
        if tail is None:
            if limit is None:
                return base_results
            return {k: v[:limit] for k, v in base_results.items()}
        tail_results = tail.search_many(keywords, since=since, until=until)
        merged: Dict[str, List[Post]] = {}
        for keyword, base_posts in base_results.items():
            combined = _merge_ordered(base_posts, tail_results[keyword])
            merged[keyword] = (
                combined[:limit] if limit is not None else combined
            )
        return merged
