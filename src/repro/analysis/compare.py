"""Rating-comparison utilities across models and tables.

Helpers used by the E10 bench and the examples to quantify how the static
and PSP-tuned models diverge: per-domain disagreement counts, rating
deltas and agreement matrices.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.iso21434.enums import AttackVector, FeasibilityRating
from repro.iso21434.feasibility.attack_vector import WeightTable
from repro.tara.engine import RatingDisagreement
from repro.vehicle.domains import VehicleDomain


def table_delta(
    before: WeightTable, after: WeightTable
) -> Dict[AttackVector, Tuple[FeasibilityRating, FeasibilityRating]]:
    """Vectors whose rating changed, with (before, after) ratings."""
    return {
        vector: (before.rating(vector), after.rating(vector))
        for vector in before.differs_from(after)
    }


def rank_displacement(before: WeightTable, after: WeightTable) -> int:
    """Total absolute displacement of the vector ranking between tables.

    0 means the rankings are identical; the maximum for four vectors is 8
    (complete reversal).  Used by the ablation benches as a stability
    metric.
    """
    order_before = before.ranked_vectors()
    order_after = after.ranked_vectors()
    positions = {vector: i for i, vector in enumerate(order_after)}
    return sum(
        abs(i - positions[vector]) for i, vector in enumerate(order_before)
    )


@dataclass(frozen=True)
class DisagreementSummary:
    """Aggregate view of static-vs-PSP disagreements (experiment E10)."""

    total_threats: int
    disagreements: Tuple[RatingDisagreement, ...]

    @property
    def disagreement_rate(self) -> float:
        """Fraction of threats rated differently."""
        if self.total_threats == 0:
            return 0.0
        return len(self.disagreements) / self.total_threats

    def by_domain(self) -> Dict[VehicleDomain, int]:
        """Disagreement counts per vehicle domain.

        Disagreements whose asset id did not resolve to a network ECU
        (``domain is None`` — see
        :func:`repro.tara.engine.compare_runs`) are excluded; use
        :meth:`domain_unknown` to inspect them.
        """
        counter: Counter = Counter(
            d.domain for d in self.disagreements if d.domain is not None
        )
        return dict(counter)

    def domain_unknown(self) -> Tuple[RatingDisagreement, ...]:
        """Disagreements whose hosting ECU is not part of the network."""
        return tuple(d for d in self.disagreements if d.domain is None)

    def underestimated(self) -> Tuple[RatingDisagreement, ...]:
        """Threats the static model rated lower than PSP."""
        return tuple(d for d in self.disagreements if d.underestimated)

    def dominant_domain(self) -> VehicleDomain:
        """The domain with the most disagreements.

        Raises:
            ValueError: when there are no disagreements.
        """
        domains = self.by_domain()
        if not domains:
            raise ValueError("no disagreements recorded")
        return max(domains, key=lambda d: (domains[d], d.value))


def summarize_disagreements(
    total_threats: int, disagreements: Sequence[RatingDisagreement]
) -> DisagreementSummary:
    """Build a summary from a compare_runs result."""
    return DisagreementSummary(
        total_threats=total_threats, disagreements=tuple(disagreements)
    )


def agreement_matrix(
    ratings_a: Mapping[str, FeasibilityRating],
    ratings_b: Mapping[str, FeasibilityRating],
) -> Dict[Tuple[FeasibilityRating, FeasibilityRating], int]:
    """Confusion matrix between two rating assignments keyed by threat id."""
    matrix: Counter = Counter()
    for threat_id, rating_a in ratings_a.items():
        rating_b = ratings_b.get(threat_id)
        if rating_b is not None:
            matrix[(rating_a, rating_b)] += 1
    return dict(matrix)
