"""Analysis utilities: comparisons, trend cross-checks and ablation sweeps."""

from repro.analysis.compare import (
    DisagreementSummary,
    agreement_matrix,
    rank_displacement,
    summarize_disagreements,
    table_delta,
)
from repro.analysis.sweep import (
    ABLATION_WEIGHT_MIXES,
    SweepPoint,
    learning_coverage,
    ranking_stability,
    sai_weight_ablation,
    sweep,
    threshold_sensitivity,
)
from repro.analysis.reporting import generate_assessment_report
from repro.analysis.trends import (
    VectorSeries,
    crossing_year,
    incident_vector_series,
    report_confirms_inversion,
)

__all__ = [
    "ABLATION_WEIGHT_MIXES",
    "DisagreementSummary",
    "SweepPoint",
    "VectorSeries",
    "agreement_matrix",
    "crossing_year",
    "generate_assessment_report",
    "incident_vector_series",
    "learning_coverage",
    "rank_displacement",
    "ranking_stability",
    "report_confirms_inversion",
    "sai_weight_ablation",
    "summarize_disagreements",
    "sweep",
    "table_delta",
    "threshold_sensitivity",
]
