"""Analysis utilities: comparisons, trends, ablations and bench harness."""

from repro.analysis.benchjson import (
    BenchResult,
    load_bench_result,
    validate_payload,
    write_bench_result,
)
from repro.analysis.benchkit import (
    BENCH_RUNNERS,
    BenchWorkload,
    fleet_workload,
    run_batch_engine_bench,
    run_indexed_corpus_bench,
    run_sentiment_memo_bench,
)
from repro.analysis.compare import (
    DisagreementSummary,
    agreement_matrix,
    rank_displacement,
    summarize_disagreements,
    table_delta,
)
from repro.analysis.sweep import (
    ABLATION_WEIGHT_MIXES,
    SweepPoint,
    learning_coverage,
    ranking_stability,
    sai_weight_ablation,
    sweep,
    threshold_sensitivity,
)
from repro.analysis.reporting import generate_assessment_report
from repro.analysis.trends import (
    VectorSeries,
    crossing_year,
    incident_vector_series,
    report_confirms_inversion,
)

__all__ = [
    "ABLATION_WEIGHT_MIXES",
    "BENCH_RUNNERS",
    "BenchResult",
    "BenchWorkload",
    "DisagreementSummary",
    "SweepPoint",
    "VectorSeries",
    "agreement_matrix",
    "crossing_year",
    "fleet_workload",
    "generate_assessment_report",
    "incident_vector_series",
    "learning_coverage",
    "load_bench_result",
    "rank_displacement",
    "ranking_stability",
    "report_confirms_inversion",
    "run_batch_engine_bench",
    "run_indexed_corpus_bench",
    "run_sentiment_memo_bench",
    "sai_weight_ablation",
    "summarize_disagreements",
    "sweep",
    "table_delta",
    "threshold_sensitivity",
    "validate_payload",
    "write_bench_result",
]
