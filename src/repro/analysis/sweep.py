"""Parameter sweeps for the ablation studies (A1/A2 in DESIGN.md).

Generic sweep machinery plus the two concrete ablations: SAI
engagement-weight sensitivity (does the ranking move when the
views/interactions/volume mix changes?) and keyword-learning coverage
(how many attack topics does the framework see with and without the
auto-learning loop?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.config import PSPConfig, SAIWeights
from repro.core.keywords import KeywordDatabase
from repro.core.sai import SAIComputer, SAIList
from repro.social.api import BatchQuery, SocialMediaClient


@dataclass(frozen=True)
class SweepPoint:
    """One sweep observation: the parameter value and its outcome."""

    label: str
    value: object
    outcome: object


def sweep(
    values: Sequence[object],
    evaluate: Callable[[object], object],
    *,
    label: Callable[[object], str] = str,
) -> List[SweepPoint]:
    """Evaluate ``evaluate`` at every value and collect the outcomes."""
    return [
        SweepPoint(label=label(value), value=value, outcome=evaluate(value))
        for value in values
    ]


#: The weight mixes exercised by ablation A1: volume-only, views-only,
#: interactions-only, the default mix, and a flat mix.
ABLATION_WEIGHT_MIXES: Tuple[Tuple[str, SAIWeights], ...] = (
    ("default", SAIWeights()),
    ("flat", SAIWeights(views=1.0, interactions=1.0, volume=1.0)),
    ("volume-only", SAIWeights(views=0.0, interactions=0.0, volume=1.0)),
    ("views-only", SAIWeights(views=1.0, interactions=0.0, volume=0.0)),
    ("interactions-only", SAIWeights(views=0.0, interactions=1.0, volume=0.0)),
)


def sai_weight_ablation(
    client: SocialMediaClient,
    database: KeywordDatabase,
    *,
    region: str = "europe",
    mixes: Sequence[Tuple[str, SAIWeights]] = ABLATION_WEIGHT_MIXES,
) -> Dict[str, SAIList]:
    """Compute the SAI under each weight mix (ablation A1).

    The posts are identical across mixes, so they are batch-fetched once
    and re-scored per mix via
    :meth:`~repro.core.sai.SAIComputer.compute_from_posts` — one
    platform pass for the whole ablation instead of one per mix.
    """
    results = {}
    if not len(database):
        return {label: SAIList([]) for label, _ in mixes}
    batch = client.search_many(
        BatchQuery(keywords=database.keywords, region=region)
    )
    for label, weights in mixes:
        config = PSPConfig(sai_weights=weights)
        computer = SAIComputer(client, config=config)
        results[label] = computer.compute_from_posts(
            database, batch.posts_by_keyword
        )
    return results


def ranking_stability(results: Dict[str, SAIList]) -> Dict[str, float]:
    """Kendall-style pairwise ranking agreement of each mix vs 'default'.

    Returns, per mix, the fraction of keyword pairs ordered the same way
    as the default mix orders them (1.0 = identical ranking).
    """
    if "default" not in results:
        raise ValueError("results must include the 'default' mix")
    reference = results["default"].ranking()
    position = {keyword: i for i, keyword in enumerate(reference)}
    pairs = [
        (a, b)
        for i, a in enumerate(reference)
        for b in reference[i + 1:]
    ]
    agreement = {}
    for label, sai in results.items():
        order = {keyword: i for i, keyword in enumerate(sai.ranking())}
        if not pairs:
            agreement[label] = 1.0
            continue
        same = sum(
            1
            for a, b in pairs
            if (order[a] < order[b]) == (position[a] < position[b])
        )
        agreement[label] = same / len(pairs)
    return agreement


def threshold_sensitivity(
    shares: Dict,
    *,
    highs: Sequence[float] = (0.4, 0.5, 0.6),
    mediums: Sequence[float] = (0.2, 0.25, 0.3),
    lows: Sequence[float] = (0.05, 0.08, 0.1),
) -> List[SweepPoint]:
    """Sweep the weight-tuning thresholds over a fixed share vector.

    For every (high, medium, low) combination the insider table is
    regenerated from ``shares`` (an attack-vector → probability-share
    mapping); the outcome records the resulting vector ranking.  Used to
    check how sensitive a published table is to the threshold choice —
    the main free parameter PSP adds over the standard.
    """
    from repro.core.config import TuningThresholds
    from repro.core.weights import WeightTuner

    points = []
    for high in highs:
        for medium in mediums:
            for low in lows:
                if not low < medium < high:
                    continue
                thresholds = TuningThresholds(high=high, medium=medium, low=low)
                table = WeightTuner(thresholds).tune_from_shares(shares)
                points.append(
                    SweepPoint(
                        label=f"h={high} m={medium} l={low}",
                        value=thresholds,
                        outcome=table.ranked_vectors(),
                    )
                )
    return points


def learning_coverage(
    client: SocialMediaClient,
    seed_database_factory: Callable[[], KeywordDatabase],
    texts: Sequence[str],
    *,
    min_support: float = 0.05,
    max_new: int = 10,
) -> Dict[str, int]:
    """Keyword coverage with and without auto-learning (ablation A2)."""
    without = seed_database_factory()
    with_learning = seed_database_factory()
    with_learning.learn_from_texts(
        texts, min_support=min_support, max_new=max_new
    )
    return {
        "without_learning": len(without),
        "with_learning": len(with_learning),
        "learned": len(with_learning) - len(without),
    }
