"""Trend analysis over social and incident-report evidence.

Cross-checks the PSP-detected social trend against the annual-report
incident statistics — the paper's validation move: "The trend inversion
highlighted by PSP ... is confirmed by the Upstream global automotive
cybersecurity report".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.iso21434.enums import AttackVector
from repro.market.reports import AnnualReport


@dataclass(frozen=True)
class VectorSeries:
    """A per-year share series for one attack vector."""

    vector: AttackVector
    shares: Tuple[Tuple[int, float], ...]

    def share_in(self, year: int) -> Optional[float]:
        """The share in ``year`` if covered."""
        for y, share in self.shares:
            if y == year:
                return share
        return None

    @property
    def direction(self) -> float:
        """Last share minus first share (positive = rising)."""
        if len(self.shares) < 2:
            return 0.0
        return self.shares[-1][1] - self.shares[0][1]


def incident_vector_series(report: AnnualReport) -> List[VectorSeries]:
    """Per-vector incident-share series from a report's statistics."""
    years = sorted(stats.year for stats in report.incidents)
    series = []
    for vector in AttackVector:
        shares = []
        for year in years:
            stats = report.incidents_for(year)
            if stats is not None:
                shares.append((year, stats.share(vector)))
        if shares:
            series.append(VectorSeries(vector=vector, shares=tuple(shares)))
    return series


def report_confirms_inversion(
    report: AnnualReport, risen: AttackVector, fallen: AttackVector
) -> bool:
    """Whether the report's incident data shows the same rank inversion.

    True when ``risen``'s incident share is below ``fallen``'s in the
    earliest covered year and above it in the latest.
    """
    years = sorted(stats.year for stats in report.incidents)
    if len(years) < 2:
        return False
    first = report.incidents_for(years[0])
    last = report.incidents_for(years[-1])
    if first is None or last is None:
        return False
    was_below = first.share(risen) < first.share(fallen)
    now_above = last.share(risen) > last.share(fallen)
    return was_below and now_above


def crossing_year(
    report: AnnualReport, risen: AttackVector, fallen: AttackVector
) -> Optional[int]:
    """The first covered year in which ``risen``'s share exceeds ``fallen``'s."""
    for year in sorted(stats.year for stats in report.incidents):
        stats = report.incidents_for(year)
        if stats is not None and stats.share(risen) > stats.share(fallen):
            return year
    return None
