"""PSP Framework reproduction.

A production-quality reproduction of "PSP Framework: A novel risk
assessment method in compliance with ISO/SAE-21434" (Oberti et al.,
DSN 2023): a dynamic TARA model that re-tunes the standard's static
attack-feasibility weights for insider threats using social-media
evidence, plus a financial attack-feasibility model.

Quickstart::

    from repro import PSPFramework, TargetApplication, TimeWindow
    from repro.social import InMemoryClient, excavator_corpus

    client = InMemoryClient(excavator_corpus())
    psp = PSPFramework(client, TargetApplication("excavator", "europe"))
    result = psp.run(TimeWindow.full_history())
    print(result.sai.ranking()[0])          # -> 'dpfdelete'
    print(result.insider_table.as_rows())   # PSP-tuned Fig. 8-B table
    print(psp.assess_financial("dpfdelete").describe())
"""

from repro.core import (
    PSPConfig,
    PSPFramework,
    PSPRunResult,
    SAIList,
    TargetApplication,
    TimeWindow,
)
from repro.iso21434 import (
    AttackVector,
    FeasibilityRating,
    ImpactRating,
    WeightTable,
)

__version__ = "1.0.0"

__all__ = [
    "AttackVector",
    "FeasibilityRating",
    "ImpactRating",
    "PSPConfig",
    "PSPFramework",
    "PSPRunResult",
    "SAIList",
    "TargetApplication",
    "TimeWindow",
    "WeightTable",
    "__version__",
]
