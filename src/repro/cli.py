"""Command-line interface for the PSP framework.

Exposes the bundled paper scenarios so the reproduction can be driven
without writing code::

    python -m repro sai --scenario excavator
    python -m repro tune --scenario ecm --since-year 2022
    python -m repro compare --scenario ecm --split-year 2022
    python -m repro financial --scenario excavator --keyword dpfdelete
    python -m repro tara --psp
    python -m repro fleet --scenario excavator \
        --applications excavator,agricultural_tractor,light_truck
    python -m repro replay --scenario busfleet --months 24 --shards 2

Every subcommand prints the same fixed-width tables the report module
renders and exits 0 on success.  Scenarios come from the declarative
registry (:mod:`repro.social.registry`): the paper's calibrated corpora
plus the extended fleet (tractor, motorcycle, EV, marine, bus fleet,
slang-ECM) with their platform mixes and adversarial overlays.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import PSPFramework, TargetApplication, TimeWindow
from repro.core.errors import PSPError
from repro.iso21434.feasibility.attack_vector import standard_table
from repro.social import get_scenario, scenario_names
from repro.tara import (
    BatchTaraScorer,
    compare_runs,
    compile_threat_model,
    fleet_taras,
    render_financial,
    render_sai,
    render_tara,
    render_weight_table,
)
from repro.vehicle import reference_architecture

SCENARIOS = scenario_names()


def _scenario_parts(scenario: str):
    """(client, target, database) for one registered scenario."""
    spec = get_scenario(scenario)
    return spec.client(), spec.target, spec.database()


def _framework_for(scenario: str, *, cache: bool = False) -> PSPFramework:
    """Build the framework for one registered scenario."""
    client, target, database = _scenario_parts(scenario)
    return PSPFramework(client, target, database=database, cache=cache)


def _window_from(args: argparse.Namespace) -> TimeWindow:
    if getattr(args, "since_year", None):
        return TimeWindow.since_year(args.since_year)
    return TimeWindow.full_history()


def _cmd_sai(args: argparse.Namespace) -> int:
    psp = _framework_for(args.scenario)
    sai = psp.compute_sai(_window_from(args))
    print(render_sai(sai, title=f"SAI — {args.scenario}", top=args.top))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    psp = _framework_for(args.scenario)
    result = psp.run(_window_from(args), learn=False)
    print(render_weight_table(result.outsider_table, "Outsider weight table"))
    print()
    print(render_weight_table(result.insider_table, "Insider weight table (PSP)"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    psp = _framework_for(args.scenario)
    before, after, inversions = psp.compare_windows(
        TimeWindow.full_history(), TimeWindow.since_year(args.split_year)
    )
    print(render_weight_table(standard_table(), "Original G.9 table"))
    print()
    print(render_weight_table(before.insider_table, "PSP revision, full history"))
    print()
    print(
        render_weight_table(
            after.insider_table, f"PSP revision, since {args.split_year}"
        )
    )
    for inversion in inversions:
        print(f"Trend inversion: {inversion.describe()}")
    return 0


def _cmd_financial(args: argparse.Namespace) -> int:
    psp = _framework_for(args.scenario)
    assessment = psp.assess_financial(args.keyword)
    print(render_financial(assessment))
    return 0


def _cmd_tara(args: argparse.Namespace) -> int:
    # Compile the architecture once; static and PSP-tuned runs are two
    # scoring sweeps over the same compiled threat model.
    network = reference_architecture()
    scorer = BatchTaraScorer(compile_threat_model(network))
    static = scorer.score()
    if not args.psp:
        print(render_tara(static, min_risk=args.min_risk))
        return 0
    insider_table = _framework_for("ecm").run(learn=False).insider_table
    tuned = scorer.score(insider_table=insider_table)
    print(render_tara(tuned, min_risk=args.min_risk))
    disagreements = compare_runs(network, static, tuned)
    print(
        f"\n{len(disagreements)} of {len(static.records)} threat scenarios "
        "rated differently vs the static model"
    )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    psp = _framework_for(args.scenario, cache=True)
    applications = [a.strip() for a in args.applications.split(",") if a.strip()]
    if not applications:
        print("error: --applications must name at least one application",
              file=sys.stderr)
        return 2
    targets = tuple(
        TargetApplication(application, args.region, "fleet")
        for application in applications
    )
    fleet = psp.run_fleet(
        targets, window=_window_from(args), workers=args.workers
    )

    network = reference_architecture()
    report = fleet_taras(network, fleet)
    disagreements = report.disagreements(network)

    print(f"Fleet assessment — {len(fleet)} targets, "
          f"{fleet.query_passes} platform query pass(es), "
          f"window: {fleet.window.describe()}")
    header = f"{'target':<40} {'top attack':<16} {'retuned':>8} {'disagree':>9}"
    print(header)
    print("-" * len(header))
    for member in fleet:
        description = member.target.describe()
        ranking = member.sai.ranking()
        top = ranking[0] if ranking and member.sai[0].score > 0 else "-"
        retuned = len(member.tuning.changed_vectors())
        moved = len(disagreements[description])
        print(f"{description:<40} {top:<16} {retuned:>8} {moved:>9}")
    stats = psp.cache_stats
    if stats is not None:
        query = stats["query"]
        print(f"\nquery cache: {int(query['hits'])} hits / "
              f"{int(query['lookups'])} lookups "
              f"({query['hit_rate']:.0%} hit rate)")
    return 0


def _write_metrics(registry, base: str) -> None:
    """Write ``<base>.prom`` + ``<base>.json`` exports of one registry."""
    from pathlib import Path

    from repro.obs.export import prometheus_text, write_snapshot

    prom = Path(f"{base}.prom")
    prom.parent.mkdir(parents=True, exist_ok=True)
    prom.write_text(prometheus_text(registry))
    snapshot = write_snapshot(registry, f"{base}.json")
    print(f"metrics written: {prom} {snapshot}")


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.core.poisoning import PostAuthenticityFilter
    from repro.obs.registry import MetricsRegistry
    from repro.obs import views as obs_views
    from repro.stream import StreamRuntime, SyntheticFeed
    from repro.stream.sharding import ShardedStreamRuntime, shard_feeds
    from repro.vehicle import reference_architecture

    spec = get_scenario(args.scenario)
    target, database = spec.target, spec.database()
    registry = (
        MetricsRegistry() if args.stats or args.metrics_out else None
    )
    shared = dict(
        target=target,
        since_year=args.start_year,
        network=reference_architecture() if args.tara else None,
        post_filter=PostAuthenticityFilter() if args.filter else None,
        batch_size=args.batch_size,
        compact_ratio=args.compact_ratio,
        warm_span_days=args.warm_span,
        cold_age_days=args.cold_age,
        spill_dir=args.spill_dir,
        max_resident_cold=args.max_resident_cold,
        metrics=registry,
    )
    posts = spec.corpus().posts
    if args.shards > 1:
        runtime = ShardedStreamRuntime(
            shard_feeds(posts, args.shards),
            database,
            workers=args.workers,
            **shared,
        )
        print(
            f"streaming {args.scenario}: {len(posts)} posts over "
            f"{args.shards} shards ({runtime.executor.kind} executor), "
            f"micro-batches of {args.batch_size} per shard"
        )
    else:
        runtime = StreamRuntime(
            SyntheticFeed(posts), database, **shared
        )
        print(
            f"streaming {args.scenario}: {len(posts)} posts in "
            f"micro-batches of {args.batch_size}"
        )
    try:
        for tick in runtime.run():
            line = tick.describe()
            if tick.alert is not None:
                line += f" — {tick.alert.describe()}"
            print(line)
    finally:
        runtime.close()
    stats = runtime.stream_stats
    print(
        f"\n{stats['ticks']} ticks, {stats['posts_ingested']} posts ingested "
        f"({stats['posts_rejected']} rejected), {stats['retunes']} retunes, "
        f"{stats['tara_rescores']} TARA rescores, {stats['alerts']} alert(s)"
    )
    def tier_lines(segments):
        tiers = segments.get("tiers")
        if tiers is None:
            return ["  (flat index — no tiers; set --warm-span/--cold-age)"]
        hot, warm, cold = tiers["hot"], tiers["warm"], tiers["cold"]
        lines = [
            f"  hot:  {hot['posts']} posts across {hot['spans']} span(s)",
            f"  warm: {warm['posts']} posts in {warm['chunks']} chunk(s) "
            f"over {warm['spans']} span(s), {warm['arena_chars']} arena "
            f"chars, last seal @append {warm['last_seal_append']}, last "
            f"consolidation @append {warm['last_consolidation_append']}",
            f"  cold: {cold['posts']} posts in {cold['segments']} "
            f"segment(s) ({cold['spilled']} spilled), {cold['sidecars']} "
            f"sidecar(s) holding {cold['sidecar_entries']} keyword-year "
            f"entries, last seal @append {cold['last_seal_append']}",
            f"  seals: {segments['hot_seals']} hot, "
            f"{segments['consolidations']} consolidation(s), "
            f"{segments['cold_seals']} cold; interner retains "
            f"{segments['interned_texts']} texts "
            f"({segments['interner_evicted']} evicted)",
        ]
        store = segments.get("store")
        if store is not None:
            lines.append(
                f"  store: {store['segments']} segment(s), "
                f"{store['bytes']} bytes at {store['directory']}; "
                f"{store['spills']} spill(s), {store['hydrations']} "
                f"hydration(s), {store['cache_hits']} cache hit(s), "
                f"{store['cache_evictions']} eviction(s), "
                f"{store['resident']}/{store['max_resident_cold']} resident"
            )
        return lines

    if args.shards > 1:
        for shard in stats["shard_stats"]:
            segments = shard["index"]
            print(
                f"shard {shard['shard']}: {shard['posts']} posts, "
                f"index base {segments['base_posts']} + tail "
                f"{segments['tail_posts']}, {segments['compactions']} "
                "compaction(s)"
            )
            if args.stats:
                for line in tier_lines(segments):
                    print(line)
    else:
        segments = stats["index"]
        print(
            f"index segments: base {segments['base_posts']} + tail "
            f"{segments['tail_posts']} posts, {segments['compactions']} "
            "compaction(s)"
        )
        if args.stats:
            for line in tier_lines(segments):
                print(line)
    if stats.get("learned_keywords"):
        print(f"learned keywords: {', '.join(stats['learned_keywords'])}")
    if registry is not None:
        described = obs_views.describe_stages(
            obs_views.stage_latencies(registry)
        )
        if described:
            print("tick stage latencies (from the metrics registry):")
            print(described)
        if args.metrics_out:
            _write_metrics(registry, args.metrics_out)
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.social import default_registry

    for spec in default_registry():
        print(spec.describe())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import (
        json_snapshot,
        lint_prometheus,
        prometheus_text,
        stats_table,
    )
    from repro.obs.registry import MetricsRegistry
    from repro.stream import StreamRuntime, SyntheticFeed
    from repro.stream.sharding import ShardedStreamRuntime, shard_feeds

    spec = get_scenario(args.scenario)
    registry = MetricsRegistry()
    posts = spec.corpus().posts
    kwargs = dict(
        target=spec.target, batch_size=args.batch_size, metrics=registry
    )
    if args.shards > 1:
        runtime = ShardedStreamRuntime(
            shard_feeds(posts, args.shards), spec.database(), **kwargs
        )
    else:
        runtime = StreamRuntime(
            SyntheticFeed(posts), spec.database(), **kwargs
        )
    try:
        ticks = 0
        for _ in runtime.run():
            ticks += 1
            if args.follow and ticks % args.every == 0:
                print(stats_table(registry))
                print()
    finally:
        runtime.close()
    if args.format == "prometheus":
        text = prometheus_text(registry)
        print(text, end="")
        problems = lint_prometheus(text)
        if problems:
            for problem in problems:
                print(f"lint: {problem}", file=sys.stderr)
            return 1
    elif args.format == "json":
        print(json.dumps(json_snapshot(registry), indent=2, sort_keys=True))
    else:
        print(stats_table(registry))
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.obs.registry import MetricsRegistry
    from repro.stream.replay import replay_poison_defence, replay_scenario

    names = SCENARIOS if args.scenario == "all" else (args.scenario,)
    months = args.months
    if args.smoke and months is None:
        months = 2
    # One registry across every scenario in the invocation: the audit
    # counters accumulate and --metrics-out writes a single artifact.
    registry = MetricsRegistry()
    failures = 0
    for name in names:
        report = replay_scenario(
            name,
            months=months,
            shards=args.shards,
            workers=args.workers,
            warm_span_days=args.warm_span,
            cold_age_days=args.cold_age,
            spill_dir=args.spill_dir,
            max_resident_cold=args.max_resident_cold,
            metrics=registry,
        )
        print(report.describe())
        if not report.ok:
            failures += 1
        spec = get_scenario(name)
        if spec.poisoning and not args.smoke:
            defence = replay_poison_defence(name)
            print(defence.describe())
            if not defence.ok:
                failures += 1
        print()
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)
    if failures:
        print(f"error: {failures} replay audit(s) failed", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PSP framework: dynamic ISO/SAE-21434 risk assessment",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_scenario(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scenario", choices=SCENARIOS, default="excavator",
            help="bundled paper scenario (default: excavator)",
        )

    sai = subparsers.add_parser("sai", help="print the SAI ranking")
    add_scenario(sai)
    sai.add_argument("--since-year", type=int, default=None)
    sai.add_argument("--top", type=int, default=0,
                     help="limit to the top N entries (0 = all)")
    sai.set_defaults(handler=_cmd_sai)

    tune = subparsers.add_parser(
        "tune", help="print the PSP-tuned weight tables"
    )
    add_scenario(tune)
    tune.add_argument("--since-year", type=int, default=None)
    tune.set_defaults(handler=_cmd_tune)

    compare = subparsers.add_parser(
        "compare", help="compare full-history vs recent-window tables (Fig. 9)"
    )
    add_scenario(compare)
    compare.add_argument("--split-year", type=int, default=2022)
    compare.set_defaults(handler=_cmd_compare)

    financial = subparsers.add_parser(
        "financial", help="run the financial assessment (Eqs. 1-7)"
    )
    add_scenario(financial)
    financial.add_argument("--keyword", default="dpfdelete")
    financial.set_defaults(handler=_cmd_financial)

    tara = subparsers.add_parser(
        "tara", help="run a full-vehicle TARA on the Fig. 4 architecture"
    )
    tara.add_argument("--psp", action="store_true",
                      help="use the PSP-tuned insider table")
    tara.add_argument("--min-risk", type=int, default=3,
                      help="only print threats at or above this risk value")
    tara.set_defaults(handler=_cmd_tara)

    fleet = subparsers.add_parser(
        "fleet",
        help="assess a fleet of targets in one pass over a shared corpus",
    )
    add_scenario(fleet)
    fleet.add_argument(
        "--applications",
        default="excavator,agricultural_tractor,light_truck",
        help="comma-separated fleet applications "
             "(default: excavator,agricultural_tractor,light_truck)",
    )
    fleet.add_argument("--region", default="europe",
                       help="shared fleet region (default: europe)")
    fleet.add_argument("--since-year", type=int, default=None)
    fleet.add_argument(
        "--workers", type=int, default=None,
        help="thread-pool size for the per-member sai/split/tune tails "
             "(default: serial)",
    )
    fleet.set_defaults(handler=_cmd_fleet)

    stream = subparsers.add_parser(
        "stream",
        help="replay a scenario as a live feed through the streaming runtime",
    )
    add_scenario(stream)
    stream.add_argument(
        "--batch-size", type=int, default=250,
        help="posts per micro-batch (default: 250)",
    )
    stream.add_argument(
        "--start-year", type=int, default=None,
        help="lower bound of the analysis window (default: open)",
    )
    stream.add_argument(
        "--tara", action="store_true",
        help="compile the Fig. 4 architecture and re-score TARA on alerts",
    )
    stream.add_argument(
        "--filter", action="store_true",
        help="apply the post-authenticity filter per micro-batch",
    )
    stream.add_argument(
        "--shards", type=int, default=1,
        help="fan the corpus into N hash-sharded feeds with per-shard "
             "ingest and one merged evaluation per tick (default: 1)",
    )
    stream.add_argument(
        "--workers", type=int, default=None,
        help="executor parallelism for the shard ingest jobs "
             "(default: serial; degrades to serial on one CPU)",
    )
    stream.add_argument(
        "--compact-ratio", type=float, default=None,
        help="also compact the index when tail/base exceeds this ratio "
             "(default: fixed threshold only)",
    )
    stream.add_argument(
        "--warm-span", type=int, default=None, metavar="DAYS",
        help="tiered retention: seal hot posts into date-bounded warm "
             "segments of this many days (default: flat index; 90 when "
             "only --cold-age is given)",
    )
    stream.add_argument(
        "--cold-age", type=int, default=None, metavar="DAYS",
        help="tiered retention: freeze warm segments older than this "
             "many days into cold segments with aggregate sidecars "
             "(default: flat index; 365 when only --warm-span is given)",
    )
    stream.add_argument(
        "--spill-dir", default=None, metavar="DIR",
        help="spill cold segments' columns into a segment store at DIR "
             "(requires tiered retention; only sidecars stay resident)",
    )
    stream.add_argument(
        "--max-resident-cold", type=int, default=None, metavar="N",
        help="LRU bound on hydrated cold segments kept resident "
             "(default: 4; used with --spill-dir)",
    )
    stream.add_argument(
        "--stats", action="store_true",
        help="attach a metrics registry and print the per-tier segment "
             "table plus per-stage tick latencies after the run",
    )
    stream.add_argument(
        "--metrics-out", default=None, metavar="BASE",
        help="write BASE.prom (Prometheus text) and BASE.json (snapshot) "
             "after the run (implies a live registry)",
    )
    stream.set_defaults(handler=_cmd_stream)

    scenarios = subparsers.add_parser(
        "scenarios", help="list the registered scenarios"
    )
    scenarios.set_defaults(handler=_cmd_scenarios)

    stats = subparsers.add_parser(
        "stats",
        help="stream a scenario with full telemetry and export the "
             "registry (table, Prometheus text or JSON snapshot)",
    )
    add_scenario(stats)
    stats.add_argument(
        "--batch-size", type=int, default=250,
        help="posts per micro-batch (default: 250)",
    )
    stats.add_argument(
        "--shards", type=int, default=1,
        help="fan the corpus into N hash-sharded feeds (default: 1)",
    )
    stats.add_argument(
        "--format", choices=("table", "prometheus", "json"),
        default="table",
        help="final export format (default: table); 'prometheus' also "
             "lints the exposition text and fails on problems",
    )
    stats.add_argument(
        "--follow", action="store_true",
        help="re-print the live table every --every ticks during the run",
    )
    stats.add_argument(
        "--every", type=int, default=10,
        help="tick interval for --follow refreshes (default: 10)",
    )
    stats.add_argument(
        "--metrics-out", default=None, metavar="BASE",
        help="also write BASE.prom and BASE.json after the run",
    )
    stats.set_defaults(handler=_cmd_stats)

    replay = subparsers.add_parser(
        "replay",
        help="long-horizon replay audit: stream vs batch parity, "
             "checkpoint resume parity, bounded memory",
    )
    replay.add_argument(
        "--scenario", choices=SCENARIOS + ("all",), default="all",
        help="registered scenario to replay, or 'all' (default: all)",
    )
    replay.add_argument(
        "--months", type=int, default=None,
        help="number of tick boundaries to replay (default: full span)",
    )
    replay.add_argument(
        "--shards", type=int, default=2,
        help="feed shards for the streaming side (default: 2; 1 also "
             "exercises file-based delta-chain checkpoints)",
    )
    replay.add_argument(
        "--workers", type=int, default=None,
        help="executor parallelism for shard ingest (default: serial)",
    )
    replay.add_argument(
        "--warm-span", type=int, default=None, metavar="DAYS",
        help="replay on tiered indexes: warm segment span in days "
             "(default: flat index)",
    )
    replay.add_argument(
        "--cold-age", type=int, default=None, metavar="DAYS",
        help="replay on tiered indexes: cold seal age horizon in days "
             "(default: flat index)",
    )
    replay.add_argument(
        "--spill-dir", default=None, metavar="DIR",
        help="spill cold segments into a segment store at DIR during "
             "the replay (requires --warm-span/--cold-age)",
    )
    replay.add_argument(
        "--max-resident-cold", type=int, default=None, metavar="N",
        help="LRU bound on hydrated cold segments kept resident "
             "(default: 4; used with --spill-dir)",
    )
    replay.add_argument(
        "--smoke", action="store_true",
        help="fast CI mode: default --months 2 and skip the "
             "poisoning-defence audit",
    )
    replay.add_argument(
        "--metrics-out", default=None, metavar="BASE",
        help="write BASE.prom and BASE.json with the accumulated "
             "replay metrics (audit verdicts, stage latencies, feeds)",
    )
    replay.set_defaults(handler=_cmd_replay)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.handler(args)
    except (PSPError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
