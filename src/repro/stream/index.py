"""Appendable corpus index: a delta-segment over :class:`CorpusIndex`.

:class:`~repro.social.index.CorpusIndex` is immutable by design — its
date-sorted positions and inverted postings are global, so a single
appended post would shift every position after it.  Instead of patching
postings in place, :class:`StreamingCorpusIndex` uses the classic
delta-segment layout of streaming search engines:

* an immutable **base segment** (a full :class:`CorpusIndex` over a
  :class:`~repro.social.columnar.ColumnarCorpus`);
* a mutable **tail segment** — the recently appended posts, indexed
  lazily as their own small :class:`CorpusIndex` on first query;
* periodic **compaction** — when the tail outgrows
  ``compact_threshold``, base and tail merge into a new base via
  :meth:`CorpusIndex.extended_with_index`: for in-order tails every
  column concatenates at C speed and posting chunks are re-based, so
  compaction is O(tail) array work, not an O(base + tail) re-index.

All segments share one :class:`~repro.social.columnar.TextInterner`, so
a text is analyzed exactly once per index lifetime no matter how many
compactions its post survives — the bounded global ``analyze_text``
memo cannot thrash the streaming hot path.

Appending a micro-batch is O(batch); queries pay one extra (small)
segment sweep plus an ordered merge.  Query results are post-for-post
identical to a :class:`CorpusIndex` built from scratch over the same
posts — property-tested in
``tests/properties/test_stream_index_equivalence.py`` — including
out-of-order arrivals: the merge keys on ``(created_at, post_id)``, the
global sort order, not on arrival order.

The index checkpoints: :meth:`state_dict` serialises both segments as
plain columnar dicts (tail in arrival order) plus the policy and
maintenance counters, and :meth:`load_state` restores the exact
base/tail split — a resumed index reports the same
:attr:`segment_stats` and answers queries identically to one that never
stopped.
"""

from __future__ import annotations

import datetime as dt
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.obs.registry import DEFAULT_SIZE_BUCKETS, ensure_registry
from repro.social.columnar import (
    TextInterner,
    columns_to_posts,
    posts_to_columns,
)
from repro.social.index import CorpusIndex
from repro.social.post import Post
from repro.stream.deltas import (
    SignalDelta,
    compute_signal_delta,
    compute_signal_delta_columnar,
)

#: Default tail size that triggers a base+tail compaction.
DEFAULT_COMPACT_THRESHOLD = 1024


def _merge_ordered(left: Sequence[Post], right: Sequence[Post]) -> List[Post]:
    """Merge two ``(created_at, post_id)``-sorted post lists."""
    merged: List[Post] = []
    i = j = 0
    while i < len(left) and j < len(right):
        a, b = left[i], right[j]
        if (a.created_at, a.post_id) <= (b.created_at, b.post_id):
            merged.append(a)
            i += 1
        else:
            merged.append(b)
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged


class StreamingCorpusIndex:
    """An appendable index with :class:`CorpusIndex`-equivalent queries.

    Args:
        posts: initial posts (become the first base segment).
        compact_threshold: tail size at which base and tail are merged
            into a new base segment.  Small values exercise compaction;
            large values keep appends O(batch) for longer.
        compact_ratio: optional tail/base size ratio that *also*
            triggers compaction.  The fixed threshold alone lets a small
            base drag a comparatively huge tail (every query pays a
            second near-full sweep); a ratio of e.g. ``0.25`` bounds the
            tail at a quarter of the base under sustained ingest, which
            keeps the extra query cost proportional — and because each
            ratio compaction grows the base geometrically, the amortised
            append cost stays O(batch × (1 + 1/ratio)).  Whichever
            policy fires first wins; ``None`` keeps the pure-threshold
            behaviour.
        metrics: optional :class:`~repro.obs.registry.MetricsRegistry`
            recording append/compaction events and (at export time)
            per-segment size gauges; None wires the no-op path.
    """

    def __init__(
        self,
        posts: Iterable[Post] = (),
        *,
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
        compact_ratio: Optional[float] = None,
        metrics=None,
    ) -> None:
        if compact_threshold < 1:
            raise ValueError(
                f"compact_threshold must be >= 1, got {compact_threshold}"
            )
        if compact_ratio is not None and compact_ratio <= 0:
            raise ValueError(
                f"compact_ratio must be > 0, got {compact_ratio}"
            )
        self._compact_threshold = compact_threshold
        self._compact_ratio = compact_ratio
        self._interner = TextInterner()
        self._base = CorpusIndex(posts, interner=self._interner)
        self._tail_posts: List[Post] = []
        self._tail_index: Optional[CorpusIndex] = None
        self._ids: Set[str] = {p.post_id for p in self._base.posts}
        if len(self._ids) != len(self._base):
            raise ValueError("initial posts contain duplicate post ids")
        self._appends = 0
        self._compactions = 0
        self._metrics = ensure_registry(metrics)
        self._appends_total = self._metrics.counter(
            "psp_index_appends_total", "Micro-batch appends into the index"
        )
        self._compactions_total = self._metrics.counter(
            "psp_index_compactions_total", "Base+tail segment compactions"
        )
        self._compacted_hist = self._metrics.histogram(
            "psp_index_compacted_posts",
            "Tail posts folded per compaction",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        if self._metrics.enabled:
            self._metrics.add_collector(self._refresh_gauges)

    def _refresh_gauges(self) -> None:
        """Per-segment size gauges, refreshed at export/snapshot time."""
        posts_gauge = self._metrics.gauge(
            "psp_index_posts", "Posts retained per index tier",
            labelnames=("tier",),
        )
        posts_gauge.set(len(self._base), tier="base")
        posts_gauge.set(len(self._tail_posts), tier="tail")
        self._metrics.gauge(
            "psp_index_interned_texts", "Texts pinned in the interner pool"
        ).set(len(self._interner))

    # -- ingestion ----------------------------------------------------------

    def append(self, posts: Iterable[Post]) -> int:
        """Append new posts; returns how many were added.

        The append is atomic: ids are validated up front, so a
        duplicate rejects the whole batch and leaves the index exactly
        as it was.

        Raises:
            ValueError: when a post id is already present, or repeated
                within the batch (feeds must not replay posts;
                authenticity filtering happens before the index, see
                the runtime).
        """
        batch = list(posts)
        seen: Set[str] = set()
        for post in batch:
            if post.post_id in self._ids or post.post_id in seen:
                raise ValueError(f"duplicate post id {post.post_id!r}")
            seen.add(post.post_id)
        if not batch:
            return 0
        self._ids.update(seen)
        self._tail_posts.extend(batch)
        self._tail_index = None
        self._appends += 1
        self._appends_total.inc()
        if self._should_compact():
            self.compact()
        return len(batch)

    def _should_compact(self) -> bool:
        """Whether either compaction policy fires on the current tail."""
        tail = len(self._tail_posts)
        if tail >= self._compact_threshold:
            return True
        if self._compact_ratio is None:
            return False
        # max(1, base): an empty base compacts on the first append, so
        # the ratio policy governs from the very first posts onwards.
        return tail >= self._compact_ratio * max(1, len(self._base))

    def compact(self) -> None:
        """Merge the tail into the base segment (tail restarts empty)."""
        if not self._tail_posts:
            return
        self._compacted_hist.observe(len(self._tail_posts))
        self._base = self._base.extended_with_index(self._tail())
        self._tail_posts = []
        self._tail_index = None
        self._compactions += 1
        self._compactions_total.inc()

    # -- segment access -----------------------------------------------------

    def _tail(self) -> Optional[CorpusIndex]:
        """The tail segment's index, built lazily after each append."""
        if not self._tail_posts:
            return None
        if self._tail_index is None:
            self._tail_index = CorpusIndex(
                self._tail_posts, interner=self._interner
            )
        return self._tail_index

    @property
    def segment_stats(self) -> Dict[str, object]:
        """Base/tail sizes, columnar footprint, policy and counters."""
        return {
            "base_posts": len(self._base),
            "tail_posts": len(self._tail_posts),
            "appends": self._appends,
            "compactions": self._compactions,
            "compact_threshold": self._compact_threshold,
            "compact_ratio": self._compact_ratio,
            "base_arena_chars": self._base.columns.arena_chars,
            "base_distinct_terms": self._base.columns.distinct_terms,
            "interned_texts": len(self._interner),
        }

    def __len__(self) -> int:
        return len(self._base) + len(self._tail_posts)

    def __contains__(self, post_id: str) -> bool:
        return post_id in self._ids

    @property
    def posts(self) -> Tuple[Post, ...]:
        """All posts in global ``(created_at, post_id)`` order."""
        tail = self._tail()
        if tail is None:
            return self._base.posts
        return tuple(_merge_ordered(self._base.posts, tail.posts))

    @property
    def distinct_terms(self) -> int:
        """Distinct indexed terms across both segments (upper bound)."""
        tail = self._tail()
        total = self._base.distinct_terms
        if tail is not None:
            total += tail.distinct_terms
        return total

    # -- queries ------------------------------------------------------------

    def search_many(
        self,
        keywords: Sequence[str],
        *,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, List[Post]]:
        """Batch keyword search, identical to a from-scratch rebuild.

        Each segment answers with its own one-pass sweep; per keyword
        the two result lists (each already date-sorted) are merged on
        the global sort key and truncated to ``limit``.
        """
        base_results = self._base.search_many(
            keywords, since=since, until=until
        )
        tail = self._tail()
        if tail is None:
            if limit is None:
                return base_results
            return {k: v[:limit] for k, v in base_results.items()}
        tail_results = tail.search_many(keywords, since=since, until=until)
        merged: Dict[str, List[Post]] = {}
        for keyword, base_posts in base_results.items():
            combined = _merge_ordered(base_posts, tail_results[keyword])
            merged[keyword] = combined[:limit] if limit is not None else combined
        return merged

    def matching(self, keyword: str) -> List[Post]:
        """All posts matching one keyword (no window), oldest first."""
        return self.search_many((keyword,))[keyword]

    def as_corpus_index(self) -> CorpusIndex:
        """A compacted, immutable snapshot of the current state."""
        self.compact()
        return self._base

    # -- keyword backfill ---------------------------------------------------

    def retained_texts(self) -> List[str]:
        """Every retained post text (both segments), for keyword learning."""
        texts = list(self._base.columns.iter_texts())
        texts.extend(post.text for post in self._tail_posts)
        return texts

    def signal_backfill(
        self,
        keywords: Sequence[str],
        *,
        region: Optional[str] = None,
        analyzer=None,
    ) -> SignalDelta:
        """The indexed corpus's aggregate sums for ``keywords``.

        The streaming-learning backfill kernel: a
        :class:`~repro.stream.deltas.SignalDelta` with ``observed == 0``
        (the tracker already counted these posts) carrying the keywords'
        SAI bucket sums and voice votes over the *whole* retained corpus
        — votes are full-history, so the backfill must be too.  The base
        answers via the columnar kernel, the tail via the batch arena
        sweep.
        """
        merged = SignalDelta.merge(
            (
                compute_signal_delta_columnar(
                    keywords,
                    self._base.columns,
                    region=region,
                    analyzer=analyzer,
                ),
                compute_signal_delta(
                    keywords, self._tail_posts, region=region, analyzer=analyzer
                ),
            )
        )
        return SignalDelta(
            buckets=merged.buckets,
            votes=merged.votes,
            dirty=merged.dirty,
            observed=0,
        )

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-serialisable snapshot of both segments, split preserved.

        The base serialises as the columnar segment's plain column dict;
        the tail serialises the same way but in **arrival order**, so a
        restore reproduces the exact base/tail split, compaction-policy
        state and maintenance counters — :attr:`segment_stats` of a
        resumed index equals the uninterrupted one's.
        """
        return {
            "base": self._base.columns.state_dict(),
            "tail": posts_to_columns(self._tail_posts),
            "appends": self._appends,
            "compactions": self._compactions,
            "compact_threshold": self._compact_threshold,
            "compact_ratio": self._compact_ratio,
        }

    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot exactly.

        The snapshot's compaction policy is adopted wholesale — a
        resumed index must compact at exactly the moments the
        uninterrupted run would, or the segment split diverges.
        """
        if state.get("layout") == "tiered":
            raise ValueError(
                "snapshot is a tiered-index state_dict; restore it with "
                "a TieredCorpusIndex (retention knobs set)"
            )
        self._compact_threshold = int(state["compact_threshold"])  # type: ignore[arg-type]
        ratio = state.get("compact_ratio")
        self._compact_ratio = None if ratio is None else float(ratio)  # type: ignore[arg-type]
        self._interner = TextInterner()
        base_posts = columns_to_posts(state["base"])  # type: ignore[arg-type]
        self._base = CorpusIndex(base_posts, interner=self._interner)
        self._tail_posts = columns_to_posts(state["tail"])  # type: ignore[arg-type]
        self._tail_index = None
        self._ids = {p.post_id for p in base_posts}
        self._ids.update(p.post_id for p in self._tail_posts)
        self._appends = int(state["appends"])  # type: ignore[arg-type]
        self._compactions = int(state["compactions"])  # type: ignore[arg-type]
