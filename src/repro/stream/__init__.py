"""Streaming PSP runtime: incremental ingest over an event-sourced feed.

The batch engines (indexed corpus, batched pipeline, compile-once TARA)
assume an immutable corpus: growing the analysis window means re-running
everything.  This package is their streaming counterpart — the paper's
"runtime model environment" (§IV) taken literally:

* :mod:`repro.stream.feed` — posts as replayable :class:`PostEvent`
  streams behind the :class:`FeedSource` protocol;
* :mod:`repro.stream.index` — an appendable corpus index
  (:class:`StreamingCorpusIndex`: immutable base + mutable tail segment,
  periodically compacted, query-equivalent to a from-scratch rebuild);
* :mod:`repro.stream.tiers` — the time-decay tiered index
  (:class:`TieredCorpusIndex`: hot tail / date-bounded warm segments /
  immutable cold segments with aggregate sidecars, per-tier compaction
  cadence) behind the :func:`build_stream_index` factory;
* :mod:`repro.stream.deltas` — dirty-keyword tracking and running SAI
  aggregates, so an arriving micro-batch updates keyword evidence in
  O(new posts) instead of O(corpus);
* :mod:`repro.stream.runtime` — the :class:`StreamRuntime` orchestrator:
  append → dirty SAI → conditional weight retune → conditional TARA
  rescore, emitting :class:`~repro.core.monitor.TrendAlert` records (the
  retune/rescore core lives in the shared :class:`TickEvaluator`);
* :mod:`repro.stream.sharding` — :class:`ShardedStreamRuntime`: N
  region/platform-sharded feeds with per-shard index+tracker pairs,
  mergeable :class:`SignalDelta` shard batches dispatched through a
  pluggable executor, and one shared evaluation per tick;
* :mod:`repro.stream.checkpoint` — stop/resume without replaying the
  feed, as full base snapshots or O(changed-keywords) delta
  checkpoints, with :class:`CheckpointRotation` managing base/delta
  generations on disk;
* :mod:`repro.stream.replay` — the long-horizon replay harness: any
  registered scenario driven boundary-by-boundary against the batch
  monitor with alert-parity, checkpoint-parity and bounded-memory
  audits (``repro replay`` on the CLI).
"""

from repro.stream.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointRotation,
    load_checkpoint,
    restore_runtime,
    save_checkpoint,
    save_delta_checkpoint,
)
from repro.stream.deltas import (
    DeltaTracker,
    KeywordSignals,
    SegmentSidecar,
    SignalDelta,
    compute_signal_delta,
    compute_signal_delta_columnar,
)
from repro.stream.feed import FeedSource, PostEvent, SyntheticFeed
from repro.stream.index import StreamingCorpusIndex
from repro.stream.tiers import (
    DEFAULT_COLD_AGE_DAYS,
    DEFAULT_WARM_SPAN_DAYS,
    TieredCorpusIndex,
    build_stream_index,
)
from repro.stream.replay import (
    BestEffortFeed,
    DelayedFeed,
    FlakyFeed,
    PoisonDefenceReport,
    ReplayReport,
    RetryingFeed,
    month_boundaries,
    replay_poison_defence,
    replay_scenario,
)
from repro.stream.runtime import StreamRuntime, StreamTick, TickEvaluator
from repro.stream.sharding import (
    ShardedStreamRuntime,
    merge_signals,
    partition_posts,
    shard_feeds,
)

__all__ = [
    "BestEffortFeed",
    "CHECKPOINT_VERSION",
    "CheckpointRotation",
    "DEFAULT_COLD_AGE_DAYS",
    "DEFAULT_WARM_SPAN_DAYS",
    "DelayedFeed",
    "DeltaTracker",
    "FeedSource",
    "FlakyFeed",
    "KeywordSignals",
    "PoisonDefenceReport",
    "PostEvent",
    "ReplayReport",
    "RetryingFeed",
    "SegmentSidecar",
    "ShardedStreamRuntime",
    "SignalDelta",
    "StreamRuntime",
    "StreamTick",
    "StreamingCorpusIndex",
    "SyntheticFeed",
    "TickEvaluator",
    "TieredCorpusIndex",
    "build_stream_index",
    "compute_signal_delta",
    "compute_signal_delta_columnar",
    "load_checkpoint",
    "merge_signals",
    "month_boundaries",
    "partition_posts",
    "replay_poison_defence",
    "replay_scenario",
    "restore_runtime",
    "save_checkpoint",
    "save_delta_checkpoint",
    "shard_feeds",
]
