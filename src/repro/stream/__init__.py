"""Streaming PSP runtime: incremental ingest over an event-sourced feed.

The batch engines (indexed corpus, batched pipeline, compile-once TARA)
assume an immutable corpus: growing the analysis window means re-running
everything.  This package is their streaming counterpart — the paper's
"runtime model environment" (§IV) taken literally:

* :mod:`repro.stream.feed` — posts as replayable :class:`PostEvent`
  streams behind the :class:`FeedSource` protocol;
* :mod:`repro.stream.index` — an appendable corpus index
  (:class:`StreamingCorpusIndex`: immutable base + mutable tail segment,
  periodically compacted, query-equivalent to a from-scratch rebuild);
* :mod:`repro.stream.deltas` — dirty-keyword tracking and running SAI
  aggregates, so an arriving micro-batch updates keyword evidence in
  O(new posts) instead of O(corpus);
* :mod:`repro.stream.runtime` — the :class:`StreamRuntime` orchestrator:
  append → dirty SAI → conditional weight retune → conditional TARA
  rescore, emitting :class:`~repro.core.monitor.TrendAlert` records (the
  retune/rescore core lives in the shared :class:`TickEvaluator`);
* :mod:`repro.stream.sharding` — :class:`ShardedStreamRuntime`: N
  region/platform-sharded feeds with per-shard index+tracker pairs,
  mergeable :class:`SignalDelta` shard batches dispatched through a
  pluggable executor, and one shared evaluation per tick;
* :mod:`repro.stream.checkpoint` — stop/resume without replaying the
  feed, as full base snapshots or O(changed-keywords) delta
  checkpoints.
"""

from repro.stream.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    restore_runtime,
    save_checkpoint,
    save_delta_checkpoint,
)
from repro.stream.deltas import (
    DeltaTracker,
    KeywordSignals,
    SignalDelta,
    compute_signal_delta,
)
from repro.stream.feed import FeedSource, PostEvent, SyntheticFeed
from repro.stream.index import StreamingCorpusIndex
from repro.stream.runtime import StreamRuntime, StreamTick, TickEvaluator
from repro.stream.sharding import (
    ShardedStreamRuntime,
    merge_signals,
    partition_posts,
    shard_feeds,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "DeltaTracker",
    "FeedSource",
    "KeywordSignals",
    "PostEvent",
    "ShardedStreamRuntime",
    "SignalDelta",
    "StreamRuntime",
    "StreamTick",
    "StreamingCorpusIndex",
    "SyntheticFeed",
    "TickEvaluator",
    "compute_signal_delta",
    "load_checkpoint",
    "merge_signals",
    "partition_posts",
    "restore_runtime",
    "save_checkpoint",
    "save_delta_checkpoint",
    "shard_feeds",
]
