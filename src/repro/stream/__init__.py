"""Streaming PSP runtime: incremental ingest over an event-sourced feed.

The batch engines (indexed corpus, batched pipeline, compile-once TARA)
assume an immutable corpus: growing the analysis window means re-running
everything.  This package is their streaming counterpart — the paper's
"runtime model environment" (§IV) taken literally:

* :mod:`repro.stream.feed` — posts as replayable :class:`PostEvent`
  streams behind the :class:`FeedSource` protocol;
* :mod:`repro.stream.index` — an appendable corpus index
  (:class:`StreamingCorpusIndex`: immutable base + mutable tail segment,
  periodically compacted, query-equivalent to a from-scratch rebuild);
* :mod:`repro.stream.deltas` — dirty-keyword tracking and running SAI
  aggregates, so an arriving micro-batch updates keyword evidence in
  O(new posts) instead of O(corpus);
* :mod:`repro.stream.runtime` — the :class:`StreamRuntime` orchestrator:
  append → dirty SAI → conditional weight retune → conditional TARA
  rescore, emitting :class:`~repro.core.monitor.TrendAlert` records;
* :mod:`repro.stream.checkpoint` — stop/resume without replaying the
  feed.
"""

from repro.stream.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    restore_runtime,
    save_checkpoint,
)
from repro.stream.deltas import DeltaTracker, KeywordSignals
from repro.stream.feed import FeedSource, PostEvent, SyntheticFeed
from repro.stream.index import StreamingCorpusIndex
from repro.stream.runtime import StreamRuntime, StreamTick

__all__ = [
    "CHECKPOINT_VERSION",
    "DeltaTracker",
    "FeedSource",
    "KeywordSignals",
    "PostEvent",
    "StreamRuntime",
    "StreamTick",
    "StreamingCorpusIndex",
    "SyntheticFeed",
    "load_checkpoint",
    "restore_runtime",
    "save_checkpoint",
]
