"""Cold-segment spill-to-disk store: binary columns, hydration cache.

A :class:`~repro.stream.tiers.TieredCorpusIndex` seals frozen history
into cold segments whose raw ``columns_state`` payloads never change —
but until now they stayed resident forever, so a decade-scale corpus
paid RSS for posts it almost never re-materializes.  This module moves
that payload to disk:

* :func:`segment_to_bytes` / :func:`segment_from_bytes` — a compact
  binary codec for a cold segment's column dict.  Numeric columns are
  written as their raw :class:`array.array` machine bytes; string
  columns as one contiguous UTF-8 blob plus a ``Q``-typed offset table.
  The round trip is exact — integers, floats (bit-for-bit) and text all
  reconstruct to equal columns.
* :class:`SegmentStore` — a directory of immutable segment files plus a
  JSON manifest.  Writes are crash-atomic (write a temp file, fsync,
  ``os.replace``; the manifest is updated the same way *after* the
  segment file lands), so a kill mid-spill leaves a consistent store:
  temp files and orphaned segment files are simply ignored on open.
  Keys are content-addressed (``seg-<span>-<digest>``), which makes
  re-spilling the same segment idempotent and lets several store
  instances — shard indexes, a checkpoint-restored runtime, a replay
  audit — safely share one directory: segment files never change once
  written and manifest writes merge with whatever is already on disk.
* :class:`HydrationCache` — the small LRU (``max_resident_cold``
  entries) through which *all* cold rehydration is routed, so
  back-to-back queries against the same cold window stop re-parsing the
  segment (and rebuilding a throwaway interner) on every call.

Failures surface as the typed :class:`StoreError` (a
:class:`~repro.core.errors.PSPError`, so the CLI reports it as a clean
``error:`` line): a missing or corrupted segment file names its key and
file, and a checkpoint that references spilled segments refuses to
restore without its store instead of crashing later mid-query.

Telemetry: ``psp_store_*`` counters (spills, spilled bytes, hydrations,
cache hits/evictions) and gauges (segments, bytes on disk, resident
cache size) register in the PR 9 metrics registry when one is attached.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import zlib
from array import array
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.core.errors import PSPError
from repro.social.columnar import ColumnarCorpus

__all__ = [
    "DEFAULT_MAX_RESIDENT_COLD",
    "HydrationCache",
    "SegmentStore",
    "StoreError",
    "segment_from_bytes",
    "segment_to_bytes",
]

#: How many hydrated cold segments stay resident by default — a handful:
#: enough that a replay sweeping a cold window re-reads nothing, small
#: enough that hydration can never quietly resurrect the resident cost
#: the spill exists to shed.
DEFAULT_MAX_RESIDENT_COLD = 4

#: Segment file magic: identifies the format and pins its version.
_MAGIC = b"PSPSEG1\n"

_MANIFEST_NAME = "manifest.json"
_SEGMENT_SUFFIX = ".seg"
_TMP_MARKER = ".tmp"

_STORE_VERSION = 1


class StoreError(PSPError):
    """A segment store operation failed (missing/corrupt file, no store)."""


# -- binary segment codec ------------------------------------------------------


def segment_to_bytes(columns_state: Mapping[str, object]) -> bytes:
    """Serialize a cold segment's column dict into the binary layout.

    ``array`` values are written as raw machine bytes; ``list`` values
    must hold strings and are written as an offset table plus one
    contiguous UTF-8 blob.  The section order is the dict's insertion
    order, so the decoded dict preserves it.
    """
    sections: List[Dict[str, object]] = []
    payload = bytearray()
    for name, value in columns_state.items():
        if isinstance(value, array):
            raw = value.tobytes()
            sections.append(
                {
                    "name": name,
                    "kind": "array",
                    "typecode": value.typecode,
                    "itemsize": value.itemsize,
                    "count": len(value),
                    "bytes": len(raw),
                }
            )
            payload.extend(raw)
        else:
            items = list(value)  # type: ignore[call-overload]
            encoded = [item.encode("utf-8") for item in items]
            offsets = array("Q", [0] * (len(encoded) + 1))
            cursor = 0
            for position, chunk in enumerate(encoded):
                cursor += len(chunk)
                offsets[position + 1] = cursor
            blob = b"".join(encoded)
            sections.append(
                {
                    "name": name,
                    "kind": "text",
                    "count": len(encoded),
                    "offsets_bytes": len(offsets) * offsets.itemsize,
                    "blob_bytes": len(blob),
                }
            )
            payload.extend(offsets.tobytes())
            payload.extend(blob)
    header = json.dumps(
        {
            "version": _STORE_VERSION,
            "byteorder": sys.byteorder,
            "sections": sections,
            "payload_crc32": zlib.crc32(payload) & 0xFFFFFFFF,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    out = bytearray()
    out.extend(_MAGIC)
    out.extend(len(header).to_bytes(8, "little"))
    out.extend(header)
    out.extend(payload)
    return bytes(out)


def segment_from_bytes(data: bytes) -> Dict[str, object]:
    """Decode :func:`segment_to_bytes` output back into the column dict.

    Raises :class:`StoreError` on any structural damage — bad magic,
    truncation, checksum mismatch, or a host whose ``array`` layout does
    not match the writer's.
    """
    view = memoryview(data)
    try:
        return _decode_sections(view)
    finally:
        # Release explicitly: exception tracebacks keep the frame (and
        # its views) alive, which would block closing an mmap source.
        view.release()


def _decode_sections(view: "memoryview") -> Dict[str, object]:
    if len(view) < len(_MAGIC) + 8 or bytes(view[: len(_MAGIC)]) != _MAGIC:
        raise StoreError("segment data does not start with the PSPSEG magic")
    header_len = int.from_bytes(view[len(_MAGIC) : len(_MAGIC) + 8], "little")
    header_start = len(_MAGIC) + 8
    if len(view) < header_start + header_len:
        raise StoreError("segment data truncated inside the header")
    try:
        header = json.loads(bytes(view[header_start : header_start + header_len]))
    except ValueError as error:
        raise StoreError(f"segment header is not valid JSON: {error}") from None
    if header.get("version") != _STORE_VERSION:
        raise StoreError(
            f"unsupported segment format version {header.get('version')!r}"
        )
    if header.get("byteorder") != sys.byteorder:
        raise StoreError(
            f"segment was written on a {header.get('byteorder')}-endian "
            f"host, this host is {sys.byteorder}-endian"
        )
    payload = view[header_start + header_len :]
    try:
        return _decode_payload(header, payload)
    finally:
        payload.release()


def _decode_payload(
    header: Mapping[str, object], payload: "memoryview"
) -> Dict[str, object]:
    # crc32 reads the buffer in place — no copy of a possibly
    # mmap-backed multi-megabyte payload.
    checksum = zlib.crc32(payload) & 0xFFFFFFFF
    if checksum != header.get("payload_crc32"):
        raise StoreError(
            "segment payload checksum mismatch "
            f"(stored {header.get('payload_crc32')}, computed {checksum})"
        )
    out: Dict[str, object] = {}
    cursor = 0
    for section in header["sections"]:
        name = section["name"]
        if section["kind"] == "array":
            typecode = section["typecode"]
            column = array(typecode)
            if column.itemsize != section["itemsize"]:
                raise StoreError(
                    f"column {name!r}: array typecode {typecode!r} is "
                    f"{column.itemsize} bytes on this host, segment was "
                    f"written with {section['itemsize']}"
                )
            size = section["bytes"]
            if cursor + size > len(payload):
                raise StoreError(f"column {name!r} truncated")
            column.frombytes(payload[cursor : cursor + size])
            cursor += size
            out[name] = column
        else:
            offsets = array("Q")
            offsets_bytes = section["offsets_bytes"]
            blob_bytes = section["blob_bytes"]
            if cursor + offsets_bytes + blob_bytes > len(payload):
                raise StoreError(f"column {name!r} truncated")
            offsets.frombytes(payload[cursor : cursor + offsets_bytes])
            cursor += offsets_bytes
            blob = bytes(payload[cursor : cursor + blob_bytes])
            cursor += blob_bytes
            out[name] = [
                blob[offsets[position] : offsets[position + 1]].decode("utf-8")
                for position in range(section["count"])
            ]
    return out


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` crash-atomically (temp + fsync + rename)."""
    tmp = path.with_name(f"{path.name}.{os.getpid()}{_TMP_MARKER}")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


# -- the LRU hydration cache ---------------------------------------------------


class HydrationCache:
    """A tiny LRU of materialized cold segments.

    Every rehydration path — spilled segments read back from the store,
    resident cold segments rebuilt from their in-memory columns — goes
    through one of these, so repeated queries against the same cold
    window parse the segment once instead of once per call.
    """

    def __init__(self, capacity: int = DEFAULT_MAX_RESIDENT_COLD) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[str, ColumnarCorpus]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        """The resident-segment bound (the ``max_resident_cold`` knob)."""
        return self._capacity

    def get(self, key: str) -> Optional[ColumnarCorpus]:
        """The cached corpus (refreshing recency), or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, corpus: ColumnarCorpus) -> None:
        """Insert (or refresh) an entry, evicting the least recent."""
        self._entries[key] = corpus
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every resident entry (statistics are kept)."""
        self._entries.clear()


# -- the store -----------------------------------------------------------------


class SegmentStore:
    """A directory of spilled cold segments plus their JSON manifest.

    Args:
        directory: where segment files and the manifest live; created if
            missing.  An existing manifest is adopted (the re-attach
            path of checkpoint restores).
        max_resident_cold: LRU capacity of the hydration cache.
        metrics: optional :class:`~repro.obs.registry.MetricsRegistry`
            receiving the ``psp_store_*`` counters and gauges.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        max_resident_cold: int = DEFAULT_MAX_RESIDENT_COLD,
        metrics=None,
    ) -> None:
        from repro.obs.registry import ensure_registry

        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._segments: Dict[str, Dict[str, object]] = {}
        self._cache = HydrationCache(max_resident_cold)
        self.spills = 0
        self.hydrations = 0
        self._load_manifest()
        self._metrics = ensure_registry(metrics)
        self._spills_total = self._metrics.counter(
            "psp_store_spills_total", "Cold segments spilled to disk"
        )
        self._spilled_bytes_total = self._metrics.counter(
            "psp_store_spilled_bytes_total", "Bytes written by spills"
        )
        self._hydrations_total = self._metrics.counter(
            "psp_store_hydrations_total",
            "Spilled segments read back and re-materialized",
        )
        self._cache_hits_total = self._metrics.counter(
            "psp_store_cache_hits_total",
            "Hydrations answered by the resident LRU cache",
        )
        self._cache_evictions_total = self._metrics.counter(
            "psp_store_cache_evictions_total",
            "Hydrated segments evicted from the resident LRU cache",
        )
        if self._metrics.enabled:
            self._metrics.add_collector(self._refresh_gauges)

    def _refresh_gauges(self) -> None:
        """Store-size gauges, refreshed at export/snapshot time."""
        self._metrics.gauge(
            "psp_store_segments", "Spilled cold segments tracked on disk"
        ).set(len(self._segments))
        self._metrics.gauge(
            "psp_store_bytes", "Bytes of spilled cold segments on disk"
        ).set(self.bytes_on_disk)
        self._metrics.gauge(
            "psp_store_resident_segments",
            "Hydrated segments resident in the LRU cache",
        ).set(len(self._cache))

    # -- manifest ------------------------------------------------------------

    @property
    def directory(self) -> Path:
        """The store's on-disk root."""
        return self._directory

    @property
    def manifest_path(self) -> Path:
        """Where the JSON manifest lives."""
        return self._directory / _MANIFEST_NAME

    def _load_manifest(self) -> None:
        path = self.manifest_path
        if not path.exists():
            return
        try:
            manifest = json.loads(path.read_text("utf-8"))
        except ValueError as error:
            raise StoreError(
                f"store manifest {path} is not valid JSON: {error}"
            ) from None
        if manifest.get("store_version") != _STORE_VERSION:
            raise StoreError(
                f"store manifest {path} has unsupported version "
                f"{manifest.get('store_version')!r}"
            )
        for key, entry in manifest.get("segments", {}).items():
            self._segments[str(key)] = dict(entry)

    def _write_manifest(self) -> None:
        """Persist the manifest, merging entries already on disk.

        Segment files are immutable and content-addressed, so a union
        merge is always safe — it is what lets several instances (shard
        stores, a restore, a replay audit) share one directory without
        clobbering each other's records.
        """
        merged: Dict[str, Dict[str, object]] = {}
        path = self.manifest_path
        if path.exists():
            try:
                on_disk = json.loads(path.read_text("utf-8"))
                if on_disk.get("store_version") == _STORE_VERSION:
                    for key, entry in on_disk.get("segments", {}).items():
                        merged[str(key)] = dict(entry)
            except ValueError:
                pass  # a torn manifest is superseded by this write
        merged.update(self._segments)
        _atomic_write(
            path,
            json.dumps(
                {"store_version": _STORE_VERSION, "segments": merged},
                sort_keys=True,
            ).encode("utf-8"),
        )

    # -- write path ----------------------------------------------------------

    def spill(self, columns_state: Mapping[str, object], *, span: int) -> str:
        """Serialize one cold segment to disk; returns its store key.

        The key is content-addressed, so spilling identical columns
        twice (a checkpoint re-spill, a parallel audit run) lands on the
        same immutable file.  The segment file is renamed into place
        before the manifest records it — a crash between the two leaves
        an orphaned file the next open ignores, never a manifest entry
        pointing at nothing.
        """
        data = segment_to_bytes(columns_state)
        digest = hashlib.sha256(data).hexdigest()[:16]
        key = f"seg-{span}-{digest}"
        filename = f"{key}{_SEGMENT_SUFFIX}"
        target = self._directory / filename
        if key not in self._segments or not target.exists():
            _atomic_write(target, data)
        count = len(columns_state.get("post_ids", ()))  # type: ignore[arg-type]
        self._segments[key] = {
            "file": filename,
            "bytes": len(data),
            "count": count,
            "span": span,
        }
        self._write_manifest()
        self.spills += 1
        self._spills_total.inc()
        self._spilled_bytes_total.inc(len(data))
        return key

    # -- read path -----------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._segments

    def keys(self) -> Iterator[str]:
        """The tracked store keys."""
        return iter(self._segments)

    @property
    def segment_count(self) -> int:
        """How many spilled segments this store tracks."""
        return len(self._segments)

    @property
    def bytes_on_disk(self) -> int:
        """Total bytes of the tracked segment files."""
        return sum(int(entry["bytes"]) for entry in self._segments.values())

    def _segment_path(self, key: str) -> Path:
        entry = self._segments.get(key)
        if entry is None:
            raise StoreError(
                f"segment {key!r} is not in the store manifest "
                f"({self.manifest_path})"
            )
        return self._directory / str(entry["file"])

    def load_columns_state(self, key: str) -> Dict[str, object]:
        """Read one spilled segment's columns back (no caching).

        Raises :class:`StoreError` naming the key when the file is
        missing or fails structural validation.
        """
        import mmap

        path = self._segment_path(key)
        try:
            with open(path, "rb") as handle:
                try:
                    # Decode straight out of the page cache: numeric
                    # columns copy from the mapping into their arrays
                    # without an intermediate whole-file bytes object.
                    with mmap.mmap(
                        handle.fileno(), 0, access=mmap.ACCESS_READ
                    ) as mapped:
                        return segment_from_bytes(mapped)
                except ValueError:
                    # Empty (or unmappable) file — fall back to a plain
                    # read so validation reports it as a StoreError.
                    handle.seek(0)
                    return segment_from_bytes(handle.read())
        except OSError as error:
            raise StoreError(
                f"segment {key!r}: cannot read {path}: {error}"
            ) from None
        except StoreError as error:
            raise StoreError(f"segment {key!r} ({path}): {error}") from None

    def load_post_ids(self, key: str) -> List[str]:
        """Just the ``post_ids`` column of one spilled segment.

        The checkpoint-restore path needs every retained post id for
        duplicate detection but none of the other columns; decoding one
        text column costs no analysis and no array copies.
        """
        state = self.load_columns_state(key)
        return list(state["post_ids"])  # type: ignore[arg-type]

    def hydrate(self, key: str) -> ColumnarCorpus:
        """The materialized corpus of one spilled segment, LRU-cached.

        Cache hits cost a dictionary lookup; misses read the segment
        file, rebuild the corpus into a throwaway pool and cache it,
        evicting the least-recently used corpus past
        ``max_resident_cold``.
        """
        cached = self._cache.get(key)
        if cached is not None:
            self._cache_hits_total.inc()
            return cached
        corpus = ColumnarCorpus.from_state(self.load_columns_state(key))
        evictions_before = self._cache.evictions
        self._cache.put(key, corpus)
        self._cache_evictions_total.inc(
            self._cache.evictions - evictions_before
        )
        self.hydrations += 1
        self._hydrations_total.inc()
        return corpus

    def drop_cache(self) -> None:
        """Release every resident hydrated corpus (tests, memory audits)."""
        self._cache.clear()

    # -- introspection -------------------------------------------------------

    @property
    def cache(self) -> HydrationCache:
        """The resident-segment LRU."""
        return self._cache

    @property
    def stats(self) -> Dict[str, object]:
        """Operational counters for ``--stats`` rows and checkpoints."""
        return {
            "directory": str(self._directory),
            "segments": len(self._segments),
            "bytes": self.bytes_on_disk,
            "spills": self.spills,
            "hydrations": self.hydrations,
            "cache_hits": self._cache.hits,
            "cache_evictions": self._cache.evictions,
            "resident": len(self._cache),
            "max_resident_cold": self._cache.capacity,
        }
