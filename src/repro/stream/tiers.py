"""Time-decay tiered corpus index: hot / warm / cold segments.

The flat delta-segment index (:class:`~repro.stream.index.
StreamingCorpusIndex`) keeps one base+tail pair: every compaction
re-concatenates the *entire* base's columns (O(corpus) array work per
compaction) and the base's arena, postings and interned analyses all
stay resident forever — RSS grows with retention.  At the paper's
multi-year horizons both costs dominate.  :class:`TieredCorpusIndex`
replaces the single base with a time-decay hierarchy:

* **hot** — the append-only tail of recent arrivals, kept as plain
  posts and indexed lazily, exactly like the flat index's tail;
* **warm** — date-bounded segments.  When arrivals cross a time
  boundary (every ``warm_span_days`` of post dates), the posts of
  completed spans seal out of the hot tail into per-span
  :class:`~repro.social.index.CorpusIndex` chunks.  Spans consolidate
  their chunks on their own cadence, so consolidation cost is bounded
  by a span's size — never by total retention;
* **cold** — once a span's entire date range is older than
  ``cold_age_days`` (measured against the newest post seen), the span
  seals immutably: its raw columns are demoted to compact plain
  arrays (arena, postings, interned analyses and `Post` caches are all
  dropped) and a precomputed :class:`~repro.stream.deltas.
  SegmentSidecar` carries its per-``keyword × year`` aggregate sums, so
  tracker seeding and keyword backfill answer from sidecar lookups
  instead of re-scanning the segment.  Raw posts stay lazily
  materializable (replay parity, late keyword backfill) but are never
  cached — a cold segment costs its column data, nothing more.

Query routing bisects tiers by date range: a window query only sweeps
the hot tail, the warm chunks it overlaps, and materializes only the
cold segments it overlaps (a steady-state monitoring window overlaps
none).  Results stay post-for-post identical to a from-scratch
:class:`~repro.social.index.CorpusIndex` over the same posts —
property-tested in ``tests/properties/test_tiered_equivalence.py``.

:func:`build_stream_index` is the runtime's factory: retention knobs
unset returns the flat index (every pre-existing behaviour, test and
checkpoint untouched); either knob set returns a tiered index.
"""

from __future__ import annotations

import datetime as dt
import itertools
from array import array
from heapq import merge as heap_merge
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.obs.registry import DEFAULT_SIZE_BUCKETS, ensure_registry
from repro.social.columnar import (
    ColumnarCorpus,
    TextInterner,
    columns_to_posts,
    posts_to_columns,
)
from repro.social.index import CorpusIndex
from repro.social.post import Post
from repro.stream.deltas import (
    SegmentSidecar,
    SignalDelta,
    compute_signal_delta,
    compute_signal_delta_columnar,
)
from repro.stream.index import DEFAULT_COMPACT_THRESHOLD, StreamingCorpusIndex
from repro.stream.store import (
    DEFAULT_MAX_RESIDENT_COLD,
    HydrationCache,
    SegmentStore,
    StoreError,
)

__all__ = [
    "DEFAULT_COLD_AGE_DAYS",
    "DEFAULT_WARM_SPAN_DAYS",
    "TieredCorpusIndex",
    "build_stream_index",
]

#: Resident cold segments get process-unique cache tokens (never
#: serialized; a restore mints fresh ones).
_RESIDENT_TOKENS = itertools.count()

#: Warm segments cover this many days of post dates by default (~one
#: quarter): long enough that steady monitoring windows stay out of
#: cold, short enough that a consolidation touches one season of posts.
DEFAULT_WARM_SPAN_DAYS = 90

#: A span seals cold once its whole date range is this much older than
#: the newest post seen (~one year: the monitor's widest default
#: staleness window stays warm).
DEFAULT_COLD_AGE_DAYS = 365

#: A warm span consolidates its chunks once it accumulates this many.
WARM_CONSOLIDATE_CHUNKS = 4

_SORT_KEY = lambda post: (post.created_at, post.post_id)  # noqa: E731


def _compact_columns(state: Mapping[str, object]) -> Dict[str, object]:
    """A cold segment's raw columns with numeric columns as arrays.

    The plain :meth:`~repro.social.columnar.ColumnarCorpus.state_dict`
    lists hold boxed Python ints (~28 bytes each); typed arrays hold the
    same values at machine width.  Strings are kept as-is — they are the
    irreducible cost of lazy materializability.
    """
    return {
        "post_ids": list(state["post_ids"]),
        "texts": list(state["texts"]),
        "authors": list(state["authors"]),
        "dates": array("l", state["dates"]),  # type: ignore[arg-type]
        "region_vocab": list(state["region_vocab"]),  # type: ignore[arg-type]
        "region_codes": array("H", state["region_codes"]),  # type: ignore[arg-type]
        "views": array("q", state["views"]),  # type: ignore[arg-type]
        "likes": array("q", state["likes"]),  # type: ignore[arg-type]
        "reposts": array("q", state["reposts"]),  # type: ignore[arg-type]
        "replies": array("q", state["replies"]),  # type: ignore[arg-type]
    }


def _plain_columns(compact: Mapping[str, object]) -> Dict[str, object]:
    """The JSON-serialisable form of a :func:`_compact_columns` dict."""
    return {key: list(value) for key, value in compact.items()}  # type: ignore[call-overload]


class _ColdSegment:
    """One immutable cold segment: sidecar plus columns or a store key.

    A resident segment keeps its compact raw ``columns_state`` in
    memory; a spilled segment keeps ``store_key`` instead and its
    columns live only in the owning index's :class:`SegmentStore`.
    """

    __slots__ = (
        "span",
        "columns_state",
        "sidecar",
        "count",
        "min_ord",
        "max_ord",
        "store_key",
        "token",
    )

    def __init__(
        self,
        *,
        span: int,
        columns_state: Optional[Dict[str, object]],
        sidecar: Optional[SegmentSidecar],
        count: int,
        min_ord: int,
        max_ord: int,
        store_key: Optional[str] = None,
    ) -> None:
        if columns_state is None and store_key is None:
            raise ValueError(
                "a cold segment needs either resident columns or a store key"
            )
        self.span = span
        self.columns_state = columns_state
        self.sidecar = sidecar
        self.count = count
        self.min_ord = min_ord
        self.max_ord = max_ord
        self.store_key = store_key
        self.token = f"resident-{next(_RESIDENT_TOKENS)}"

    def materialize(self) -> ColumnarCorpus:
        """Rebuild the raw columnar segment, into a throwaway pool.

        Cold analyses are deliberately *not* pooled in the index's
        shared interner — materialization is the rare path (replay
        parity, late keyword backfill) and re-pinning its analyses
        would undo the cold seal's memory reclaim.  Callers inside the
        index go through :meth:`TieredCorpusIndex._materialize`, which
        adds the LRU hydration cache (and the store read for spilled
        segments); this method is the uncached resident path only.
        """
        if self.columns_state is None:
            raise StoreError(
                f"cold segment for span {self.span} is spilled "
                f"(store key {self.store_key!r}); hydrate it through its "
                "segment store"
            )
        return ColumnarCorpus.from_state(self.columns_state)

    def overlaps(self, since_ord: Optional[int], until_ord: Optional[int]) -> bool:
        """Whether the segment's date range intersects a window."""
        if since_ord is not None and self.max_ord < since_ord:
            return False
        if until_ord is not None and self.min_ord > until_ord:
            return False
        return True


class TieredCorpusIndex:
    """An appendable index with per-tier compaction and decay.

    Duck-type compatible with :class:`~repro.stream.index.
    StreamingCorpusIndex` (appends, queries, stats, checkpoints), with
    the flat base+tail replaced by the hot/warm/cold hierarchy described
    in the module docstring.

    Args:
        posts: initial posts (run through the normal tier lifecycle).
        compact_threshold: hot-tail size that forces a full seal of the
            tail into warm segments (the flat index's threshold policy).
        compact_ratio: optional hot/retained ratio that also forces a
            full seal (the flat index's ratio policy).
        warm_span_days: days of post dates per warm span; arrivals
            crossing a span boundary seal the completed spans.
        cold_age_days: age horizon (vs the newest post date seen) past
            which a whole span seals cold.
        sidecar_keywords: keyword universe swept into cold sidecars at
            seal time (None = no sidecars; purely structural tiering).
        sidecar_region: SAI region scope of the sidecar bucket sums —
            must match the consuming tracker's.
        sidecar_analyzer: sentiment analyzer of the sidecar sums — must
            be the consuming tracker's instance for bit-parity.
        store: optional :class:`~repro.stream.store.SegmentStore`; when
            attached, cold seals spill their columns to it and keep only
            the store key in memory.  Several indexes (shards, a replay
            audit) may share one store instance.
        max_resident_cold: LRU capacity of the resident hydration cache
            (spilled segments additionally cache inside the store's own
            LRU); None takes the store default.
        metrics: optional :class:`~repro.obs.registry.MetricsRegistry`
            recording seal/consolidate/rematerialize events as counters
            + seal-size histograms, plus per-tier size gauges refreshed
            at export time; None wires the no-op path.
    """

    def __init__(
        self,
        posts: Iterable[Post] = (),
        *,
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
        compact_ratio: Optional[float] = None,
        warm_span_days: int = DEFAULT_WARM_SPAN_DAYS,
        cold_age_days: int = DEFAULT_COLD_AGE_DAYS,
        sidecar_keywords: Optional[Sequence[str]] = None,
        sidecar_region: Optional[str] = None,
        sidecar_analyzer=None,
        store: Optional[SegmentStore] = None,
        max_resident_cold: Optional[int] = None,
        metrics=None,
    ) -> None:
        if compact_threshold < 1:
            raise ValueError(
                f"compact_threshold must be >= 1, got {compact_threshold}"
            )
        if compact_ratio is not None and compact_ratio <= 0:
            raise ValueError(
                f"compact_ratio must be > 0, got {compact_ratio}"
            )
        if warm_span_days < 1:
            raise ValueError(
                f"warm_span_days must be >= 1, got {warm_span_days}"
            )
        if cold_age_days < 1:
            raise ValueError(
                f"cold_age_days must be >= 1, got {cold_age_days}"
            )
        self._compact_threshold = compact_threshold
        self._compact_ratio = compact_ratio
        self._warm_span_days = warm_span_days
        self._cold_age_days = cold_age_days
        self._sidecar_keywords = (
            tuple(sidecar_keywords) if sidecar_keywords is not None else None
        )
        self._sidecar_region = sidecar_region
        self._sidecar_analyzer = sidecar_analyzer
        self._store = store
        self._resident_cache = HydrationCache(
            DEFAULT_MAX_RESIDENT_COLD
            if max_resident_cold is None
            else max_resident_cold
        )
        self._interner = TextInterner()
        self._hot: List[Post] = []
        self._hot_index: Optional[CorpusIndex] = None
        self._warm: Dict[int, List[CorpusIndex]] = {}
        self._warm_count = 0
        self._cold: List[_ColdSegment] = []
        self._cold_count = 0
        self._ids: Set[str] = set()
        self._max_ord = -1
        self._appends = 0
        self._hot_seals = 0
        self._consolidations = 0
        self._cold_seals = 0
        self._interner_evicted = 0
        self._last_hot_seal_append: Optional[int] = None
        self._last_consolidation_append: Optional[int] = None
        self._last_cold_seal_append: Optional[int] = None
        self._metrics = ensure_registry(metrics)
        self._appends_total = self._metrics.counter(
            "psp_index_appends_total", "Micro-batch appends into the index"
        )
        self._hot_seals_total = self._metrics.counter(
            "psp_tier_hot_seals_total", "Hot-tail seals into warm segments"
        )
        self._consolidations_total = self._metrics.counter(
            "psp_tier_consolidations_total", "Warm-span chunk consolidations"
        )
        self._cold_seals_total = self._metrics.counter(
            "psp_tier_cold_seals_total", "Warm spans sealed into cold segments"
        )
        self._remat_total = self._metrics.counter(
            "psp_tier_rematerializations_total",
            "Cold segments re-materialized for a query or backfill",
        )
        self._evicted_total = self._metrics.counter(
            "psp_tier_interner_evicted_total",
            "Pooled analyses evicted by cold seals",
        )
        self._sealed_hist = self._metrics.histogram(
            "psp_tier_sealed_posts",
            "Posts moved per seal event, by destination tier",
            labelnames=("tier",),
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        if self._metrics.enabled:
            self._metrics.add_collector(self._refresh_gauges)
        initial = list(posts)
        if initial:
            seen: Set[str] = set()
            for post in initial:
                if post.post_id in seen:
                    raise ValueError("initial posts contain duplicate post ids")
                seen.add(post.post_id)
            self._ids.update(seen)
            self._hot.extend(initial)
            self._max_ord = max(p.created_at.toordinal() for p in initial)
            self._maintain()

    def _refresh_gauges(self) -> None:
        """Per-tier size gauges, refreshed at export/snapshot time."""
        posts_gauge = self._metrics.gauge(
            "psp_index_posts", "Posts retained per index tier",
            labelnames=("tier",),
        )
        posts_gauge.set(len(self._hot), tier="hot")
        posts_gauge.set(self._warm_count, tier="warm")
        posts_gauge.set(self._cold_count, tier="cold")
        self._metrics.gauge(
            "psp_index_interned_texts", "Texts pinned in the interner pool"
        ).set(len(self._interner))

    # -- tier arithmetic ----------------------------------------------------

    def _span_of(self, ordinal: int) -> int:
        return ordinal // self._warm_span_days

    def _span_last_ord(self, span: int) -> int:
        return (span + 1) * self._warm_span_days - 1

    # -- ingestion ----------------------------------------------------------

    def append(self, posts: Iterable[Post]) -> int:
        """Append new posts; returns how many were added.

        Atomic like the flat index's append: ids are validated up
        front, so a duplicate rejects the whole batch and leaves every
        tier exactly as it was.
        """
        batch = list(posts)
        seen: Set[str] = set()
        for post in batch:
            if post.post_id in self._ids or post.post_id in seen:
                raise ValueError(f"duplicate post id {post.post_id!r}")
            seen.add(post.post_id)
        if not batch:
            return 0
        self._ids.update(seen)
        self._hot.extend(batch)
        self._hot_index = None
        self._appends += 1
        self._appends_total.inc()
        batch_max = max(p.created_at.toordinal() for p in batch)
        if batch_max > self._max_ord:
            self._max_ord = batch_max
        self._maintain()
        return len(batch)

    def _maintain(self) -> None:
        """One round of per-tier maintenance after an append."""
        self._seal_hot()
        self._consolidate_warm()
        self._seal_cold()

    def _seal_hot(self) -> None:
        """Move completed-span (or policy-triggered) hot posts to warm."""
        tail = len(self._hot)
        if tail == 0:
            return
        retained = self._warm_count + self._cold_count
        full = tail >= self._compact_threshold or (
            self._compact_ratio is not None
            and tail >= self._compact_ratio * max(1, retained)
        )
        if full:
            to_seal = self._hot
            remaining: List[Post] = []
        else:
            current_span = self._span_of(self._max_ord)
            to_seal = [
                post
                for post in self._hot
                if self._span_of(post.created_at.toordinal()) < current_span
            ]
            if not to_seal:
                return
            sealed_ids = {post.post_id for post in to_seal}
            remaining = [
                post for post in self._hot if post.post_id not in sealed_ids
            ]
        by_span: Dict[int, List[Post]] = {}
        for post in to_seal:
            by_span.setdefault(
                self._span_of(post.created_at.toordinal()), []
            ).append(post)
        for span in sorted(by_span):
            chunk = CorpusIndex(by_span[span], interner=self._interner)
            self._warm.setdefault(span, []).append(chunk)
            self._warm_count += len(chunk)
        self._hot = remaining
        self._hot_index = None
        self._hot_seals += 1
        self._hot_seals_total.inc()
        self._sealed_hist.observe(len(to_seal), tier="warm")
        self._last_hot_seal_append = self._appends

    def _consolidate_warm(self) -> None:
        """Merge chunk chains of spans that accumulated too many."""
        for span, chunks in self._warm.items():
            if len(chunks) < WARM_CONSOLIDATE_CHUNKS:
                continue
            merged = chunks[0]
            for chunk in chunks[1:]:
                merged = merged.extended_with_index(chunk)
            self._warm[span] = [merged]
            self._consolidations += 1
            self._consolidations_total.inc()
            self._last_consolidation_append = self._appends

    def _seal_cold(self) -> None:
        """Demote warm spans entirely past the age horizon to cold."""
        if self._max_ord < 0 or not self._warm:
            return
        horizon = self._max_ord - self._cold_age_days
        expired = [
            span
            for span in sorted(self._warm)
            if self._span_last_ord(span) <= horizon
        ]
        if not expired:
            return
        for span in expired:
            chunks = self._warm.pop(span)
            merged = chunks[0]
            for chunk in chunks[1:]:
                merged = merged.extended_with_index(chunk)
            columns = merged.columns
            sidecar = None
            if self._sidecar_keywords is not None:
                sidecar = SegmentSidecar.build(
                    self._sidecar_keywords,
                    columns,
                    region=self._sidecar_region,
                    analyzer=self._sidecar_analyzer,
                )
            count = len(columns)
            columns_state: Optional[Dict[str, object]] = _compact_columns(
                columns.state_dict()
            )
            store_key: Optional[str] = None
            if self._store is not None:
                store_key = self._store.spill(columns_state, span=span)
                columns_state = None
            self._cold.append(
                _ColdSegment(
                    span=span,
                    columns_state=columns_state,
                    sidecar=sidecar,
                    count=count,
                    min_ord=columns.date_ordinal(0),
                    max_ord=columns.date_ordinal(count - 1),
                    store_key=store_key,
                )
            )
            self._warm_count -= count
            self._cold_count += count
            self._cold_seals += 1
            self._cold_seals_total.inc()
            self._sealed_hist.observe(count, tier="cold")
            self._last_cold_seal_append = self._appends
        self._cold.sort(key=lambda segment: (segment.min_ord, segment.span))
        self._prune_interner()

    def _prune_interner(self) -> None:
        """Drop pooled analyses only cold segments still reference."""
        keep: Set[str] = {post.text for post in self._hot}
        for chunks in self._warm.values():
            for chunk in chunks:
                keep.update(chunk.columns.iter_texts())
        evicted = self._interner.prune(keep)
        self._interner_evicted += evicted
        self._evicted_total.inc(evicted)

    def compact(self) -> None:
        """Force-seal the whole hot tail into warm segments."""
        if not self._hot:
            return
        sealed = len(self._hot)
        by_span: Dict[int, List[Post]] = {}
        for post in self._hot:
            by_span.setdefault(
                self._span_of(post.created_at.toordinal()), []
            ).append(post)
        for span in sorted(by_span):
            chunk = CorpusIndex(by_span[span], interner=self._interner)
            self._warm.setdefault(span, []).append(chunk)
            self._warm_count += len(chunk)
        self._hot = []
        self._hot_index = None
        self._hot_seals += 1
        self._hot_seals_total.inc()
        self._sealed_hist.observe(sealed, tier="warm")
        self._last_hot_seal_append = self._appends
        self._consolidate_warm()
        self._seal_cold()

    # -- segment access -----------------------------------------------------

    @property
    def store(self) -> Optional[SegmentStore]:
        """The attached spill store (None when fully resident)."""
        return self._store

    @property
    def sidecar_region(self) -> Optional[str]:
        """The SAI region scope the cold sidecars were built with."""
        return self._sidecar_region

    @property
    def sidecar_analyzer(self):
        """The sentiment analyzer the cold sidecars were built with."""
        return self._sidecar_analyzer

    def _materialize(self, segment: _ColdSegment) -> ColumnarCorpus:
        """One cold segment's corpus, through the LRU hydration cache.

        Every rehydration in the index routes here: spilled segments
        read back via their store (which runs its own LRU keyed by
        store key), resident segments rebuild through the index-local
        cache — so back-to-back queries on the same cold window no
        longer re-parse the segment (or rebuild a throwaway interner)
        per call.  The rematerialization counter ticks only on cache
        misses — it counts actual column re-parses, not lookups.
        """
        if segment.store_key is not None:
            store = self._store
            if store is None:
                raise StoreError(
                    f"cold segment {segment.store_key!r} is spilled but the "
                    "index has no segment store attached; pass spill_dir "
                    "(or a store) when building the index"
                )
            hydrations_before = store.hydrations
            corpus = store.hydrate(segment.store_key)
            if store.hydrations != hydrations_before:
                self._remat_total.inc()
            return corpus
        cached = self._resident_cache.get(segment.token)
        if cached is not None:
            return cached
        corpus = segment.materialize()
        self._resident_cache.put(segment.token, corpus)
        self._remat_total.inc()
        return corpus

    def _hot_segment(self) -> CorpusIndex:
        """The hot tail's index, built lazily after each append."""
        if self._hot_index is None:
            self._hot_index = CorpusIndex(self._hot, interner=self._interner)
        return self._hot_index

    def _warm_chunks(self) -> List[CorpusIndex]:
        """Every warm chunk, oldest span first."""
        return [
            chunk
            for span in sorted(self._warm)
            for chunk in self._warm[span]
        ]

    @property
    def tier_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-tier posts/segments/footprint rows (see ``segment_stats``)."""
        warm_chunks = self._warm_chunks()
        return {
            "hot": {
                "posts": len(self._hot),
                "spans": len(
                    {
                        self._span_of(post.created_at.toordinal())
                        for post in self._hot
                    }
                ),
                "indexed": self._hot_index is not None,
            },
            "warm": {
                "posts": self._warm_count,
                "spans": len(self._warm),
                "chunks": len(warm_chunks),
                "arena_chars": sum(
                    chunk.columns.arena_chars for chunk in warm_chunks
                ),
                "last_seal_append": self._last_hot_seal_append,
                "last_consolidation_append": self._last_consolidation_append,
            },
            "cold": {
                "posts": self._cold_count,
                "segments": len(self._cold),
                "spilled": sum(
                    1 for segment in self._cold if segment.store_key is not None
                ),
                "sidecars": sum(
                    1 for segment in self._cold if segment.sidecar is not None
                ),
                "sidecar_entries": sum(
                    segment.sidecar.entries
                    for segment in self._cold
                    if segment.sidecar is not None
                ),
                "last_seal_append": self._last_cold_seal_append,
            },
        }

    @property
    def segment_stats(self) -> Dict[str, object]:
        """Flat-compatible counters plus the per-tier rows.

        ``base_posts``/``tail_posts``/``compactions`` keep the flat
        index's meaning (retained-sealed/hot/maintenance-events), so
        policy audits like the replay harness's bounded-memory check
        read tiered stats unchanged.  ``base_arena_chars`` counts only
        *warm* arenas — cold segments hold no arena, which is the
        memory reclaim this layout exists for.
        """
        warm_chunks = self._warm_chunks()
        return {
            "base_posts": self._warm_count + self._cold_count,
            "tail_posts": len(self._hot),
            "appends": self._appends,
            "compactions": self._hot_seals
            + self._consolidations
            + self._cold_seals,
            "compact_threshold": self._compact_threshold,
            "compact_ratio": self._compact_ratio,
            "base_arena_chars": sum(
                chunk.columns.arena_chars for chunk in warm_chunks
            ),
            "base_distinct_terms": sum(
                chunk.columns.distinct_terms for chunk in warm_chunks
            ),
            "interned_texts": len(self._interner),
            "layout": "tiered",
            "warm_span_days": self._warm_span_days,
            "cold_age_days": self._cold_age_days,
            "hot_seals": self._hot_seals,
            "consolidations": self._consolidations,
            "cold_seals": self._cold_seals,
            "interner_evicted": self._interner_evicted,
            "store": self._store.stats if self._store is not None else None,
            "tiers": self.tier_stats,
        }

    def __len__(self) -> int:
        return len(self._hot) + self._warm_count + self._cold_count

    def __contains__(self, post_id: str) -> bool:
        return post_id in self._ids

    @property
    def posts(self) -> Tuple[Post, ...]:
        """All posts in global ``(created_at, post_id)`` order.

        Materializes every cold segment — the replay-parity path, not a
        monitoring-loop path.
        """
        lists: List[Sequence[Post]] = [
            tuple(self._materialize(segment).all_posts())
            for segment in self._cold
        ]
        lists.extend(chunk.posts for chunk in self._warm_chunks())
        lists.append(self._hot_segment().posts)
        return tuple(heap_merge(*lists, key=_SORT_KEY))

    @property
    def distinct_terms(self) -> int:
        """Distinct indexed terms across the retained tiers (upper
        bound; cold segments hold no postings and are excluded)."""
        total = self._hot_segment().distinct_terms
        for chunk in self._warm_chunks():
            total += chunk.distinct_terms
        return total

    # -- queries ------------------------------------------------------------

    def search_many(
        self,
        keywords: Sequence[str],
        *,
        since: Optional[dt.date] = None,
        until: Optional[dt.date] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, List[Post]]:
        """Batch keyword search, identical to a from-scratch rebuild.

        The window routes to the tiers it overlaps: the hot tail always
        answers, warm chunks answer when their date range intersects,
        and cold segments materialize (into throwaway pools) only when
        the window actually reaches them.  Per keyword the per-segment
        result lists (each date-sorted) k-way merge on the global sort
        key and truncate to ``limit``.
        """
        since_ord = None if since is None else since.toordinal()
        until_ord = None if until is None else until.toordinal()
        segments: List[CorpusIndex] = []
        for segment in self._cold:
            if segment.overlaps(since_ord, until_ord):
                segments.append(CorpusIndex(columns=self._materialize(segment)))
        for chunk in self._warm_chunks():
            count = len(chunk)
            if count == 0:
                continue
            lo_ord = chunk.columns.date_ordinal(0)
            hi_ord = chunk.columns.date_ordinal(count - 1)
            if since_ord is not None and hi_ord < since_ord:
                continue
            if until_ord is not None and lo_ord > until_ord:
                continue
            segments.append(chunk)
        segments.append(self._hot_segment())
        per_segment = [
            segment.search_many(keywords, since=since, until=until)
            for segment in segments
        ]
        merged: Dict[str, List[Post]] = {}
        for keyword in per_segment[-1]:
            combined = list(
                heap_merge(
                    *(results[keyword] for results in per_segment),
                    key=_SORT_KEY,
                )
            )
            merged[keyword] = (
                combined[:limit] if limit is not None else combined
            )
        return merged

    def matching(self, keyword: str) -> List[Post]:
        """All posts matching one keyword (no window), oldest first."""
        return self.search_many((keyword,))[keyword]

    def as_corpus_index(self) -> CorpusIndex:
        """A from-scratch immutable snapshot of every retained post.

        Built into its own fresh pool — pinning cold analyses in the
        shared interner would undo the cold seals' reclaim.
        """
        return CorpusIndex(self.posts)

    # -- keyword backfill ---------------------------------------------------

    def retained_texts(self) -> List[str]:
        """Hot + warm post texts, for keyword learning.

        Cold segments are deliberately excluded: learning mines *recent*
        chatter for emerging hashtags, and sweeping frozen history would
        re-materialize every cold segment per retune.
        """
        texts: List[str] = []
        for chunk in self._warm_chunks():
            texts.extend(chunk.columns.iter_texts())
        texts.extend(post.text for post in self._hot)
        return texts

    def adopt_sidecar_keywords(self, keywords: Sequence[str]) -> None:
        """Grow the keyword universe future cold seals sweep."""
        self._sidecar_keywords = tuple(keywords)

    def signal_backfill(
        self,
        keywords: Sequence[str],
        *,
        region: Optional[str] = None,
        analyzer=None,
    ) -> SignalDelta:
        """The retained corpus's aggregate sums for ``keywords``.

        The streaming-learning backfill kernel: returns a
        :class:`SignalDelta` with ``observed == 0`` (the tracker already
        counted these posts) carrying the keywords' bucket sums and
        voice votes over *every* tier.  All tiers must contribute —
        voice votes are full-history and region-unscoped, so skipping a
        tier would misclassify the learned keyword.  Cold segments
        answer from their sidecars, extending them lazily (one
        materialization per segment missing the keyword) — the
        "rebuild the sidecar for the new keyword" path.  Sidecar
        extension always uses the index's own sidecar region/analyzer
        context so a sidecar stays internally consistent; the caller's
        ``region``/``analyzer`` must match it (the runtime constructs
        the index from the tracker's context, so they do).
        """
        deltas: List[SignalDelta] = []
        for segment in self._cold:
            sidecar = segment.sidecar
            if sidecar is not None:
                if sidecar.missing(keywords):
                    sidecar.extend(
                        keywords,
                        self._materialize(segment),
                        region=self._sidecar_region,
                        analyzer=self._sidecar_analyzer,
                    )
                deltas.append(
                    sidecar.as_delta(keywords, count_observed=False)
                )
            else:
                deltas.append(
                    compute_signal_delta_columnar(
                        keywords,
                        self._materialize(segment),
                        region=region,
                        analyzer=analyzer,
                    )
                )
        for chunk in self._warm_chunks():
            deltas.append(
                compute_signal_delta_columnar(
                    keywords, chunk.columns, region=region, analyzer=analyzer
                )
            )
        deltas.append(
            compute_signal_delta(
                keywords, self._hot, region=region, analyzer=analyzer
            )
        )
        merged = SignalDelta.merge(deltas)
        return SignalDelta(
            buckets=merged.buckets,
            votes=merged.votes,
            dirty=merged.dirty,
            observed=0,
        )

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-serialisable snapshot, tier structure preserved.

        Hot serialises in arrival order, warm chunks as their plain
        columnar dicts, cold segments from their already-compact raw
        columns plus sidecar state — serialising a cold tier is a
        list conversion, never a re-index or re-analysis.
        """
        # Warm-chunk texts are pooled deterministically (chunk builds
        # intern them; loads re-intern them), but a hot post's text is
        # pooled only once something analyzed it — a seal, a query.
        # Record which hot texts are pooled so a restore reproduces the
        # pool exactly instead of approximating it.
        pooled = set(self._interner.texts())
        interned_hot = sorted(
            {post.text for post in self._hot if post.text in pooled}
        )
        return {
            "layout": "tiered",
            "hot": posts_to_columns(self._hot),
            "interned_hot_texts": interned_hot,
            "warm": [
                {
                    "span": span,
                    "chunks": [
                        chunk.columns.state_dict()
                        for chunk in self._warm[span]
                    ],
                }
                for span in sorted(self._warm)
            ],
            "cold": [
                {
                    "span": segment.span,
                    "columns": (
                        None
                        if segment.columns_state is None
                        else _plain_columns(segment.columns_state)
                    ),
                    "store_key": segment.store_key,
                    "sidecar": (
                        segment.sidecar.state_dict()
                        if segment.sidecar is not None
                        else None
                    ),
                    "count": segment.count,
                    "min_ord": segment.min_ord,
                    "max_ord": segment.max_ord,
                }
                for segment in self._cold
            ],
            "appends": self._appends,
            "hot_seals": self._hot_seals,
            "consolidations": self._consolidations,
            "cold_seals": self._cold_seals,
            "interner_evicted": self._interner_evicted,
            "last_hot_seal_append": self._last_hot_seal_append,
            "last_consolidation_append": self._last_consolidation_append,
            "last_cold_seal_append": self._last_cold_seal_append,
            "max_ord": self._max_ord,
            "compact_threshold": self._compact_threshold,
            "compact_ratio": self._compact_ratio,
            "warm_span_days": self._warm_span_days,
            "cold_age_days": self._cold_age_days,
        }

    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot exactly.

        The snapshot's retention policy and tier split are adopted
        wholesale — a resumed index must seal and consolidate at
        exactly the moments the uninterrupted run would.  The sidecar
        analyzer/region context is *not* part of the snapshot; the
        owning runtime re-supplies it at construction.
        """
        if state.get("layout") != "tiered":
            raise ValueError(
                "snapshot is not a tiered-index state_dict (missing "
                "layout='tiered'); use StreamingCorpusIndex.load_state"
            )
        self._compact_threshold = int(state["compact_threshold"])  # type: ignore[arg-type]
        ratio = state.get("compact_ratio")
        self._compact_ratio = None if ratio is None else float(ratio)  # type: ignore[arg-type]
        self._warm_span_days = int(state["warm_span_days"])  # type: ignore[arg-type]
        self._cold_age_days = int(state["cold_age_days"])  # type: ignore[arg-type]
        self._interner = TextInterner()
        self._hot = columns_to_posts(state["hot"])  # type: ignore[arg-type]
        self._hot_index = None
        self._warm = {}
        self._warm_count = 0
        for entry in state["warm"]:  # type: ignore[union-attr]
            span = int(entry["span"])
            chunks = [
                CorpusIndex(
                    columns=ColumnarCorpus.from_state(
                        chunk_state, interner=self._interner
                    )
                )
                for chunk_state in entry["chunks"]
            ]
            self._warm[span] = chunks
            self._warm_count += sum(len(chunk) for chunk in chunks)
        # Re-pin the hot texts the snapshot recorded as pooled (idempotent
        # for texts the warm chunks above already interned).
        for text in state.get("interned_hot_texts", ()):
            self._interner.analysis(text)
        self._cold = []
        self._cold_count = 0
        self._resident_cache.clear()
        cold_ids: List[str] = []
        for entry in state["cold"]:  # type: ignore[union-attr]
            sidecar_state = entry.get("sidecar")
            store_key = entry.get("store_key")
            columns = entry.get("columns")
            columns_state: Optional[Dict[str, object]] = None
            if store_key is not None:
                # Spilled snapshot: the columns live only in the store.
                if self._store is None:
                    raise StoreError(
                        f"snapshot references spilled segment {store_key!r} "
                        "but the index has no segment store attached; "
                        "restore with the checkpoint's spill directory "
                        "(spill_dir / --spill-dir)"
                    )
                if store_key not in self._store:
                    raise StoreError(
                        f"snapshot references spilled segment {store_key!r} "
                        "missing from the store at "
                        f"{self._store.directory}"
                    )
                cold_ids.extend(self._store.load_post_ids(str(store_key)))
            else:
                compact = _compact_columns(columns)  # type: ignore[arg-type]
                cold_ids.extend(compact["post_ids"])  # type: ignore[arg-type]
                if self._store is not None:
                    # Resident snapshot restored onto a spilling index:
                    # re-spill so the restored run sheds the same memory.
                    store_key = self._store.spill(
                        compact, span=int(entry["span"])
                    )
                else:
                    columns_state = compact
            self._cold.append(
                _ColdSegment(
                    span=int(entry["span"]),
                    columns_state=columns_state,
                    sidecar=(
                        SegmentSidecar.from_state(sidecar_state)
                        if sidecar_state is not None
                        else None
                    ),
                    count=int(entry["count"]),
                    min_ord=int(entry["min_ord"]),
                    max_ord=int(entry["max_ord"]),
                    store_key=None if store_key is None else str(store_key),
                )
            )
            self._cold_count += int(entry["count"])
        self._ids = {post.post_id for post in self._hot}
        for chunks in self._warm.values():
            for chunk in chunks:
                self._ids.update(
                    chunk.columns.post_id(position)
                    for position in range(len(chunk))
                )
        self._ids.update(cold_ids)
        self._appends = int(state["appends"])  # type: ignore[arg-type]
        self._hot_seals = int(state["hot_seals"])  # type: ignore[arg-type]
        self._consolidations = int(state["consolidations"])  # type: ignore[arg-type]
        self._cold_seals = int(state["cold_seals"])  # type: ignore[arg-type]
        self._interner_evicted = int(state["interner_evicted"])  # type: ignore[arg-type]
        last_hot = state.get("last_hot_seal_append")
        last_cons = state.get("last_consolidation_append")
        last_cold = state.get("last_cold_seal_append")
        self._last_hot_seal_append = None if last_hot is None else int(last_hot)  # type: ignore[arg-type]
        self._last_consolidation_append = (
            None if last_cons is None else int(last_cons)  # type: ignore[arg-type]
        )
        self._last_cold_seal_append = (
            None if last_cold is None else int(last_cold)  # type: ignore[arg-type]
        )
        self._max_ord = int(state["max_ord"])  # type: ignore[arg-type]


def build_stream_index(
    posts: Iterable[Post] = (),
    *,
    compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
    compact_ratio: Optional[float] = None,
    warm_span_days: Optional[int] = None,
    cold_age_days: Optional[int] = None,
    sidecar_keywords: Optional[Sequence[str]] = None,
    sidecar_region: Optional[str] = None,
    sidecar_analyzer=None,
    store: Optional[SegmentStore] = None,
    spill_dir=None,
    max_resident_cold: Optional[int] = None,
    metrics=None,
):
    """The runtime's index factory: flat by default, tiered on request.

    With both retention knobs unset the flat
    :class:`~repro.stream.index.StreamingCorpusIndex` is returned —
    byte-identical behaviour and checkpoints to every prior release.
    Setting either knob returns a :class:`TieredCorpusIndex` (the unset
    knob takes its default).  ``spill_dir`` opens (or adopts) a
    :class:`~repro.stream.store.SegmentStore` there and attaches it so
    cold seals spill to disk; pass ``store`` instead to share one store
    instance across several indexes (sharded runtimes).  ``metrics``
    threads the owning runtime's telemetry registry into either index
    flavour (and a ``spill_dir``-opened store).
    """
    if warm_span_days is None and cold_age_days is None:
        if store is not None or spill_dir is not None or max_resident_cold is not None:
            raise ValueError(
                "spill-to-disk requires tiered retention: set warm_span_days "
                "or cold_age_days (--warm-span/--cold-age) alongside "
                "spill_dir/max_resident_cold"
            )
        return StreamingCorpusIndex(
            posts,
            compact_threshold=compact_threshold,
            compact_ratio=compact_ratio,
            metrics=metrics,
        )
    if store is None and spill_dir is not None:
        store = SegmentStore(
            spill_dir,
            max_resident_cold=(
                DEFAULT_MAX_RESIDENT_COLD
                if max_resident_cold is None
                else max_resident_cold
            ),
            metrics=metrics,
        )
    return TieredCorpusIndex(
        posts,
        compact_threshold=compact_threshold,
        compact_ratio=compact_ratio,
        warm_span_days=(
            DEFAULT_WARM_SPAN_DAYS if warm_span_days is None else warm_span_days
        ),
        cold_age_days=(
            DEFAULT_COLD_AGE_DAYS if cold_age_days is None else cold_age_days
        ),
        sidecar_keywords=sidecar_keywords,
        sidecar_region=sidecar_region,
        sidecar_analyzer=sidecar_analyzer,
        store=store,
        max_resident_cold=max_resident_cold,
        metrics=metrics,
    )
