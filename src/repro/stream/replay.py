"""Long-horizon scenario replay with batch-parity and resume audits.

The streaming runtimes (PR 4/5) claim three invariants the unit tests
only probe pointwise:

1. **Alert parity** — months of incremental ticks raise exactly the
   trend alerts a growing-window batch :class:`~repro.core.monitor.
   PSPMonitor` raises at the same boundaries;
2. **Checkpoint parity** — stopping mid-run, persisting (file base +
   cumulative delta chain for the single runtime, ``state_dict`` for the
   sharded one) and resuming yields the same remaining alerts and the
   same final table as the uninterrupted run;
3. **Bounded memory** — the appendable index's tail segment stays under
   its compaction policy no matter how long the replay runs.

This module drives any registered :class:`~repro.social.registry.
ScenarioSpec` through a month-by-month (or quarter/year) replay and
audits all three invariants in one pass, producing a
:class:`ReplayReport`.  Adversarial overlays are honoured: platform
outage windows delay arrivals (parity is asserted outside the outage
shadow and re-asserted at the catch-up boundary), and poisoning bursts
are audited by :func:`replay_poison_defence` — the default authenticity
filter must reject every injected post and leave the alert stream
untouched.

The harness is what the CLI's ``repro replay`` runs and what the
acceptance tests in ``tests/stream/test_replay.py`` assert over the
whole registry.
"""

from __future__ import annotations

import calendar
import datetime as dt
import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import PSPConfig
from repro.core.timewindow import TimeWindow
from repro.core.framework import PSPFramework
from repro.core.monitor import PSPMonitor, TrendAlert
from repro.core.poisoning import PostAuthenticityFilter
from repro.obs import views as obs_views
from repro.obs.registry import ensure_registry
from repro.social.post import Post
from repro.social.registry import ScenarioSpec, get_scenario
from repro.social.resilience import TransientPlatformError
from repro.stream.checkpoint import CheckpointRotation, restore_runtime
from repro.stream.feed import PostEvent, SyntheticFeed
from repro.stream.runtime import StreamRuntime
from repro.stream.sharding import (
    ShardedStreamRuntime,
    _stable_bucket,
    shard_feeds,
)

__all__ = [
    "BestEffortFeed",
    "DelayedFeed",
    "FlakyFeed",
    "PoisonDefenceReport",
    "ReplayReport",
    "RetryingFeed",
    "month_boundaries",
    "replay_poison_defence",
    "replay_scenario",
]

#: Default compaction policy for replay runtimes — deliberately tight so
#: the bounded-memory invariant is exercised (and checked) every run.
REPLAY_COMPACT_THRESHOLD = 64
REPLAY_COMPACT_RATIO = 0.5


def _month_end(year: int, month: int) -> dt.date:
    return dt.date(year, month, calendar.monthrange(year, month)[1])


def month_boundaries(
    start_year: int,
    end_year: int,
    *,
    months: Optional[int] = None,
    cadence: str = "monthly",
) -> List[dt.date]:
    """Tick boundaries for a replay: period-end dates, oldest first.

    Args:
        start_year: first covered year (boundaries start at its January).
        end_year: last covered year (boundaries end at its December).
        months: cap on the number of boundaries (None = full span).
        cadence: ``monthly`` (every month end), ``quarterly``
            (Mar/Jun/Sep/Dec) or ``yearly`` (Dec 31).
    """
    if end_year < start_year:
        raise ValueError(
            f"end_year {end_year} precedes start_year {start_year}"
        )
    if months is not None and months < 1:
        raise ValueError(f"months must be >= 1, got {months}")
    step = {"monthly": 1, "quarterly": 3, "yearly": 12}.get(cadence)
    if step is None:
        raise ValueError(f"unknown cadence {cadence!r}")
    boundaries = [
        _month_end(year, month)
        for year in range(start_year, end_year + 1)
        for month in range(step, 13, step)
    ]
    if months is not None:
        boundaries = boundaries[:months]
    return boundaries


# -- arrival-delaying and failure-injecting feeds -----------------------------


class DelayedFeed:
    """A feed whose events *arrive* later than their posts were created.

    Models platform outages: a post created during an
    :class:`~repro.social.registry.OutageWindow` on its platform is
    withheld until the day after the outage ends, then delivered in the
    backfill together with everything else the outage queued.  Events
    are ordered by ``(arrival, created_at, post_id)`` and
    ``events_after(until=...)`` filters on *arrival*, so a runtime
    driven by boundary dates sees exactly what a live consumer riding
    out the outage would have seen.

    Args:
        posts: the scenario posts (branded ids — the platform prefix
            identifies which outages apply).
        outages: the outage windows to honour.
        platform_of: post → platform name; defaults to the branded-id
            prefix decode.
        metrics: optional :class:`~repro.obs.registry.MetricsRegistry`;
            every outage-delayed event increments
            ``feed_delayed_events_total`` once, here at construction
            (``partition`` children deliberately do *not* re-count).
    """

    def __init__(
        self,
        posts: Sequence[Post],
        outages: Sequence[object] = (),
        *,
        platform_of=None,
        metrics=None,
    ) -> None:
        decode = platform_of or (
            lambda post: post.post_id.partition(":")[0]
        )
        delayed = 0
        entries = []
        for post in posts:
            arrival = post.created_at
            platform = decode(post)
            for outage in outages:
                if outage.platform == platform and outage.covers(
                    post.created_at
                ):
                    backfill = outage.end + dt.timedelta(days=1)
                    if backfill > arrival:
                        arrival = backfill
            if arrival != post.created_at:
                delayed += 1
            entries.append((arrival, post))
        ensure_registry(metrics).counter(
            "feed_delayed_events_total",
            "Events withheld past their creation date by outage windows.",
        ).inc(delayed)
        entries.sort(key=lambda pair: (pair[0], pair[1].created_at,
                                       pair[1].post_id))
        self._arrivals: Tuple[dt.date, ...] = tuple(a for a, _ in entries)
        self._events: Tuple[PostEvent, ...] = tuple(
            PostEvent(seq=position, post=post)
            for position, (_, post) in enumerate(entries)
        )

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> Tuple[PostEvent, ...]:
        """All events, in arrival order."""
        return self._events

    def arrival_of(self, seq: int) -> dt.date:
        """The arrival date of one event."""
        return self._arrivals[seq]

    def events_after(
        self,
        cursor: int,
        *,
        until: Optional[dt.date] = None,
        limit: Optional[int] = None,
    ) -> Tuple[PostEvent, ...]:
        """Events with ``seq > cursor`` whose *arrival* is ``<= until``."""
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        start = max(cursor + 1, 0)
        selected = []
        for event in self._events[start:]:
            if until is not None and self._arrivals[event.seq] > until:
                # Arrival-ordered, so nothing later qualifies either.
                break
            selected.append(event)
            if limit is not None and len(selected) >= limit:
                break
        return tuple(selected)

    def partition(self, shards: int) -> Tuple["DelayedFeed", ...]:
        """Hash-partition into per-shard delayed feeds.

        Routing matches :func:`~repro.stream.sharding.shard_feeds`'s
        default (stable bucket of the post id), so a no-outage scenario
        shards identically whether it goes through this class or the
        plain synthetic feeds.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        buckets: List[List[Tuple[dt.date, Post]]] = [
            [] for _ in range(shards)
        ]
        for event in self._events:
            buckets[_stable_bucket(event.post.post_id, shards)].append(
                (self._arrivals[event.seq], event.post)
            )
        return tuple(
            DelayedFeed._from_entries(bucket) for bucket in buckets
        )

    @classmethod
    def _from_entries(
        cls, entries: Sequence[Tuple[dt.date, Post]]
    ) -> "DelayedFeed":
        feed = cls.__new__(cls)
        feed._arrivals = tuple(arrival for arrival, _ in entries)
        feed._events = tuple(
            PostEvent(seq=position, post=post)
            for position, (_, post) in enumerate(entries)
        )
        return feed


class FlakyFeed:
    """Failure injector: the first ``failures`` polls raise.

    The streaming analogue of :class:`~repro.social.resilience.
    FlakyClient` — used by the resilience tests to prove retry wrappers
    and per-shard degradation around the runtimes.  Injected failures
    increment ``feed_failures_total`` so a degraded replay is visible in
    the telemetry, not just in the wrapper's attributes.
    """

    def __init__(self, inner, *, failures: int = 1, metrics=None) -> None:
        if failures < 0:
            raise ValueError(f"failures must be >= 0, got {failures}")
        self._inner = inner
        self._remaining = failures
        self.polls = 0
        self._failures_total = ensure_registry(metrics).counter(
            "feed_failures_total",
            "Feed polls that raised a transient platform error.",
        )

    def events_after(self, cursor, *, until=None, limit=None):
        self.polls += 1
        if self._remaining > 0:
            self._remaining -= 1
            self._failures_total.inc()
            raise TransientPlatformError(
                f"injected feed outage ({self._remaining} more)"
            )
        return self._inner.events_after(cursor, until=until, limit=limit)


class RetryingFeed:
    """Retry wrapper: re-polls through transient errors, then raises.

    Mirrors :class:`~repro.social.resilience.RetryingClient` for feeds:
    ``max_attempts`` tries per poll, re-raising the last
    :class:`~repro.social.resilience.TransientPlatformError` when the
    budget is exhausted.  Every re-poll increments
    ``feed_retries_total`` — retries used to vanish into the wrapper's
    instance attributes, invisible to anything downstream.
    """

    def __init__(self, inner, *, max_attempts: int = 3, metrics=None) -> None:
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self._inner = inner
        self._max_attempts = max_attempts
        self.attempts = 0
        self.retries = 0
        self._retries_total = ensure_registry(metrics).counter(
            "feed_retries_total",
            "Feed re-polls after a transient platform error.",
        )

    def events_after(self, cursor, *, until=None, limit=None):
        last: Optional[Exception] = None
        for attempt in range(self._max_attempts):
            self.attempts += 1
            if attempt:
                self.retries += 1
                self._retries_total.inc()
            try:
                return self._inner.events_after(
                    cursor, until=until, limit=limit
                )
            except TransientPlatformError as error:
                last = error
        raise last  # type: ignore[misc]


class BestEffortFeed:
    """Degradation wrapper: a failing poll yields an empty batch.

    Mirrors :class:`~repro.social.resilience.BestEffortClient`: one
    platform's persistent outage must not stall the other shards — the
    failing feed simply contributes nothing this tick and the stable
    feed cursor re-offers the missed events next poll.  Each swallowed
    batch increments ``feed_dropped_batches_total``; silent degradation
    was exactly the failure mode the telemetry layer exists to surface.
    """

    def __init__(self, inner, *, metrics=None) -> None:
        self._inner = inner
        self.degraded_polls = 0
        self._dropped_total = ensure_registry(metrics).counter(
            "feed_dropped_batches_total",
            "Feed polls degraded to an empty batch by a platform error.",
        )

    def events_after(self, cursor, *, until=None, limit=None):
        try:
            return self._inner.events_after(cursor, until=until, limit=limit)
        except TransientPlatformError:
            self.degraded_polls += 1
            self._dropped_total.inc()
            return ()


# -- the replay audit ---------------------------------------------------------


def _table_rows(table) -> Optional[Tuple]:
    return table.as_rows() if table is not None else None


def _alert_key(alert: Optional[TrendAlert]):
    if alert is None:
        return None
    return (
        alert.upto_year,
        tuple(
            (change.vector, change.before, change.after)
            for change in alert.changes
        ),
    )


def _segments_bounded(
    stats: Dict[str, object],
    *,
    threshold: int,
    ratio: Optional[float],
) -> bool:
    """Whether one index's tail respects the compaction policy."""
    tail = int(stats["tail_posts"])  # type: ignore[arg-type]
    base = int(stats["base_posts"])  # type: ignore[arg-type]
    if tail >= threshold:
        return False
    if ratio is not None and tail >= ratio * max(1, base):
        return False
    return True


@dataclass
class ReplayReport:
    """Outcome of one long-horizon replay audit."""

    scenario: str
    shards: int
    boundaries: int
    posts: int
    stream_alerts: int
    batch_alerts: int
    retunes: int
    forced_retunes: int
    excluded_boundaries: int
    alert_parity: bool
    table_parity: bool
    sai_parity: bool
    checkpoint_parity: bool
    memory_bounded: bool
    mismatches: List[str] = field(default_factory=list)
    #: Per-stage tick latency rollup (stage → count/total_seconds/mean_ms)
    #: from the replay's metrics registry; empty on the NullRegistry path.
    stage_latencies: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: ``feed_*`` counter totals (retries, dropped batches, delays) the
    #: wrapped feeds recorded; empty on the NullRegistry path.
    feed_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every audited invariant held."""
        return (
            self.alert_parity
            and self.table_parity
            and self.sai_parity
            and self.checkpoint_parity
            and self.memory_bounded
        )

    def describe(self) -> str:
        """Multi-line human-readable audit summary."""
        def flag(value: bool) -> str:
            return "ok" if value else "FAIL"

        lines = [
            f"replay {self.scenario}: {self.boundaries} boundaries, "
            f"{self.posts} posts, {self.shards} shard(s)",
            f"  alerts: stream {self.stream_alerts} / batch "
            f"{self.batch_alerts}; retunes {self.retunes} "
            f"({self.forced_retunes} staleness-forced)",
            f"  alert parity      {flag(self.alert_parity)}"
            + (
                f" ({self.excluded_boundaries} outage-shadow boundaries "
                "excluded)"
                if self.excluded_boundaries
                else ""
            ),
            f"  table parity      {flag(self.table_parity)}",
            f"  sai parity        {flag(self.sai_parity)}",
            f"  checkpoint parity {flag(self.checkpoint_parity)}",
            f"  bounded memory    {flag(self.memory_bounded)}",
        ]
        if self.feed_counters:
            rendered = ", ".join(
                f"{name}={value}"
                for name, value in sorted(self.feed_counters.items())
            )
            lines.append(f"  feed: {rendered}")
        for stage, row in sorted(self.stage_latencies.items()):
            lines.append(
                f"  stage {stage:<12} {row['count']:>6.0f} spans, "
                f"mean {row['mean_ms']:.3f} ms"
            )
        for mismatch in self.mismatches:
            lines.append(f"  ! {mismatch}")
        lines.append(f"  verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _resolve(scenario: Union[str, ScenarioSpec]) -> ScenarioSpec:
    if isinstance(scenario, ScenarioSpec):
        return scenario
    return get_scenario(scenario)


def _build_stream(
    spec: ScenarioSpec,
    posts: Sequence[Post],
    *,
    shards: int,
    workers: Optional[int],
    config: Optional[PSPConfig],
    post_filter: Optional[PostAuthenticityFilter] = None,
    warm_span_days: Optional[int] = None,
    cold_age_days: Optional[int] = None,
    spill_dir=None,
    max_resident_cold: Optional[int] = None,
    metrics=None,
):
    """A fresh replay runtime (single or sharded) plus fresh feeds.

    Spill keys are content-addressed, so every sub-run of one replay
    (the uninterrupted reference, the SAI recompute, the checkpoint
    resume) can share one ``spill_dir`` without collisions.
    """
    database = spec.database()
    kwargs = dict(
        target=spec.target,
        config=config,
        since_year=spec.start_year,
        post_filter=post_filter,
        compact_threshold=REPLAY_COMPACT_THRESHOLD,
        compact_ratio=REPLAY_COMPACT_RATIO,
        warm_span_days=warm_span_days,
        cold_age_days=cold_age_days,
        spill_dir=spill_dir,
        max_resident_cold=max_resident_cold,
        metrics=metrics,
    )
    if spec.outages:
        merged = DelayedFeed(posts, spec.outages, metrics=metrics)
        feeds = merged.partition(shards) if shards > 1 else (merged,)
    elif shards > 1:
        feeds = shard_feeds(posts, shards)
    else:
        feeds = (SyntheticFeed(posts),)
    if shards > 1:
        runtime = ShardedStreamRuntime(
            feeds, database, workers=workers, **kwargs
        )
    else:
        runtime = StreamRuntime(feeds[0], database, **kwargs)
    return runtime, feeds, database


def replay_scenario(
    scenario: Union[str, ScenarioSpec],
    *,
    months: Optional[int] = None,
    shards: int = 2,
    workers: Optional[int] = None,
    config: Optional[PSPConfig] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    warm_span_days: Optional[int] = None,
    cold_age_days: Optional[int] = None,
    spill_dir=None,
    max_resident_cold: Optional[int] = None,
    metrics=None,
) -> ReplayReport:
    """Drive one scenario through the full three-invariant audit.

    Args:
        scenario: a registered scenario name or an explicit spec.
        months: number of tick boundaries to replay (None = the
            scenario's full span).
        shards: feed shards for the streaming side (1 = single
            runtime with file-based checkpoints; >1 = sharded runtime
            with ``state_dict`` checkpoints).
        workers: executor parallelism for shard ingest.
        config: pipeline tunables shared by both sides.
        checkpoint_dir: where mid-run checkpoints are written
            (``shards == 1`` only); a temp directory by default.
        warm_span_days / cold_age_days: retention knobs; setting either
            replays on tiered indexes (hot/warm/cold with sidecars)
            instead of the flat streaming index, with every audit —
            parity, checkpoint resume, bounded memory — unchanged.
        spill_dir / max_resident_cold: when ``spill_dir`` is set (tiered
            retention required), cold seals spill their columns into a
            :class:`~repro.stream.store.SegmentStore` there; every
            sub-run of the audit (reference, SAI recompute, checkpoint
            resume) shares the directory — spill keys are
            content-addressed, so the runs are collision-free and the
            resumed runtime re-attaches the very segments the
            uninterrupted run spilled.
        metrics: optional :class:`~repro.obs.registry.MetricsRegistry`
            instrumenting the *uninterrupted* streaming run (the
            checkpoint-resume and SAI-recompute side runs stay
            uninstrumented so counters aren't double-counted).  Audit
            verdicts land in ``replay_audit_outcomes_total`` and the
            report carries per-stage latencies and ``feed_*`` totals.

    The batch side is a cached :class:`~repro.core.framework.
    PSPFramework` driven by :meth:`~repro.core.monitor.PSPMonitor.
    tick_date` at the same boundaries — the reference the paper's batch
    pipeline defines.  Outage shadows are excluded from per-boundary
    parity and convergence is re-asserted at the catch-up boundary.
    """
    spec = _resolve(scenario)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    boundaries = month_boundaries(
        spec.start_year,
        spec.end_year,
        months=months,
        cadence=spec.arrival_cadence,
    )
    posts = list(spec.corpus().posts)
    mismatches: List[str] = []

    # Outage shadow: boundaries inside any outage window see fewer
    # arrivals than the batch reference; the first boundary after an
    # outage (the catch-up) sees everything again, but its *alert* may
    # merge changes the batch raised during the shadow.
    shadow = {
        boundary
        for boundary in boundaries
        for outage in spec.outages
        if outage.start <= boundary <= outage.end
    }
    catchup = set()
    for outage in spec.outages:
        for boundary in boundaries:
            if boundary > outage.end:
                catchup.add(boundary)
                break

    # -- batch reference ----------------------------------------------------
    framework = PSPFramework(
        spec.client(),
        spec.target,
        database=spec.database(),
        config=config,
        cache=True,
    )
    monitor = PSPMonitor(framework, start_year=spec.start_year)
    batch_alerts: Dict[dt.date, Optional[TrendAlert]] = {}
    batch_tables: Dict[dt.date, Optional[Tuple]] = {}
    for boundary in boundaries:
        batch_alerts[boundary] = monitor.tick_date(boundary)
        batch_tables[boundary] = _table_rows(monitor.current_table)

    # -- streaming run (uninterrupted reference + mid-run checkpoints) ------
    registry = ensure_registry(metrics)
    runtime, _, _ = _build_stream(
        spec, posts, shards=shards, workers=workers, config=config,
        warm_span_days=warm_span_days, cold_age_days=cold_age_days,
        spill_dir=spill_dir, max_resident_cold=max_resident_cold,
        metrics=metrics,
    )
    count = len(boundaries)
    base_at = count // 3 if count >= 3 else None
    delta_at = (2 * count) // 3 if count >= 3 else None
    owns_tmp = checkpoint_dir is None and shards == 1
    tmp = tempfile.TemporaryDirectory() if owns_tmp else None
    rotation: Optional[CheckpointRotation] = None
    sharded_state: Optional[str] = None

    stream_alerts: Dict[dt.date, Optional[TrendAlert]] = {}
    stream_tables: Dict[dt.date, Optional[Tuple]] = {}
    memory_bounded = True
    last_retuned: Optional[dt.date] = None
    try:
        for position, boundary in enumerate(boundaries):
            tick = runtime.advance_to(boundary, upto_year=boundary.year)
            stream_alerts[boundary] = tick.alert
            stream_tables[boundary] = _table_rows(runtime.current_table)
            if tick.retuned and boundary not in shadow:
                last_retuned = boundary
            stats = runtime.stream_stats
            if shards > 1:
                indexes = [s["index"] for s in stats["shard_stats"]]
            else:
                indexes = [stats["index"]]
            for index_stats in indexes:
                if not _segments_bounded(
                    index_stats,
                    threshold=REPLAY_COMPACT_THRESHOLD,
                    ratio=REPLAY_COMPACT_RATIO,
                ):
                    memory_bounded = False
                    mismatches.append(
                        f"{boundary}: index tail outgrew the compaction "
                        f"policy: {index_stats}"
                    )
            if position == base_at:
                if shards == 1:
                    directory = Path(
                        checkpoint_dir if checkpoint_dir is not None
                        else tmp.name  # type: ignore[union-attr]
                    )
                    # Generous ratio: months of arrivals dirty most
                    # keywords, and the audit wants the restore to go
                    # through the base+delta chain, not a rotated base.
                    rotation = CheckpointRotation(
                        runtime, directory, max_delta_ratio=10.0
                    )
                    rotation.save()
            elif position == delta_at:
                if shards == 1 and rotation is not None:
                    rotation.save()
                else:
                    sharded_state = json.dumps(runtime.state_dict())
        final_table = _table_rows(runtime.current_table)
        final_sai = (
            runtime.current_result.sai.as_rows()
            if runtime.current_result is not None
            else None
        )
        stream_stats = runtime.stream_stats
    finally:
        runtime.close()

    # -- alert + table parity ----------------------------------------------
    alert_parity = True
    table_parity = True
    for boundary in boundaries:
        if boundary not in shadow:
            if batch_tables[boundary] != stream_tables[boundary]:
                table_parity = False
                mismatches.append(
                    f"{boundary}: insider table diverged from batch"
                )
        if boundary in shadow or boundary in catchup:
            continue
        if _alert_key(batch_alerts[boundary]) != _alert_key(
            stream_alerts[boundary]
        ):
            alert_parity = False
            mismatches.append(
                f"{boundary}: alert mismatch (batch "
                f"{_alert_key(batch_alerts[boundary])!r} vs stream "
                f"{_alert_key(stream_alerts[boundary])!r})"
            )
    if spec.outages and boundaries:
        # Convergence: once every queued arrival has landed the stream
        # must agree with the batch reference again.
        final_boundary = boundaries[-1]
        if final_boundary not in shadow and (
            batch_tables[final_boundary] != stream_tables[final_boundary]
        ):
            table_parity = False
            mismatches.append("final boundary never converged to batch")

    # -- SAI parity at the last (non-shadow) retuned boundary ---------------
    sai_parity = True
    if last_retuned is not None and final_sai is not None:
        window = TimeWindow(
            since=dt.date(spec.start_year, 1, 1),
            until=last_retuned,
            label=f"replay..{last_retuned.isoformat()}",
        )
        batch_sai = framework.run(window, learn=False).sai.as_rows()
        # The stream's current result is from its last retune; compare
        # against the batch pipeline run over the same window.
        stream_sai = final_sai
        if last_retuned == boundaries[-1] and batch_sai != stream_sai:
            sai_parity = False
            mismatches.append(
                f"{last_retuned}: SAI rows diverged from a fresh batch run"
            )
        elif last_retuned != boundaries[-1]:
            # The final ticks skipped retuning (clean-table quiet tail);
            # the staleness policy bounds how far the cached SAI may lag,
            # and the insider-table parity above already pinned the
            # rating outcome, so only audit when the last retune is
            # final.  Recompute at the retune boundary for the record.
            if batch_sai != _sai_at(
                spec, posts, last_retuned, shards=shards, workers=workers,
                config=config, warm_span_days=warm_span_days,
                cold_age_days=cold_age_days, spill_dir=spill_dir,
                max_resident_cold=max_resident_cold,
            ):
                sai_parity = False
                mismatches.append(
                    f"{last_retuned}: SAI rows diverged at last retune"
                )

    # -- checkpoint parity --------------------------------------------------
    checkpoint_parity = True
    resume_from = delta_at
    try:
        if resume_from is not None and (
            rotation is not None or sharded_state is not None
        ):
            resumed, _, _ = _restore_stream(
                spec,
                posts,
                shards=shards,
                workers=workers,
                config=config,
                rotation=rotation,
                sharded_state=sharded_state,
                warm_span_days=warm_span_days,
                cold_age_days=cold_age_days,
                spill_dir=spill_dir,
                max_resident_cold=max_resident_cold,
            )
            try:
                for boundary in boundaries[resume_from + 1 :]:
                    tick = resumed.advance_to(
                        boundary, upto_year=boundary.year
                    )
                    expected = _alert_key(stream_alerts[boundary])
                    actual = _alert_key(tick.alert)
                    if expected != actual:
                        checkpoint_parity = False
                        mismatches.append(
                            f"{boundary}: resumed run raised "
                            f"{actual!r}, uninterrupted raised "
                            f"{expected!r}"
                        )
                if _table_rows(resumed.current_table) != final_table:
                    checkpoint_parity = False
                    mismatches.append(
                        "resumed run's final table diverged from the "
                        "uninterrupted run"
                    )
            finally:
                resumed.close()
    finally:
        if tmp is not None:
            tmp.cleanup()

    stream_alert_count = sum(
        1 for alert in stream_alerts.values() if alert is not None
    )
    batch_alert_count = sum(
        1 for alert in batch_alerts.values() if alert is not None
    )

    # -- audit outcomes as metrics ------------------------------------------
    audit_counter = registry.counter(
        "replay_audit_outcomes_total",
        "Replay invariant audits by verdict.",
        labelnames=("invariant", "outcome"),
    )
    for invariant, held in (
        ("alert_parity", alert_parity),
        ("table_parity", table_parity),
        ("sai_parity", sai_parity),
        ("checkpoint_parity", checkpoint_parity),
        ("memory_bounded", memory_bounded),
    ):
        audit_counter.inc(
            invariant=invariant, outcome="pass" if held else "fail"
        )
    registry.counter(
        "replay_boundaries_total", "Tick boundaries replayed."
    ).inc(len(boundaries))
    stage_latencies: Dict[str, Dict[str, float]] = {}
    feed_counters: Dict[str, int] = {}
    if registry.enabled:
        stage_latencies = obs_views.stage_latencies(registry)
        for name, instrument in registry.collect().items():
            if name.startswith("feed_") and instrument.kind == "counter":
                feed_counters[name] = int(
                    sum(instrument.samples().values())
                )
    return ReplayReport(
        scenario=spec.name,
        shards=shards,
        boundaries=len(boundaries),
        posts=len(posts),
        stream_alerts=stream_alert_count,
        batch_alerts=batch_alert_count,
        retunes=int(stream_stats["retunes"]),  # type: ignore[arg-type]
        forced_retunes=int(stream_stats["forced_retunes"]),  # type: ignore[arg-type]
        excluded_boundaries=len(shadow | catchup),
        alert_parity=alert_parity,
        table_parity=table_parity,
        sai_parity=sai_parity,
        checkpoint_parity=checkpoint_parity,
        memory_bounded=memory_bounded,
        mismatches=mismatches,
        stage_latencies=stage_latencies,
        feed_counters=feed_counters,
    )


def _sai_at(
    spec: ScenarioSpec,
    posts: Sequence[Post],
    boundary: dt.date,
    *,
    shards: int,
    workers: Optional[int],
    config: Optional[PSPConfig],
    warm_span_days: Optional[int] = None,
    cold_age_days: Optional[int] = None,
    spill_dir=None,
    max_resident_cold: Optional[int] = None,
):
    """The stream's SAI rows when replayed fresh up to one boundary."""
    runtime, _, _ = _build_stream(
        spec, posts, shards=shards, workers=workers, config=config,
        warm_span_days=warm_span_days, cold_age_days=cold_age_days,
        spill_dir=spill_dir, max_resident_cold=max_resident_cold,
    )
    try:
        runtime.advance_to(boundary, upto_year=boundary.year)
        result = runtime.current_result
        return result.sai.as_rows() if result is not None else None
    finally:
        runtime.close()


def _restore_stream(
    spec: ScenarioSpec,
    posts: Sequence[Post],
    *,
    shards: int,
    workers: Optional[int],
    config: Optional[PSPConfig],
    rotation: Optional[CheckpointRotation],
    sharded_state: Optional[str],
    warm_span_days: Optional[int] = None,
    cold_age_days: Optional[int] = None,
    spill_dir=None,
    max_resident_cold: Optional[int] = None,
):
    """Rebuild a runtime from the mid-run checkpoint artifacts."""
    if shards == 1:
        assert rotation is not None
        source, base = rotation.restore_sources()
        database = spec.database()
        if spec.outages:
            feed = DelayedFeed(posts, spec.outages)
        else:
            feed = SyntheticFeed(posts)
        runtime = restore_runtime(
            source,
            feed,
            database,
            base=base,
            target=spec.target,
            config=config,
            compact_threshold=REPLAY_COMPACT_THRESHOLD,
            compact_ratio=REPLAY_COMPACT_RATIO,
            warm_span_days=warm_span_days,
            cold_age_days=cold_age_days,
            spill_dir=spill_dir,
            max_resident_cold=max_resident_cold,
        )
        return runtime, (feed,), database
    assert sharded_state is not None
    runtime, feeds, database = _build_stream(
        spec, posts, shards=shards, workers=workers, config=config,
        warm_span_days=warm_span_days, cold_age_days=cold_age_days,
        spill_dir=spill_dir, max_resident_cold=max_resident_cold,
    )
    runtime.load_state(json.loads(sharded_state))
    return runtime, feeds, database


# -- poisoning defence audit --------------------------------------------------


@dataclass
class PoisonDefenceReport:
    """Outcome of a poisoned-vs-clean replay comparison."""

    scenario: str
    boundaries: int
    poison_posts: int
    poison_rejected: int
    organic_rejected: int
    alerts_match: bool
    table_match: bool
    mismatches: List[str] = field(default_factory=list)

    @property
    def all_poison_rejected(self) -> bool:
        """Whether the filter caught every injected post."""
        return self.poison_rejected == self.poison_posts

    @property
    def ok(self) -> bool:
        """Whether the defence held end to end."""
        return self.all_poison_rejected and self.alerts_match and self.table_match

    def describe(self) -> str:
        """Human-readable defence summary."""
        return (
            f"poison defence {self.scenario}: "
            f"{self.poison_rejected}/{self.poison_posts} injected posts "
            f"rejected ({self.organic_rejected} organic casualties), "
            f"alerts {'match' if self.alerts_match else 'DIVERGED'}, "
            f"final table {'match' if self.table_match else 'DIVERGED'} "
            f"over {self.boundaries} boundaries — "
            f"{'PASS' if self.ok else 'FAIL'}"
        )


def replay_poison_defence(
    scenario: Union[str, ScenarioSpec],
    *,
    months: Optional[int] = None,
    config: Optional[PSPConfig] = None,
) -> PoisonDefenceReport:
    """Audit the authenticity filter against a scenario's bursts.

    Replays the scenario twice through single-shard runtimes: once over
    the clean corpus without a filter, once over the poisoned corpus
    behind the **default** :class:`~repro.core.poisoning.
    PostAuthenticityFilter`.  The defence holds when every injected
    post is rejected and the filtered run raises the clean run's alerts
    and final insider table.

    Single-shard and yearly-cadence by design: the filter's population
    rules (duplicate share, author concentration, engagement MAD) are
    statistics over one micro-batch, so they need batches big enough to
    carry a signal — a dozen-post monthly batch makes the MAD estimate
    noise and innocently spiky organic posts collateral damage, while a
    year batch cleanly separates a 20-copy flood from organic chatter.
    The unsharded arrival order is likewise part of the contract: the
    burst must hit the filter as the contiguous flood it is.
    """
    spec = _resolve(scenario)
    if not spec.poisoning:
        raise ValueError(
            f"scenario {spec.name!r} declares no poisoning bursts"
        )
    boundaries = month_boundaries(
        spec.start_year,
        spec.end_year,
        months=months,
        cadence="yearly",
    )
    clean_posts = list(spec.corpus().posts)
    poisoned_posts = list(spec.poisoned_corpus().posts)
    poison_ids = {
        post.post_id
        for post in poisoned_posts
        if ":poison" in post.post_id
    }
    mismatches: List[str] = []

    clean_runtime, _, _ = _build_stream(
        spec, clean_posts, shards=1, workers=None, config=config
    )
    filtered_runtime, _, _ = _build_stream(
        spec,
        poisoned_posts,
        shards=1,
        workers=None,
        config=config,
        post_filter=PostAuthenticityFilter(),
    )
    alerts_match = True
    try:
        for boundary in boundaries:
            clean_tick = clean_runtime.advance_to(
                boundary, upto_year=boundary.year
            )
            filtered_tick = filtered_runtime.advance_to(
                boundary, upto_year=boundary.year
            )
            if _alert_key(clean_tick.alert) != _alert_key(
                filtered_tick.alert
            ):
                alerts_match = False
                mismatches.append(
                    f"{boundary}: filtered alert "
                    f"{_alert_key(filtered_tick.alert)!r} != clean "
                    f"{_alert_key(clean_tick.alert)!r}"
                )
        table_match = _table_rows(
            clean_runtime.current_table
        ) == _table_rows(filtered_runtime.current_table)
        if not table_match:
            mismatches.append("final insider tables diverged")
        rejected_ids = {
            rejection.post.post_id
            for report in filtered_runtime.filter_reports
            for rejection in report.rejected
        }
    finally:
        clean_runtime.close()
        filtered_runtime.close()

    poison_rejected = len(rejected_ids & poison_ids)
    if poison_rejected != len(poison_ids):
        survivors = sorted(poison_ids - rejected_ids)[:5]
        mismatches.append(
            f"{len(poison_ids) - poison_rejected} poison post(s) "
            f"slipped through, e.g. {survivors}"
        )
    return PoisonDefenceReport(
        scenario=spec.name,
        boundaries=len(boundaries),
        poison_posts=len(poison_ids),
        poison_rejected=poison_rejected,
        organic_rejected=len(rejected_ids - poison_ids),
        alerts_match=alerts_match,
        table_match=table_match,
        mismatches=mismatches,
    )
