"""Event-sourced post feeds (the streaming runtime's input side).

A feed turns a post source into a replayable, cursor-addressed event
stream: every post becomes a :class:`PostEvent` with a monotonically
increasing sequence number, and consumers pull micro-batches with
:meth:`FeedSource.events_after`.  Replayability is the point — a
checkpointed :class:`~repro.stream.runtime.StreamRuntime` resumes by
asking for "everything after my cursor", and two runtimes fed the same
events are byte-for-byte reproducible.

:class:`SyntheticFeed` adapts the existing in-memory corpora (the
scenario generators, any :class:`~repro.social.corpus.Corpus`) by
replaying their posts in timestamp order.  Production clients adapt a
real platform by implementing the two-method :class:`FeedSource`
protocol; everything downstream — index append, dirty-keyword tracking,
checkpointing — is source-agnostic.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.social.corpus import Corpus
from repro.social.post import Post

try:  # Protocol is typing-only; runtime_checkable keeps isinstance useful.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@dataclass(frozen=True)
class PostEvent:
    """One post's arrival on a feed.

    Attributes:
        seq: position in the feed; strictly increasing, gap-free within
            one feed.  The runtime's checkpoint cursor is "the highest
            ``seq`` consumed".
        post: the arriving post.
    """

    seq: int
    post: Post

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError(f"event seq must be >= 0, got {self.seq}")

    @property
    def created_at(self) -> dt.date:
        """The post's timestamp (feed ordering key for synthetic replay)."""
        return self.post.created_at


@runtime_checkable
class FeedSource(Protocol):
    """What the streaming runtime needs from any post feed.

    Implementations must hand out events with strictly increasing
    ``seq`` and must be *stable*: asking twice for the events after one
    cursor returns the same events (new ones may be appended at the
    end).  That stability is what makes checkpoint/resume exact.
    """

    def events_after(
        self,
        cursor: int,
        *,
        until: Optional[dt.date] = None,
        limit: Optional[int] = None,
    ) -> Tuple[PostEvent, ...]:
        """Events with ``seq > cursor``, oldest first.

        Args:
            cursor: the highest already-consumed ``seq`` (-1 = nothing).
            until: only events whose post date is ``<= until``.
            limit: cap on the number of returned events.
        """
        ...  # pragma: no cover - protocol signature


class SyntheticFeed:
    """A replayable feed over an in-memory post collection.

    Posts are emitted in ``(created_at, post_id)`` order — the same
    order every batch engine sorts by — so replaying a scenario corpus
    through a :class:`~repro.stream.runtime.StreamRuntime` visits
    exactly the posts a growing-window batch run would have seen at
    each point in time.
    """

    def __init__(self, posts: Iterable[Post]) -> None:
        ordered = sorted(posts, key=lambda p: (p.created_at, p.post_id))
        self._events: Tuple[PostEvent, ...] = tuple(
            PostEvent(seq=position, post=post)
            for position, post in enumerate(ordered)
        )

    @classmethod
    def from_corpus(cls, corpus: Corpus) -> "SyntheticFeed":
        """A feed replaying one corpus' posts in timestamp order."""
        return cls(corpus.posts)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> Tuple[PostEvent, ...]:
        """All events, in feed order."""
        return self._events

    def events_after(
        self,
        cursor: int,
        *,
        until: Optional[dt.date] = None,
        limit: Optional[int] = None,
    ) -> Tuple[PostEvent, ...]:
        """Events with ``seq > cursor`` (optionally date-capped / limited)."""
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        start = cursor + 1
        if start < 0:
            start = 0
        selected = []
        for event in self._events[start:]:
            if until is not None and event.created_at > until:
                # Events are date-ordered, so nothing later qualifies.
                break
            selected.append(event)
            if limit is not None and len(selected) >= limit:
                break
        return tuple(selected)

    def micro_batches(
        self, batch_size: int, *, cursor: int = -1
    ) -> Iterator[Tuple[PostEvent, ...]]:
        """The remaining feed as consecutive micro-batches."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        while True:
            batch = self.events_after(cursor, limit=batch_size)
            if not batch:
                return
            cursor = batch[-1].seq
            yield batch


def replay_posts(events: Sequence[PostEvent]) -> Tuple[Post, ...]:
    """The posts of an event batch, in feed order."""
    return tuple(event.post for event in events)
