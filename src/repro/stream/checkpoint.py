"""Stop/resume for the streaming runtime.

A :class:`~repro.stream.runtime.StreamRuntime` is resumable because all
of its alert-relevant state is small and additive: the feed cursor, the
per-keyword running aggregates, the cached classifications and the
insider table last in force.  :func:`save_checkpoint` writes that state
as one JSON document; :func:`restore_runtime` builds a fresh runtime
around the same feed/database and loads it back.  The resumed runtime
consumes the feed from ``cursor + 1`` and emits exactly the alerts the
uninterrupted run would have emitted from that point (asserted in
``tests/stream/test_checkpoint.py``).

The post index is deliberately **not** checkpointed: alerting never
needs historical posts (the aggregates carry the evidence), and a
queryable index can be re-hydrated by replaying the feed into
:meth:`~repro.stream.index.StreamingCorpusIndex.append` when an
operator actually wants one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.stream.runtime import StreamRuntime

#: Bump on incompatible checkpoint layout changes.
CHECKPOINT_VERSION = 1


def checkpoint_state(runtime: StreamRuntime) -> Dict[str, Any]:
    """The runtime's resumable state as a JSON-serialisable document."""
    return {
        "checkpoint_version": CHECKPOINT_VERSION,
        "runtime": runtime.state_dict(),
    }


def save_checkpoint(
    runtime: StreamRuntime, path: Union[str, Path]
) -> Path:
    """Write a checkpoint file; returns the written path."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(
        json.dumps(checkpoint_state(runtime), indent=2, sort_keys=True) + "\n"
    )
    return destination


def load_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a checkpoint file."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("checkpoint_version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    if "runtime" not in payload:
        raise ValueError("checkpoint has no 'runtime' state")
    return payload


def restore_runtime(
    source: Union[str, Path, Dict[str, Any]],
    feed,
    database,
    **runtime_kwargs: Any,
) -> StreamRuntime:
    """Build a runtime resumed from a checkpoint.

    Args:
        source: a checkpoint file path or an already-loaded payload.
        feed: the feed to resume from (must replay the same events the
            checkpointed runtime consumed — stability is part of the
            :class:`~repro.stream.feed.FeedSource` contract).
        database: the keyword database (keyword set must match the
            checkpoint).
        **runtime_kwargs: forwarded to :class:`StreamRuntime` — target,
            config, network, tracker, post_filter, batch sizes.  The
            checkpoint's ``since_year`` is restored automatically.
    """
    if isinstance(source, (str, Path)):
        payload = load_checkpoint(source)
    else:
        payload = source
        version = payload.get("checkpoint_version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(expected {CHECKPOINT_VERSION})"
            )
    state = payload["runtime"]
    runtime = StreamRuntime(
        feed,
        database,
        since_year=state.get("since_year"),
        **runtime_kwargs,
    )
    runtime.load_state(state)
    return runtime
