"""Stop/resume for the streaming runtime.

A :class:`~repro.stream.runtime.StreamRuntime` is resumable because all
of its alert-relevant state is small and additive: the feed cursor, the
per-keyword running aggregates, the cached classifications and the
insider table last in force.  :func:`save_checkpoint` writes that state
as one JSON document; :func:`restore_runtime` builds a fresh runtime
around the same feed/database and loads it back.  The resumed runtime
consumes the feed from ``cursor + 1`` and emits exactly the alerts the
uninterrupted run would have emitted from that point (asserted in
``tests/stream/test_checkpoint.py``).

Long-running monitors additionally get **delta checkpoints**: a *base*
checkpoint persists everything and marks a snapshot point; from then on
:func:`save_delta_checkpoint` writes only the keywords whose aggregates
were dirtied since that base (plus the O(keywords)-bounded scalars), so
the recurring save cost is O(changed keywords) instead of O(all
keyword×year history).  Each delta is *cumulative against its base* —
``base + latest delta`` is always a complete restore point, and older
deltas can simply be deleted.  :func:`restore_runtime` accepts either a
base checkpoint or a ``(delta, base=...)`` pair and verifies the two
belong together via the base's content-derived id.

The post index is deliberately **not** checkpointed: alerting never
needs historical posts (the aggregates carry the evidence), and a
queryable index can be re-hydrated by replaying the feed into
:meth:`~repro.stream.index.StreamingCorpusIndex.append` when an
operator actually wants one.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.stream.runtime import StreamRuntime
from repro.stream.store import StoreError

#: Bump on incompatible checkpoint layout changes.
CHECKPOINT_VERSION = 1

#: Payload kinds; payloads without a ``kind`` are legacy base snapshots.
KIND_BASE = "base"
KIND_DELTA = "delta"


def _state_id(state: Dict[str, Any]) -> str:
    """A deterministic content id of one runtime state document."""
    canonical = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def checkpoint_state(
    runtime: StreamRuntime, *, include_index: bool = True
) -> Dict[str, Any]:
    """The runtime's resumable state as a JSON-serialisable document.

    ``include_index=False`` writes the lean pre-columnar layout: the
    corpus index is omitted and restarts empty on restore (alerts never
    need historical posts), trading query history for checkpoint size.
    """
    state = runtime.state_dict(include_index=include_index)
    # A base checkpoint *is* the snapshot: relative to this document
    # nothing is unsaved, so the persisted snapshot-dirty set is empty —
    # a runtime restored from this base delta-saves only what it
    # changes afterwards, not the pre-save backlog.
    state["deltas"] = dict(state["deltas"])
    state["deltas"]["dirty_since_snapshot"] = []
    # Operator-facing context, deliberately outside the base_id hash:
    # what the index looked like at save time (including per-tier rows
    # of a tiered layout) and, for instrumented runtimes, the telemetry
    # registry snapshot so a resume continues counters instead of
    # restarting them from zero.
    metadata: Dict[str, Any] = {"segment_stats": runtime.index.segment_stats}
    # A spilling index stores cold columns outside this file: record
    # where (directory + manifest) so an operator restoring elsewhere
    # knows which directory to bring along (--spill-dir on restore).
    store = getattr(runtime.index, "store", None)
    if store is not None:
        metadata["store"] = {
            "directory": str(store.directory),
            "manifest": str(store.manifest_path),
            "segments": store.segment_count,
            "bytes": store.bytes_on_disk,
        }
    metrics = getattr(runtime, "metrics", None)
    if metrics is not None and getattr(metrics, "enabled", False):
        metadata["metrics"] = metrics.snapshot()
    return {
        "checkpoint_version": CHECKPOINT_VERSION,
        "kind": KIND_BASE,
        "base_id": _state_id(state),
        "metadata": metadata,
        "runtime": state,
    }


def save_checkpoint(
    runtime: StreamRuntime,
    path: Union[str, Path],
    *,
    include_index: bool = True,
) -> Path:
    """Write a full (base) checkpoint file; returns the written path.

    Marks the snapshot point on the runtime: subsequent
    :func:`save_delta_checkpoint` calls persist only what changed from
    here on.

    Raises:
        TypeError: for runtimes without the checkpoint API — a
            :class:`~repro.stream.sharding.ShardedStreamRuntime`
            persists through its own ``state_dict()``/``load_state()``
            (per-shard cursors and trackers), not this single-feed file
            format.
    """
    if not hasattr(runtime, "mark_checkpoint_base"):
        raise TypeError(
            f"save_checkpoint supports StreamRuntime, got "
            f"{type(runtime).__name__}; sharded runtimes persist via "
            "state_dict()/load_state()"
        )
    payload = checkpoint_state(runtime, include_index=include_index)
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    # Only after the write succeeded: a failed save must not convince
    # the runtime its dirty keywords are safely on disk.
    runtime.mark_checkpoint_base(payload["base_id"])
    return destination


def save_delta_checkpoint(
    runtime: StreamRuntime, path: Union[str, Path]
) -> Path:
    """Write an O(changed-keywords) delta against the last base snapshot.

    The delta is cumulative: it carries every keyword dirtied since the
    base was saved, so ``base + this file`` restores the full current
    state regardless of how many earlier deltas exist.

    Raises:
        ValueError: when no base checkpoint was saved from (or adopted
            by) this runtime — a delta needs something to be relative to.
    """
    base_id = runtime.checkpoint_base_id
    if base_id is None:
        raise ValueError(
            "no base checkpoint to delta against — call save_checkpoint "
            "first (or restore from one)"
        )
    payload: Dict[str, Any] = {
        "checkpoint_version": CHECKPOINT_VERSION,
        "kind": KIND_DELTA,
        "base_id": base_id,
        "runtime_delta": runtime.delta_state_dict(),
    }
    metrics = getattr(runtime, "metrics", None)
    if metrics is not None and getattr(metrics, "enabled", False):
        # Same contract as the base's metadata block: advisory, outside
        # any content hash, and the *current* cumulative totals (deltas
        # are cumulative against their base, and so is this snapshot).
        payload["metadata"] = {"metrics": metrics.snapshot()}
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return destination


def _validated(payload: Dict[str, Any]) -> Dict[str, Any]:
    version = payload.get("checkpoint_version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    kind = payload.get("kind", KIND_BASE)
    if kind == KIND_BASE and "runtime" not in payload:
        raise ValueError("checkpoint has no 'runtime' state")
    if kind == KIND_DELTA and "runtime_delta" not in payload:
        raise ValueError("delta checkpoint has no 'runtime_delta' state")
    if kind not in (KIND_BASE, KIND_DELTA):
        raise ValueError(f"unknown checkpoint kind {kind!r}")
    return payload


def load_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a checkpoint file (base or delta)."""
    return _validated(json.loads(Path(path).read_text()))


def _as_payload(
    source: Union[str, Path, Dict[str, Any]],
) -> Dict[str, Any]:
    if isinstance(source, (str, Path)):
        return load_checkpoint(source)
    return _validated(source)


def _overlay_delta(
    base_state: Dict[str, Any], delta_state: Dict[str, Any]
) -> Dict[str, Any]:
    """The full runtime state of ``base + delta`` (pure dict surgery).

    Scalars and O(keywords) maps come from the delta wholesale; the
    keyword×year aggregate buckets and votes start from the base and
    every keyword the delta recorded is *replaced* (deltas store full
    current per-keyword values, so overlay is replace, not add).
    """
    state = dict(base_state)
    # Delta checkpoints carry no index columns, and the base's index
    # predates the delta's cursor — restoring it would silently hide
    # the posts ingested in between.  Delta resumes keep the lean
    # behaviour: the index restarts empty.
    state.pop("index", None)
    deltas_delta = delta_state["deltas_delta"]
    for key, value in delta_state.items():
        if key != "deltas_delta":
            state[key] = value
    tracker_state = dict(base_state["deltas"])
    buckets = dict(tracker_state["buckets"])
    votes = dict(tracker_state["votes"])
    for keyword, entry in deltas_delta["changed"].items():
        buckets[keyword] = entry["buckets"]
        votes[keyword] = entry["votes"]
    tracker_state["buckets"] = buckets
    tracker_state["votes"] = votes
    tracker_state["observed"] = deltas_delta["observed"]
    tracker_state["dirty"] = deltas_delta["dirty"]
    # Relative to the shared base, exactly these keywords are still
    # unsnapshotted — the next delta save must cover at least them.
    tracker_state["dirty_since_snapshot"] = sorted(deltas_delta["changed"])
    state["deltas"] = tracker_state
    return state


class CheckpointRotation:
    """Rotating base+delta checkpointing for a long-running runtime.

    Delta checkpoints are cumulative against their base, so over a long
    run the delta grows until it approaches the base's own size and the
    O(changed)-save advantage evaporates.  This manager owns a
    checkpoint directory and, on every :meth:`save`:

    * writes the first save as a base checkpoint;
    * afterwards writes a cumulative delta against the current base;
    * when the delta file outgrows ``max_delta_ratio`` × the base file,
      *rotates*: a fresh base is written (resetting the snapshot point)
      and every file of the old generation — the old base and its
      deltas — is pruned;
    * within a generation, a new delta supersedes the previous one
      (deltas are cumulative), so the superseded delta file is pruned
      immediately.

    The directory therefore never holds more than one base and one
    delta; :meth:`restore_sources` returns them in the order
    :func:`restore_runtime` expects.
    """

    def __init__(
        self,
        runtime: StreamRuntime,
        directory: Union[str, Path],
        *,
        max_delta_ratio: float = 0.5,
        prune: bool = True,
    ) -> None:
        if max_delta_ratio <= 0:
            raise ValueError(
                f"max_delta_ratio must be > 0, got {max_delta_ratio}"
            )
        self._runtime = runtime
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._max_delta_ratio = max_delta_ratio
        self._prune = prune
        self._generation = 0
        self._delta_seq = 0
        self._base_path: Optional[Path] = None
        self._delta_path: Optional[Path] = None
        self.rotations = 0
        self.pruned_files: List[Path] = []

    @property
    def directory(self) -> Path:
        """The managed checkpoint directory."""
        return self._directory

    @property
    def base_path(self) -> Optional[Path]:
        """The live base checkpoint file (None before the first save)."""
        return self._base_path

    @property
    def delta_path(self) -> Optional[Path]:
        """The live delta file (None right after a base write)."""
        return self._delta_path

    def _remove(self, path: Optional[Path]) -> None:
        if path is None or not self._prune:
            return
        if path.exists():
            path.unlink()
            self.pruned_files.append(path)

    def _write_base(self) -> Path:
        self._generation += 1
        self._delta_seq = 0
        path = self._directory / f"base-{self._generation:06d}.json"
        save_checkpoint(self._runtime, path)
        old_base, old_delta = self._base_path, self._delta_path
        self._base_path = path
        self._delta_path = None
        self._remove(old_delta)
        self._remove(old_base)
        return path

    def save(self) -> Path:
        """Persist the current runtime state; returns the file written.

        Usually a delta; a base on the first call and on rotation.
        """
        if self._base_path is None:
            return self._write_base()
        self._delta_seq += 1
        path = (
            self._directory
            / f"delta-{self._generation:06d}-{self._delta_seq:06d}.json"
        )
        save_delta_checkpoint(self._runtime, path)
        base_size = self._base_path.stat().st_size
        if path.stat().st_size > self._max_delta_ratio * base_size:
            # The cumulative delta no longer buys anything over a full
            # snapshot — start a new generation and drop the old one
            # (including the oversized delta just written).
            self._remove(path)
            self.rotations += 1
            return self._write_base()
        superseded = self._delta_path
        self._delta_path = path
        self._remove(superseded)
        return path

    def restore_sources(
        self,
    ) -> Tuple[Path, Optional[Path]]:
        """The live ``(source, base)`` pair for :func:`restore_runtime`.

        When a delta exists, ``source`` is the delta and ``base`` the
        base it was saved against; otherwise the base alone restores and
        ``base`` is None.
        """
        if self._base_path is None:
            raise ValueError("nothing saved yet — call save() first")
        if self._delta_path is not None:
            return self._delta_path, self._base_path
        return self._base_path, None


def restore_runtime(
    source: Union[str, Path, Dict[str, Any]],
    feed,
    database,
    *,
    base: Optional[Union[str, Path, Dict[str, Any]]] = None,
    **runtime_kwargs: Any,
) -> StreamRuntime:
    """Build a runtime resumed from a checkpoint.

    Args:
        source: a checkpoint file path or an already-loaded payload —
            either a base snapshot or a delta checkpoint.
        feed: the feed to resume from (must replay the same events the
            checkpointed runtime consumed — stability is part of the
            :class:`~repro.stream.feed.FeedSource` contract).
        database: the keyword database (keyword set must match the
            checkpoint).
        base: the base checkpoint (path or payload) a delta ``source``
            is relative to; required for deltas, ignored for bases.
            The base's content id must match the one the delta recorded.
        **runtime_kwargs: forwarded to :class:`StreamRuntime` — target,
            config, network, tracker, post_filter, batch sizes, and the
            spill knobs (``spill_dir``/``store``/``max_resident_cold``):
            a checkpoint whose index spilled cold segments restores only
            with its store re-attached (pass the checkpoint metadata's
            store directory), and a resident checkpoint restored with a
            spill knob re-spills its cold segments on load.  The
            checkpoint's ``since_year`` is restored automatically.

    Raises:
        StoreError: when the checkpoint references spilled segments and
            no store is attached (or the store is missing them) — a
            clear degradation message, not a mid-query stack trace.
    """
    payload = _as_payload(source)
    if payload.get("kind", KIND_BASE) == KIND_DELTA:
        if base is None:
            raise ValueError(
                "restoring from a delta checkpoint needs base=<the base "
                "checkpoint it was saved against>"
            )
        base_payload = _as_payload(base)
        if base_payload.get("kind", KIND_BASE) != KIND_BASE:
            raise ValueError("base= must be a base checkpoint, got a delta")
        base_id = base_payload.get("base_id")
        if base_id is not None and base_id != payload["base_id"]:
            raise ValueError(
                f"delta was saved against base {payload['base_id']!r}, "
                f"got base {base_id!r}"
            )
        state = _overlay_delta(base_payload["runtime"], payload["runtime_delta"])
        adopted_base_id = payload["base_id"]
        # Deltas carry cumulative totals; fall back to the base's
        # snapshot only when the delta predates metrics support.
        metrics_snapshot = payload.get("metadata", {}).get(
            "metrics"
        ) or base_payload.get("metadata", {}).get("metrics")
    else:
        state = payload["runtime"]
        adopted_base_id = payload.get("base_id")
        metrics_snapshot = payload.get("metadata", {}).get("metrics")
    runtime = StreamRuntime(
        feed,
        database,
        since_year=state.get("since_year"),
        **runtime_kwargs,
    )
    try:
        runtime.load_state(state)
    except StoreError as error:
        raise StoreError(f"checkpoint restore failed: {error}") from None
    if metrics_snapshot is not None and runtime.metrics.enabled:
        # Counter continuity: the resumed registry starts from the saved
        # totals, so resumed + uninterrupted runs agree on cumulative
        # counts (asserted in tests/stream/test_checkpoint.py).
        runtime.metrics.restore(metrics_snapshot)
    if adopted_base_id is not None:
        # The restored runtime can keep delta-saving against the same
        # base file — no fresh base required after every resume.
        runtime.adopt_checkpoint_base(adopted_base_id)
    return runtime
