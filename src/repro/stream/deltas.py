"""Dirty-keyword tracking and running SAI aggregates.

The batch SAI pass is O(corpus): every keyword's posts are re-fetched
and re-condensed per analysis window.  Every signal the scorer needs is
*additive over posts* (engagement counters, post volume, summed
sentiment), so a streaming consumer only has to know, per arriving
post, **which keywords it affects** — then bump those keywords' running
sums.  :class:`DeltaTracker` does exactly that:

* an arriving post's hashtags/tokens/stems/haystack are probed against
  every database keyword with the same folded-match predicate the
  inverted index uses (:meth:`~repro.nlp.analysis.PostAnalysis.matches_keyword`),
  so "affects keyword K" here means precisely "would appear in K's
  search results";
* affected keywords become **dirty** until the runtime processes them;
* per ``keyword × year`` buckets accumulate views/likes/reposts/replies,
  post counts and summed sentiment — any ``since_year..`` analysis
  window is a sum over year buckets, O(years) per keyword;
* per-keyword insider/outsider **voice votes** (the classifier's text
  signals) accumulate over *all* arriving posts, mirroring the batch
  classifier's full-history, region-unscoped evidence search.

One deliberate semantic difference from the batch path: the batch
classifier searches the whole corpus — including posts *newer than the
analysis window*, an artifact of replaying history against a static
store.  A streaming tracker can only vote with evidence seen so far;
the two converge once the feed catches up.  (Keywords carrying an
``owner_approved`` annotation — all scenario keywords — classify
identically on both paths.)
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.classification import INSIDER_MARKERS, OUTSIDER_MARKERS
from repro.core.keywords import KeywordDatabase
from repro.core.sai import KeywordSignals
from repro.nlp.analysis import analyze_text
from repro.nlp.sentiment import SentimentAnalyzer
from repro.social.columnar import ColumnarCorpus, year_of_ordinal
from repro.social.post import Engagement, Post

#: re-exported for convenience of streaming consumers.
__all__ = [
    "DeltaTracker",
    "KeywordSignals",
    "SegmentSidecar",
    "SignalDelta",
    "compute_signal_delta",
    "compute_signal_delta_columnar",
]

#: Separator between per-post haystacks in the batch match arena.  The
#: same character :mod:`repro.nlp.analysis` uses inside a haystack —
#: canonical keywords are alphanumeric-only, so no keyword can straddle
#: two posts' segments.
_ARENA_SEPARATOR = "\n"


@dataclass
class _Bucket:
    """Additive signals of one (keyword, year) cell."""

    views: int = 0
    likes: int = 0
    reposts: int = 0
    replies: int = 0
    posts: int = 0
    sentiment_sum: float = 0.0

    def add(self, post: Post, sentiment: float) -> None:
        engagement = post.engagement
        self.add_values(
            engagement.views,
            engagement.likes,
            engagement.reposts,
            engagement.replies,
            sentiment,
        )

    def add_values(
        self,
        views: int,
        likes: int,
        reposts: int,
        replies: int,
        sentiment: float,
    ) -> None:
        """Fold one post's raw counter values in (columnar hot path)."""
        self.views += views
        self.likes += likes
        self.reposts += reposts
        self.replies += replies
        self.posts += 1
        self.sentiment_sum += sentiment

    def as_list(self) -> List[float]:
        return [
            self.views,
            self.likes,
            self.reposts,
            self.replies,
            self.posts,
            self.sentiment_sum,
        ]

    @classmethod
    def from_list(cls, values: List[float]) -> "_Bucket":
        views, likes, reposts, replies, posts, sentiment_sum = values
        return cls(
            views=int(views),
            likes=int(likes),
            reposts=int(reposts),
            replies=int(replies),
            posts=int(posts),
            sentiment_sum=float(sentiment_sum),
        )


@dataclass
class _Votes:
    """Running classifier voice votes for one keyword."""

    insider: int = 0
    outsider: int = 0


@dataclass(frozen=True)
class SignalDelta:
    """One micro-batch's additive contribution to the running aggregates.

    Every field is a pure sum over the batch's posts, so deltas are
    *mergeable*: :meth:`merge` of any grouping/ordering of deltas equals
    the delta of the concatenated batch (integer fields exactly, the
    float ``sentiment_sum`` up to summation order — property-tested in
    ``tests/properties/test_shard_merge_equivalence.py``).  The payload
    is plain data (dicts, tuples, ints, floats), so a delta pickles
    cheaply across a :class:`~repro.core.executor.ProcessExecutor`
    boundary — it is the return value of a sharded runtime's per-shard
    ingest job.

    Attributes:
        buckets: ``keyword -> year -> [views, likes, reposts, replies,
            posts, sentiment_sum]`` — the in-region SAI bucket sums.
        votes: ``keyword -> (insider, outsider)`` voice-vote increments
            (region-unscoped, like the batch classifier's evidence).
        dirty: keywords affected by the batch, sorted.
        observed: how many posts the batch contained (matched or not).
    """

    buckets: Dict[str, Dict[int, List[float]]]
    votes: Dict[str, Tuple[int, int]]
    dirty: Tuple[str, ...]
    observed: int

    @property
    def is_empty(self) -> bool:
        """True when the delta carries no aggregate change at all."""
        return not (self.buckets or self.votes or self.dirty or self.observed)

    @classmethod
    def empty(cls) -> "SignalDelta":
        """The additive identity."""
        return cls(buckets={}, votes={}, dirty=(), observed=0)

    @classmethod
    def merge(cls, deltas: Iterable["SignalDelta"]) -> "SignalDelta":
        """The pure-sum combination of several deltas.

        Associative and commutative (exactly on every integer field;
        ``sentiment_sum`` commutes up to float summation order), so
        shard deltas can be combined in any grouping — the foundation of
        the sharded runtime's merge step.
        """
        buckets: Dict[str, Dict[int, List[float]]] = {}
        votes: Dict[str, Tuple[int, int]] = {}
        dirty: set = set()
        observed = 0
        for delta in deltas:
            observed += delta.observed
            dirty.update(delta.dirty)
            for keyword, pair in delta.votes.items():
                known = votes.get(keyword, (0, 0))
                votes[keyword] = (known[0] + pair[0], known[1] + pair[1])
            for keyword, years in delta.buckets.items():
                target_years = buckets.setdefault(keyword, {})
                for year, values in years.items():
                    known_values = target_years.get(year)
                    if known_values is None:
                        target_years[year] = list(values)
                    else:
                        target_years[year] = [
                            a + b for a, b in zip(known_values, values)
                        ]
        return cls(
            buckets=buckets,
            votes=votes,
            dirty=tuple(sorted(dirty)),
            observed=observed,
        )


def _match_batch(
    keywords: Sequence[str], haystacks: Sequence[str]
) -> List[List[str]]:
    """Per-post matched keywords via one arena sweep per keyword.

    The per-post haystacks are joined into one *arena* string and each
    canonical keyword is resolved with a single C-level ``str.find``
    loop over it, instead of one substring probe per ``(post, keyword)``
    pair.  A hit is mapped back to its post by bisecting the segment
    end-offsets, and the scan resumes at the next segment, so a post is
    reported at most once per keyword.  Results are exactly
    :meth:`~repro.nlp.analysis.PostAnalysis.matches_keyword` — the
    separator guarantees no cross-post match — and per post the
    keywords come back in ``keywords`` order, which keeps downstream
    float accumulation identical to the per-post probe loop.
    """
    matched_per_post: List[List[str]] = [[] for _ in haystacks]
    if not haystacks:
        return matched_per_post
    arena = _ARENA_SEPARATOR.join(haystacks)
    ends: List[int] = []
    position = 0
    for haystack in haystacks:
        position += len(haystack) + 1
        ends.append(position)
    hits: List[List[int]] = [[] for _ in keywords]
    for slot, keyword in enumerate(keywords):
        if not keyword:
            continue  # empty canonicals never free-text match
        found = arena.find(keyword)
        while found != -1:
            post = bisect_right(ends, found)
            hits[slot].append(post)
            found = arena.find(keyword, ends[post])
    # Slot-ordered fold: per post the matched keywords come out in
    # ``keywords`` order, exactly like the per-post probe loop's.
    for slot, keyword in enumerate(keywords):
        for post in hits[slot]:
            matched_per_post[post].append(keyword)
    return matched_per_post


def compute_signal_delta(
    keywords: Sequence[str],
    posts: Sequence[Post],
    *,
    region: Optional[str] = None,
    analyzer: Optional[SentimentAnalyzer] = None,
) -> SignalDelta:
    """The :class:`SignalDelta` of one micro-batch, via a batch sweep.

    Semantically identical to folding the batch through
    :meth:`DeltaTracker.observe` post by post (same buckets, same votes,
    same dirty set, bit-for-bit identical float sums), but the keyword
    matching runs as one arena sweep per keyword
    (:func:`_match_batch`) instead of ``len(posts) x len(keywords)``
    substring probes — the sharded runtime's per-shard ingest kernel.
    The function is pure and its arguments/result are picklable, so it
    can run inside a :class:`~repro.core.executor.ProcessExecutor`
    worker.
    """
    scorer = analyzer or SentimentAnalyzer()
    region_scope = region.strip().lower() if region else None
    analyses = [analyze_text(post.text) for post in posts]
    matched_per_post = _match_batch(
        list(keywords), [analysis.haystack for analysis in analyses]
    )

    buckets: Dict[str, Dict[int, _Bucket]] = {}
    votes: Dict[str, List[int]] = {}
    dirty: set = set()
    for post, analysis, matched in zip(posts, analyses, matched_per_post):
        if not matched:
            continue
        insider_vote = bool(analysis.word_set & INSIDER_MARKERS)
        outsider_vote = bool(analysis.word_set & OUTSIDER_MARKERS)
        in_region = (
            region_scope is None or post.region.lower() == region_scope
        )
        sentiment = (
            scorer.score_analysis(analysis).score if in_region else 0.0
        )
        for keyword in matched:
            pair = votes.setdefault(keyword, [0, 0])
            if insider_vote:
                pair[0] += 1
            if outsider_vote:
                pair[1] += 1
            if in_region:
                years = buckets.setdefault(keyword, {})
                bucket = years.setdefault(post.year, _Bucket())
                bucket.add(post, sentiment)
        dirty.update(matched)
    return SignalDelta(
        buckets={
            keyword: {year: bucket.as_list() for year, bucket in years.items()}
            for keyword, years in buckets.items()
        },
        votes={
            keyword: (pair[0], pair[1]) for keyword, pair in votes.items()
        },
        dirty=tuple(sorted(dirty)),
        observed=len(posts),
    )


def compute_signal_delta_columnar(
    keywords: Sequence[str],
    columns: ColumnarCorpus,
    *,
    since=None,
    until=None,
    region: Optional[str] = None,
    analyzer: Optional[SentimentAnalyzer] = None,
) -> SignalDelta:
    """The :class:`SignalDelta` of one columnar window — no `Post` hops.

    Bit-for-bit identical (float sums included) to folding the window's
    posts through :meth:`DeltaTracker.observe`, but computed straight
    from a :class:`~repro.social.columnar.ColumnarCorpus` segment:

    * the window resolves to a position slice by bisecting the flat
      date-ordinal column (``observed`` is pure slice arithmetic);
    * keyword matching probes the shared haystack arena
      (:meth:`~repro.social.columnar.ColumnarCorpus.arena_positions`),
      one C-level scan per keyword;
    * engagement and year come from flat-array reads, sentiment and
      voice votes from the corpus's interned per-distinct-text analyses.

    `Post` objects never materialize — the backfill path for seeding a
    tracker from an already-indexed corpus at 10M+ posts.
    """
    scorer = analyzer or SentimentAnalyzer()
    region_scope = region.strip().lower() if region else None
    lo, hi = columns.window_bounds(since, until)
    per_post: Dict[int, List[str]] = {}
    for keyword in keywords:
        for position in columns.arena_positions(keyword, lo, hi):
            # Outer loop in ``keywords`` order => per post the matched
            # keywords accumulate in keyword order, exactly like the
            # per-post probe loop's — float sums stay bit-identical.
            per_post.setdefault(position, []).append(keyword)

    in_region_by_code = [
        region_scope is None or vocab_region.lower() == region_scope
        for vocab_region in columns.region_vocab
    ]
    buckets: Dict[str, Dict[int, _Bucket]] = {}
    votes: Dict[str, List[int]] = {}
    dirty: set = set()
    for position in sorted(per_post):
        matched = per_post[position]
        analysis = columns.analysis_at(position)
        insider_vote = bool(analysis.word_set & INSIDER_MARKERS)
        outsider_vote = bool(analysis.word_set & OUTSIDER_MARKERS)
        in_region = in_region_by_code[columns.region_code(position)]
        sentiment = (
            scorer.score_analysis(analysis).score if in_region else 0.0
        )
        views, likes, reposts, replies = columns.engagement_values(position)
        year = year_of_ordinal(columns.date_ordinal(position))
        for keyword in matched:
            pair = votes.setdefault(keyword, [0, 0])
            if insider_vote:
                pair[0] += 1
            if outsider_vote:
                pair[1] += 1
            if in_region:
                years = buckets.setdefault(keyword, {})
                bucket = years.setdefault(year, _Bucket())
                bucket.add_values(views, likes, reposts, replies, sentiment)
        dirty.update(matched)
    return SignalDelta(
        buckets={
            keyword: {year: bucket.as_list() for year, bucket in years.items()}
            for keyword, years in buckets.items()
        },
        votes={
            keyword: (pair[0], pair[1]) for keyword, pair in votes.items()
        },
        dirty=tuple(sorted(dirty)),
        observed=hi - lo,
    )


class SegmentSidecar:
    """Precomputed per-``keyword × year`` aggregates of one sealed segment.

    A cold tier segment never changes, so its contribution to the
    running SAI aggregates can be computed once at seal time and then
    answered as a dictionary lookup — window counts, engagement and
    sentiment bucket sums and voice votes, exactly the fields a
    :class:`SignalDelta` carries.  :meth:`build` sweeps the segment with
    :func:`compute_signal_delta_columnar`, so every stored sum is
    bit-for-bit identical to folding the segment's posts through
    :meth:`DeltaTracker.observe`.

    The keyword universe is pinned at build time; when the database
    learns a new keyword later, :meth:`extend` materializes the raw
    columns once, sweeps only the *missing* keywords and folds the
    result in — the lazy per-keyword rebuild the streaming learning
    backfill relies on.
    """

    __slots__ = ("_keywords", "_buckets", "_votes", "_posts")

    def __init__(
        self,
        *,
        keywords: Sequence[str],
        buckets: Dict[str, Dict[int, List[float]]],
        votes: Dict[str, Tuple[int, int]],
        posts: int,
    ) -> None:
        self._keywords: Tuple[str, ...] = tuple(keywords)
        self._buckets = buckets
        self._votes = votes
        self._posts = posts

    @classmethod
    def build(
        cls,
        keywords: Sequence[str],
        columns: ColumnarCorpus,
        *,
        region: Optional[str] = None,
        analyzer: Optional[SentimentAnalyzer] = None,
    ) -> "SegmentSidecar":
        """Sweep one sealed segment into its aggregate sidecar."""
        delta = compute_signal_delta_columnar(
            keywords, columns, region=region, analyzer=analyzer
        )
        return cls(
            keywords=keywords,
            buckets={
                keyword: {int(year): list(values) for year, values in years.items()}
                for keyword, years in delta.buckets.items()
            },
            votes=dict(delta.votes),
            posts=delta.observed,
        )

    # -- shape ---------------------------------------------------------------

    @property
    def keywords(self) -> Tuple[str, ...]:
        """The keyword universe this sidecar has swept."""
        return self._keywords

    @property
    def posts(self) -> int:
        """How many posts the sealed segment holds."""
        return self._posts

    @property
    def entries(self) -> int:
        """Populated ``(keyword, year)`` aggregate cells."""
        return sum(len(years) for years in self._buckets.values())

    def covers(self, keywords: Sequence[str]) -> bool:
        """Whether every keyword in ``keywords`` has been swept."""
        known = set(self._keywords)
        return all(keyword in known for keyword in keywords)

    def missing(self, keywords: Sequence[str]) -> Tuple[str, ...]:
        """The subset of ``keywords`` this sidecar has not swept yet."""
        known = set(self._keywords)
        return tuple(k for k in keywords if k not in known)

    # -- lazy per-keyword rebuild --------------------------------------------

    def extend(
        self,
        keywords: Sequence[str],
        columns: ColumnarCorpus,
        *,
        region: Optional[str] = None,
        analyzer: Optional[SentimentAnalyzer] = None,
    ) -> Tuple[str, ...]:
        """Sweep the keywords of ``keywords`` not covered yet.

        ``columns`` must be the (re-materialized) sealed segment this
        sidecar was built from.  Only the missing keywords are swept;
        returns them.  ``posts`` is unchanged — the segment itself did
        not grow.
        """
        missing = self.missing(keywords)
        if not missing:
            return ()
        delta = compute_signal_delta_columnar(
            missing, columns, region=region, analyzer=analyzer
        )
        for keyword, years in delta.buckets.items():
            self._buckets[keyword] = {
                int(year): list(values) for year, values in years.items()
            }
        for keyword, pair in delta.votes.items():
            self._votes[keyword] = (pair[0], pair[1])
        self._keywords = self._keywords + missing
        return missing

    # -- lookup --------------------------------------------------------------

    def as_delta(
        self,
        keywords: Optional[Sequence[str]] = None,
        *,
        count_observed: bool = True,
    ) -> SignalDelta:
        """The segment's aggregate contribution as a :class:`SignalDelta`.

        Restricted to ``keywords`` when given (each must already be
        covered).  With ``count_observed=False`` the delta carries zero
        observed posts — the backfill form, which adds a late-learned
        keyword's sums without double-counting segment volume a tracker
        has already observed.
        """
        if keywords is None:
            selected: Sequence[str] = self._keywords
        else:
            missing = self.missing(keywords)
            if missing:
                raise ValueError(
                    f"sidecar has not swept keywords: {sorted(missing)}"
                )
            selected = keywords
        buckets = {
            keyword: {
                year: list(values)
                for year, values in self._buckets[keyword].items()
            }
            for keyword in selected
            if keyword in self._buckets
        }
        votes = {
            keyword: self._votes[keyword]
            for keyword in selected
            if keyword in self._votes
        }
        dirty = tuple(sorted(set(buckets) | set(votes)))
        return SignalDelta(
            buckets=buckets,
            votes=votes,
            dirty=dirty,
            observed=self._posts if count_observed else 0,
        )

    # -- serialization -------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-serialisable sidecar snapshot (pure plain data)."""
        return {
            "keywords": list(self._keywords),
            "posts": self._posts,
            "buckets": {
                keyword: {
                    str(year): list(values)
                    for year, values in sorted(years.items())
                }
                for keyword, years in sorted(self._buckets.items())
            },
            "votes": {
                keyword: [pair[0], pair[1]]
                for keyword, pair in sorted(self._votes.items())
            },
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "SegmentSidecar":
        """Rebuild a sidecar from a :meth:`state_dict` snapshot."""
        return cls(
            keywords=tuple(state["keywords"]),  # type: ignore[arg-type]
            buckets={
                keyword: {
                    int(year): list(values)
                    for year, values in years.items()  # type: ignore[union-attr]
                }
                for keyword, years in state["buckets"].items()  # type: ignore[union-attr]
            },
            votes={
                keyword: (int(pair[0]), int(pair[1]))
                for keyword, pair in state["votes"].items()  # type: ignore[union-attr]
            },
            posts=int(state["posts"]),  # type: ignore[arg-type]
        )


class DeltaTracker:
    """Maps arriving posts to affected keywords and keeps running sums.

    Args:
        database: the attack-keyword database; its keywords define the
            tracked universe.  The tracker snapshots the keyword set;
            mid-stream learning *adds* keywords via
            :meth:`adopt_keywords` (removals still require a restart).
        region: when given, only posts of this region feed the SAI
            buckets (the batch pipeline's region-scoped query).  Voice
            votes are intentionally region-unscoped, mirroring the
            batch classifier's evidence search.
        analyzer: sentiment analyzer; shares the per-text memo with
            every other consumer via :func:`analyze_text`.
    """

    def __init__(
        self,
        database: Optional[KeywordDatabase] = None,
        *,
        region: Optional[str] = None,
        analyzer: Optional[SentimentAnalyzer] = None,
        keywords: Optional[Sequence[str]] = None,
    ) -> None:
        if database is None and keywords is None:
            raise ValueError("DeltaTracker needs a database or keywords")
        self._keywords: Tuple[str, ...] = (
            tuple(keywords) if keywords is not None else database.keywords  # type: ignore[union-attr]
        )
        self._region = region.strip().lower() if region else None
        self._analyzer = analyzer or SentimentAnalyzer()
        self._buckets: Dict[str, Dict[int, _Bucket]] = {}
        self._votes: Dict[str, _Votes] = {}
        self._dirty: set = set()
        self._dirty_since_snapshot: set = set()
        self._observed = 0

    # -- ingestion ----------------------------------------------------------

    @property
    def keywords(self) -> Tuple[str, ...]:
        """The tracked (canonical) keywords."""
        return self._keywords

    @property
    def region(self) -> Optional[str]:
        """The SAI region scope (None = unscoped)."""
        return self._region

    @property
    def analyzer(self) -> SentimentAnalyzer:
        """The sentiment analyzer scoring this tracker's buckets.

        Sidecar builds must share it so sealed-segment sums stay
        bit-identical to the tracker's own accumulation.
        """
        return self._analyzer

    def adopt_keywords(self, keywords: Sequence[str]) -> Tuple[str, ...]:
        """Grow the tracked universe to ``keywords``; returns the added.

        Mid-stream keyword learning only ever *adds* keywords (the
        database appends learned entries), so the new tuple must contain
        every currently tracked keyword — anything else is a different
        monitor, not a retune, and raises ``ValueError``.  Aggregates
        for the added keywords start empty; the caller backfills them
        from the index (see ``signal_backfill``) and marks them dirty.
        """
        adopted = tuple(keywords)
        current = set(self._keywords)
        removed = current - set(adopted)
        if removed:
            raise ValueError(
                "cannot drop tracked keywords mid-stream: "
                f"{sorted(removed)}"
            )
        added = tuple(k for k in adopted if k not in current)
        self._keywords = adopted
        return added

    def mark_dirty(self, keywords: Iterable[str]) -> None:
        """Force keywords into the dirty sets (backfilled aggregates)."""
        marked = set(keywords)
        self._dirty.update(marked)
        self._dirty_since_snapshot.update(marked)

    @property
    def observed_posts(self) -> int:
        """How many posts have been observed so far."""
        return self._observed

    def observe(self, post: Post) -> FrozenSet[str]:
        """Fold one arriving post into the running aggregates.

        Returns the keywords the post affects (its *dirty set*
        contribution).  Affection is exact: a keyword is returned iff
        the post would appear in that keyword's indexed search results.
        """
        analysis = analyze_text(post.text)
        matched = [
            keyword
            for keyword in self._keywords
            if analysis.matches_keyword(keyword)
        ]
        self._observed += 1
        if not matched:
            return frozenset()

        insider_vote = bool(analysis.word_set & INSIDER_MARKERS)
        outsider_vote = bool(analysis.word_set & OUTSIDER_MARKERS)
        in_region = (
            self._region is None or post.region.lower() == self._region
        )
        sentiment = (
            self._analyzer.score_analysis(analysis).score if in_region else 0.0
        )
        for keyword in matched:
            votes = self._votes.setdefault(keyword, _Votes())
            if insider_vote:
                votes.insider += 1
            if outsider_vote:
                votes.outsider += 1
            if in_region:
                years = self._buckets.setdefault(keyword, {})
                bucket = years.setdefault(post.year, _Bucket())
                bucket.add(post, sentiment)
        self._dirty.update(matched)
        self._dirty_since_snapshot.update(matched)
        return frozenset(matched)

    def observe_batch(self, posts: Iterable[Post]) -> FrozenSet[str]:
        """Observe a micro-batch; returns the union of affected keywords."""
        touched: set = set()
        for post in posts:
            touched.update(self.observe(post))
        return frozenset(touched)

    def ingest_batch(self, posts: Sequence[Post]) -> FrozenSet[str]:
        """Fold a micro-batch in via the arena-sweep batch kernel.

        Result-identical to :meth:`observe_batch` (bit-for-bit, float
        sums included) but the keyword matching runs as one arena sweep
        per keyword instead of per-``(post, keyword)`` substring probes
        — the fast path for micro-batch consumers like the sharded
        runtime.
        """
        delta = compute_signal_delta(
            self._keywords, posts, region=self._region, analyzer=self._analyzer
        )
        self.apply_delta(delta)
        return frozenset(delta.dirty)

    def ingest_columnar(
        self,
        columns: ColumnarCorpus,
        *,
        since=None,
        until=None,
    ) -> FrozenSet[str]:
        """Fold a columnar window in without materializing posts.

        Result-identical to :meth:`observe_batch` over the window's
        posts (bit-for-bit, float sums included) but computed straight
        from the flat columns — the backfill path for seeding a tracker
        from an already-indexed corpus.
        """
        delta = compute_signal_delta_columnar(
            self._keywords,
            columns,
            since=since,
            until=until,
            region=self._region,
            analyzer=self._analyzer,
        )
        self.apply_delta(delta)
        return frozenset(delta.dirty)

    def apply_delta(self, delta: SignalDelta) -> None:
        """Fold one :class:`SignalDelta` into the running aggregates.

        The additive counterpart of :meth:`observe_batch` for deltas
        computed elsewhere — typically by
        :func:`compute_signal_delta` inside a shard worker.
        """
        self._observed += delta.observed
        self._dirty.update(delta.dirty)
        self._dirty_since_snapshot.update(delta.dirty)
        for keyword, pair in delta.votes.items():
            votes = self._votes.setdefault(keyword, _Votes())
            votes.insider += pair[0]
            votes.outsider += pair[1]
        for keyword, years in delta.buckets.items():
            target_years = self._buckets.setdefault(keyword, {})
            for year, values in years.items():
                bucket = target_years.get(year)
                if bucket is None:
                    target_years[year] = _Bucket.from_list(list(values))
                else:
                    views, likes, reposts, replies, posts, sentiment = values
                    bucket.views += int(views)
                    bucket.likes += int(likes)
                    bucket.reposts += int(reposts)
                    bucket.replies += int(replies)
                    bucket.posts += int(posts)
                    bucket.sentiment_sum += sentiment

    # -- pure-sum merging ----------------------------------------------------

    def merge_from(self, other: "DeltaTracker") -> None:
        """Fold another tracker's aggregates into this one (pure sum).

        Both trackers must track the same keyword universe and region
        scope — merging shards of one logical stream, not unrelated
        monitors.  Every field is additive, so the merge is associative
        and (up to float summation order) commutative.
        """
        if other._keywords != self._keywords:
            raise ValueError(
                "cannot merge trackers over different keyword sets"
            )
        if other._region != self._region:
            raise ValueError(
                "cannot merge trackers with different region scopes: "
                f"{other._region!r} != {self._region!r}"
            )
        self._observed += other._observed
        self._dirty.update(other._dirty)
        self._dirty_since_snapshot.update(other._dirty_since_snapshot)
        for keyword, votes in other._votes.items():
            target = self._votes.setdefault(keyword, _Votes())
            target.insider += votes.insider
            target.outsider += votes.outsider
        for keyword, years in other._buckets.items():
            target_years = self._buckets.setdefault(keyword, {})
            for year, bucket in years.items():
                target = target_years.get(year)
                if target is None:
                    target_years[year] = _Bucket.from_list(bucket.as_list())
                else:
                    target.views += bucket.views
                    target.likes += bucket.likes
                    target.reposts += bucket.reposts
                    target.replies += bucket.replies
                    target.posts += bucket.posts
                    target.sentiment_sum += bucket.sentiment_sum

    @classmethod
    def merged(cls, trackers: Sequence["DeltaTracker"]) -> "DeltaTracker":
        """A fresh tracker holding the pure-sum merge of ``trackers``.

        The sharded runtime's merge step: per-shard trackers in, one
        global view out, equal (integer fields exactly, float sums up to
        summation order) to a single tracker fed the concatenated feed.
        """
        trackers = list(trackers)
        if not trackers:
            raise ValueError("merged() needs at least one tracker")
        first = trackers[0]
        out = cls(
            keywords=first._keywords,
            region=first._region,
            analyzer=first._analyzer,
        )
        for tracker in trackers:
            out.merge_from(tracker)
        return out

    # -- dirty bookkeeping --------------------------------------------------

    @property
    def dirty(self) -> FrozenSet[str]:
        """Keywords affected since the last :meth:`take_dirty`."""
        return frozenset(self._dirty)

    def take_dirty(self) -> FrozenSet[str]:
        """Return and clear the dirty set (one runtime tick's worth)."""
        dirty = frozenset(self._dirty)
        self._dirty.clear()
        return dirty

    # -- aggregate views ----------------------------------------------------

    def window_count(
        self,
        keyword: str,
        *,
        since_year: Optional[int] = None,
        until_year: Optional[int] = None,
    ) -> int:
        """In-region post count of one keyword within a year window."""
        years = self._buckets.get(keyword)
        if not years:
            return 0
        return sum(
            bucket.posts
            for year, bucket in years.items()
            if (since_year is None or year >= since_year)
            and (until_year is None or year <= until_year)
        )

    def window_total(
        self,
        *,
        since_year: Optional[int] = None,
        until_year: Optional[int] = None,
    ) -> int:
        """In-region post count over *all* keywords within a year window.

        The corpus-volume measure of the staleness-window retune policy:
        SAI probabilities are shares of corpus-wide totals, so a shift in
        this sum (even from outsider-only chatter) drifts every cached
        score.  O(keywords × years) — the bucket map is tiny compared to
        the corpus.
        """
        total = 0
        for years in self._buckets.values():
            for year, bucket in years.items():
                if since_year is not None and year < since_year:
                    continue
                if until_year is not None and year > until_year:
                    continue
                total += bucket.posts
        return total

    def votes(self, keyword: str) -> Tuple[int, int]:
        """(insider, outsider) voice votes accumulated for one keyword."""
        votes = self._votes.get(keyword)
        if votes is None:
            return (0, 0)
        return (votes.insider, votes.outsider)

    def signals(
        self,
        *,
        since_year: Optional[int] = None,
        until_year: Optional[int] = None,
    ) -> Dict[str, KeywordSignals]:
        """Per-keyword :class:`KeywordSignals` over a year window.

        Buckets are summed in ascending year order (deterministic float
        accumulation).  Keywords with no in-window posts are omitted —
        :meth:`~repro.core.sai.SAIComputer.compute_from_signals` treats
        them as empty.
        """
        out: Dict[str, KeywordSignals] = {}
        for keyword, years in self._buckets.items():
            views = likes = reposts = replies = posts = 0
            sentiment_sum = 0.0
            for year in sorted(years):
                if since_year is not None and year < since_year:
                    continue
                if until_year is not None and year > until_year:
                    continue
                bucket = years[year]
                views += bucket.views
                likes += bucket.likes
                reposts += bucket.reposts
                replies += bucket.replies
                posts += bucket.posts
                sentiment_sum += bucket.sentiment_sum
            if posts == 0:
                continue
            out[keyword] = KeywordSignals(
                engagement=Engagement(
                    views=views, likes=likes, reposts=reposts, replies=replies
                ),
                mean_sentiment=sentiment_sum / posts,
                post_count=posts,
            )
        return out

    # -- checkpoint support -------------------------------------------------

    @property
    def dirty_since_snapshot(self) -> FrozenSet[str]:
        """Keywords whose aggregates changed since :meth:`mark_snapshot`.

        Unlike :attr:`dirty` (cleared every runtime tick), this set
        accumulates until a base checkpoint is taken — it is what a
        *delta* checkpoint has to persist.
        """
        return frozenset(self._dirty_since_snapshot)

    def mark_snapshot(self) -> None:
        """Declare the current state fully persisted (base checkpoint)."""
        self._dirty_since_snapshot.clear()

    def delta_state(self) -> Dict[str, object]:
        """The aggregates changed since the last snapshot, O(changed).

        Returns the full current per-keyword buckets/votes of every
        keyword in :attr:`dirty_since_snapshot` (replay is replace, not
        add, so repeated delta saves stay idempotent), plus the scalar
        fields a resume needs.  Keywords untouched since the base
        snapshot are omitted — the save cost long-running monitors care
        about.
        """
        changed = {}
        for keyword in sorted(self._dirty_since_snapshot):
            years = self._buckets.get(keyword, {})
            votes = self._votes.get(keyword)
            changed[keyword] = {
                "buckets": {
                    str(year): bucket.as_list()
                    for year, bucket in sorted(years.items())
                },
                "votes": [votes.insider, votes.outsider] if votes else [0, 0],
            }
        return {
            "observed": self._observed,
            "dirty": sorted(self._dirty),
            "changed": changed,
        }

    def state_dict(self) -> Dict[str, object]:
        """JSON-serialisable snapshot of the running aggregates."""
        return {
            "keywords": list(self._keywords),
            "region": self._region,
            "observed": self._observed,
            "buckets": {
                keyword: {
                    str(year): bucket.as_list()
                    for year, bucket in sorted(years.items())
                }
                for keyword, years in sorted(self._buckets.items())
            },
            "votes": {
                keyword: [votes.insider, votes.outsider]
                for keyword, votes in sorted(self._votes.items())
            },
            "dirty": sorted(self._dirty),
            "dirty_since_snapshot": sorted(self._dirty_since_snapshot),
        }

    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot (keyword set must match)."""
        keywords = tuple(state["keywords"])  # type: ignore[arg-type]
        if keywords != self._keywords:
            raise ValueError(
                "checkpoint keyword set does not match the database: "
                f"{keywords} != {self._keywords}"
            )
        self._observed = int(state["observed"])  # type: ignore[arg-type]
        self._buckets = {
            keyword: {
                int(year): _Bucket.from_list(values)
                for year, values in years.items()  # type: ignore[union-attr]
            }
            for keyword, years in state["buckets"].items()  # type: ignore[union-attr]
        }
        self._votes = {
            keyword: _Votes(insider=int(pair[0]), outsider=int(pair[1]))
            for keyword, pair in state["votes"].items()  # type: ignore[union-attr]
        }
        self._dirty = set(state["dirty"])  # type: ignore[arg-type]
        if "dirty_since_snapshot" in state:
            self._dirty_since_snapshot = set(state["dirty_since_snapshot"])  # type: ignore[arg-type]
        else:
            # Pre-delta-checkpoint snapshot: conservatively treat every
            # keyword with any aggregate as unsnapshotted, so a later
            # delta save never under-saves.
            self._dirty_since_snapshot = set(self._buckets) | set(self._votes)
