"""Dirty-keyword tracking and running SAI aggregates.

The batch SAI pass is O(corpus): every keyword's posts are re-fetched
and re-condensed per analysis window.  Every signal the scorer needs is
*additive over posts* (engagement counters, post volume, summed
sentiment), so a streaming consumer only has to know, per arriving
post, **which keywords it affects** — then bump those keywords' running
sums.  :class:`DeltaTracker` does exactly that:

* an arriving post's hashtags/tokens/stems/haystack are probed against
  every database keyword with the same folded-match predicate the
  inverted index uses (:meth:`~repro.nlp.analysis.PostAnalysis.matches_keyword`),
  so "affects keyword K" here means precisely "would appear in K's
  search results";
* affected keywords become **dirty** until the runtime processes them;
* per ``keyword × year`` buckets accumulate views/likes/reposts/replies,
  post counts and summed sentiment — any ``since_year..`` analysis
  window is a sum over year buckets, O(years) per keyword;
* per-keyword insider/outsider **voice votes** (the classifier's text
  signals) accumulate over *all* arriving posts, mirroring the batch
  classifier's full-history, region-unscoped evidence search.

One deliberate semantic difference from the batch path: the batch
classifier searches the whole corpus — including posts *newer than the
analysis window*, an artifact of replaying history against a static
store.  A streaming tracker can only vote with evidence seen so far;
the two converge once the feed catches up.  (Keywords carrying an
``owner_approved`` annotation — all scenario keywords — classify
identically on both paths.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.core.classification import INSIDER_MARKERS, OUTSIDER_MARKERS
from repro.core.keywords import KeywordDatabase
from repro.core.sai import KeywordSignals
from repro.nlp.analysis import analyze_text
from repro.nlp.sentiment import SentimentAnalyzer
from repro.social.post import Engagement, Post

#: re-exported for convenience of streaming consumers.
__all__ = ["DeltaTracker", "KeywordSignals"]


@dataclass
class _Bucket:
    """Additive signals of one (keyword, year) cell."""

    views: int = 0
    likes: int = 0
    reposts: int = 0
    replies: int = 0
    posts: int = 0
    sentiment_sum: float = 0.0

    def add(self, post: Post, sentiment: float) -> None:
        engagement = post.engagement
        self.views += engagement.views
        self.likes += engagement.likes
        self.reposts += engagement.reposts
        self.replies += engagement.replies
        self.posts += 1
        self.sentiment_sum += sentiment

    def as_list(self) -> List[float]:
        return [
            self.views,
            self.likes,
            self.reposts,
            self.replies,
            self.posts,
            self.sentiment_sum,
        ]

    @classmethod
    def from_list(cls, values: List[float]) -> "_Bucket":
        views, likes, reposts, replies, posts, sentiment_sum = values
        return cls(
            views=int(views),
            likes=int(likes),
            reposts=int(reposts),
            replies=int(replies),
            posts=int(posts),
            sentiment_sum=float(sentiment_sum),
        )


@dataclass
class _Votes:
    """Running classifier voice votes for one keyword."""

    insider: int = 0
    outsider: int = 0


class DeltaTracker:
    """Maps arriving posts to affected keywords and keeps running sums.

    Args:
        database: the attack-keyword database; its keywords define the
            tracked universe.  The tracker snapshots the keyword set —
            the runtime refuses to continue over a mutated database
            (streaming keyword learning is an open roadmap item).
        region: when given, only posts of this region feed the SAI
            buckets (the batch pipeline's region-scoped query).  Voice
            votes are intentionally region-unscoped, mirroring the
            batch classifier's evidence search.
        analyzer: sentiment analyzer; shares the per-text memo with
            every other consumer via :func:`analyze_text`.
    """

    def __init__(
        self,
        database: KeywordDatabase,
        *,
        region: Optional[str] = None,
        analyzer: Optional[SentimentAnalyzer] = None,
    ) -> None:
        self._keywords: Tuple[str, ...] = database.keywords
        self._region = region.strip().lower() if region else None
        self._analyzer = analyzer or SentimentAnalyzer()
        self._buckets: Dict[str, Dict[int, _Bucket]] = {}
        self._votes: Dict[str, _Votes] = {}
        self._dirty: set = set()
        self._observed = 0

    # -- ingestion ----------------------------------------------------------

    @property
    def keywords(self) -> Tuple[str, ...]:
        """The tracked (canonical) keywords."""
        return self._keywords

    @property
    def region(self) -> Optional[str]:
        """The SAI region scope (None = unscoped)."""
        return self._region

    @property
    def observed_posts(self) -> int:
        """How many posts have been observed so far."""
        return self._observed

    def observe(self, post: Post) -> FrozenSet[str]:
        """Fold one arriving post into the running aggregates.

        Returns the keywords the post affects (its *dirty set*
        contribution).  Affection is exact: a keyword is returned iff
        the post would appear in that keyword's indexed search results.
        """
        analysis = analyze_text(post.text)
        matched = [
            keyword
            for keyword in self._keywords
            if analysis.matches_keyword(keyword)
        ]
        self._observed += 1
        if not matched:
            return frozenset()

        insider_vote = bool(analysis.word_set & INSIDER_MARKERS)
        outsider_vote = bool(analysis.word_set & OUTSIDER_MARKERS)
        in_region = (
            self._region is None or post.region.lower() == self._region
        )
        sentiment = (
            self._analyzer.score_analysis(analysis).score if in_region else 0.0
        )
        for keyword in matched:
            votes = self._votes.setdefault(keyword, _Votes())
            if insider_vote:
                votes.insider += 1
            if outsider_vote:
                votes.outsider += 1
            if in_region:
                years = self._buckets.setdefault(keyword, {})
                bucket = years.setdefault(post.year, _Bucket())
                bucket.add(post, sentiment)
        self._dirty.update(matched)
        return frozenset(matched)

    def observe_batch(self, posts: Iterable[Post]) -> FrozenSet[str]:
        """Observe a micro-batch; returns the union of affected keywords."""
        touched: set = set()
        for post in posts:
            touched.update(self.observe(post))
        return frozenset(touched)

    # -- dirty bookkeeping --------------------------------------------------

    @property
    def dirty(self) -> FrozenSet[str]:
        """Keywords affected since the last :meth:`take_dirty`."""
        return frozenset(self._dirty)

    def take_dirty(self) -> FrozenSet[str]:
        """Return and clear the dirty set (one runtime tick's worth)."""
        dirty = frozenset(self._dirty)
        self._dirty.clear()
        return dirty

    # -- aggregate views ----------------------------------------------------

    def window_count(
        self,
        keyword: str,
        *,
        since_year: Optional[int] = None,
        until_year: Optional[int] = None,
    ) -> int:
        """In-region post count of one keyword within a year window."""
        years = self._buckets.get(keyword)
        if not years:
            return 0
        return sum(
            bucket.posts
            for year, bucket in years.items()
            if (since_year is None or year >= since_year)
            and (until_year is None or year <= until_year)
        )

    def votes(self, keyword: str) -> Tuple[int, int]:
        """(insider, outsider) voice votes accumulated for one keyword."""
        votes = self._votes.get(keyword)
        if votes is None:
            return (0, 0)
        return (votes.insider, votes.outsider)

    def signals(
        self,
        *,
        since_year: Optional[int] = None,
        until_year: Optional[int] = None,
    ) -> Dict[str, KeywordSignals]:
        """Per-keyword :class:`KeywordSignals` over a year window.

        Buckets are summed in ascending year order (deterministic float
        accumulation).  Keywords with no in-window posts are omitted —
        :meth:`~repro.core.sai.SAIComputer.compute_from_signals` treats
        them as empty.
        """
        out: Dict[str, KeywordSignals] = {}
        for keyword, years in self._buckets.items():
            views = likes = reposts = replies = posts = 0
            sentiment_sum = 0.0
            for year in sorted(years):
                if since_year is not None and year < since_year:
                    continue
                if until_year is not None and year > until_year:
                    continue
                bucket = years[year]
                views += bucket.views
                likes += bucket.likes
                reposts += bucket.reposts
                replies += bucket.replies
                posts += bucket.posts
                sentiment_sum += bucket.sentiment_sum
            if posts == 0:
                continue
            out[keyword] = KeywordSignals(
                engagement=Engagement(
                    views=views, likes=likes, reposts=reposts, replies=replies
                ),
                mean_sentiment=sentiment_sum / posts,
                post_count=posts,
            )
        return out

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-serialisable snapshot of the running aggregates."""
        return {
            "keywords": list(self._keywords),
            "region": self._region,
            "observed": self._observed,
            "buckets": {
                keyword: {
                    str(year): bucket.as_list()
                    for year, bucket in sorted(years.items())
                }
                for keyword, years in sorted(self._buckets.items())
            },
            "votes": {
                keyword: [votes.insider, votes.outsider]
                for keyword, votes in sorted(self._votes.items())
            },
            "dirty": sorted(self._dirty),
        }

    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot (keyword set must match)."""
        keywords = tuple(state["keywords"])  # type: ignore[arg-type]
        if keywords != self._keywords:
            raise ValueError(
                "checkpoint keyword set does not match the database: "
                f"{keywords} != {self._keywords}"
            )
        self._observed = int(state["observed"])  # type: ignore[arg-type]
        self._buckets = {
            keyword: {
                int(year): _Bucket.from_list(values)
                for year, values in years.items()  # type: ignore[union-attr]
            }
            for keyword, years in state["buckets"].items()  # type: ignore[union-attr]
        }
        self._votes = {
            keyword: _Votes(insider=int(pair[0]), outsider=int(pair[1]))
            for keyword, pair in state["votes"].items()  # type: ignore[union-attr]
        }
        self._dirty = set(state["dirty"])  # type: ignore[arg-type]
