"""The streaming PSP orchestrator: feed in, alerts out.

:class:`StreamRuntime` is the event-driven counterpart of
:class:`~repro.core.monitor.PSPMonitor`'s grow-window re-run loop.  One
tick consumes a micro-batch of :class:`~repro.stream.feed.PostEvent`
records and performs, in order:

1. **authenticity filtering** — the poisoning heuristics of
   :mod:`repro.core.poisoning` applied per micro-batch, so a flood
   injected mid-stream is rejected *before* it can dirty any keyword;
2. **index append** — accepted posts join the
   :class:`~repro.stream.index.StreamingCorpusIndex` (O(batch));
3. **dirty SAI** — the :class:`~repro.stream.deltas.DeltaTracker` maps
   each post to the keywords it affects and bumps their running
   aggregates (O(batch × keywords) string probes, no corpus scan);
4. **conditional weight retune** — insider weights are re-derived only
   when a dirty keyword is insider-classified (before or after
   reclassification); pure-outsider chatter leaves the table in force;
5. **conditional TARA rescore** — the compiled
   :class:`~repro.tara.scoring.BatchTaraScorer` re-scores only when the
   insider table's rating fingerprint actually changed, and the tick
   emits a :class:`~repro.core.monitor.TrendAlert` (same shape as the
   batch monitor's) plus an optional lifecycle trend-shift event.

Steps 4-5 live in :class:`TickEvaluator`, shared verbatim with the
sharded runtime (:mod:`repro.stream.sharding`) — N shards merge their
deltas and run this evaluator *once* per tick, which is exactly what
makes retune/rescore cost independent of shard count.

The first evaluation always tunes (establishing the baseline table and
never alerting — the monitor's first-tick contract).  All mutable state
is checkpointable (:mod:`repro.stream.checkpoint`): a stopped runtime
resumes from its cursor and produces the same remaining alerts as an
uninterrupted run.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.classification import ClassifiedEntry, InsiderOutsiderSplit
from repro.core.config import PSPConfig, TargetApplication
from repro.core.errors import PSPError
from repro.core.framework import PSPRunResult
from repro.core.keywords import KeywordDatabase
from repro.core.monitor import TrendAlert, VectorChange
from repro.core.poisoning import FilterReport, PostAuthenticityFilter
from repro.core.sai import SAIComputer, SAIList
from repro.core.timewindow import TimeWindow
from repro.core.weights import WeightTuner
from repro.iso21434.feasibility.attack_vector import WeightTable
from repro.obs import views as obs_views
from repro.obs.registry import DEFAULT_SIZE_BUCKETS, ensure_registry
from repro.obs.trace import trace_for
from repro.stream.deltas import DeltaTracker
from repro.stream.feed import FeedSource, PostEvent
from repro.stream.index import DEFAULT_COMPACT_THRESHOLD, StreamingCorpusIndex
from repro.stream.tiers import build_stream_index
from repro.tara.lifecycle import LifecycleTracker
from repro.tara.model import compile_threat_model
from repro.tara.scoring import (
    BatchTaraScorer,
    TaraReportData,
    table_fingerprint,
)
from repro.vehicle.network import VehicleNetwork

#: Default micro-batch size for :meth:`StreamRuntime.step`.
DEFAULT_BATCH_SIZE = 256


@dataclass(frozen=True)
class StreamTick:
    """Outcome of one runtime tick (one micro-batch).

    ``shard_accepted`` is empty for the single-feed runtime; the sharded
    runtime records how many accepted posts each shard contributed.
    """

    seq: int
    events: int
    accepted: int
    rejected: int
    dirty: Tuple[str, ...]
    retuned: bool
    rescored: bool
    alert: Optional[TrendAlert]
    upto_year: Optional[int]
    shard_accepted: Tuple[int, ...] = ()

    def describe(self) -> str:
        """One-line tick summary."""
        if self.alert is not None:
            verdict = "ALERT"
        elif self.retuned:
            verdict = "no rating change"
        else:
            verdict = "stable"
        return (
            f"tick {self.seq}: +{self.accepted} posts"
            f" ({self.rejected} rejected), {len(self.dirty)} dirty,"
            f" {'retuned' if self.retuned else 'no retune'}, {verdict}"
        )


class TickEvaluator:
    """Conditional retune + conditional rescore over running aggregates.

    The table-producing half of a streaming tick, factored out of
    :class:`StreamRuntime` so the sharded runtime can run the identical
    evaluation *once* over its merged shard deltas: classification from
    votes, SAI from signals, weight tuning, fingerprint diffing, TARA
    rescoring and alert emission all live here, parameterised only by
    the :class:`~repro.stream.deltas.DeltaTracker` (or merged view)
    handed to :meth:`evaluate`.
    """

    def __init__(
        self,
        database: KeywordDatabase,
        *,
        target: TargetApplication,
        config: PSPConfig,
        since_year: Optional[int] = None,
        network: Optional[VehicleNetwork] = None,
        tracker: Optional[LifecycleTracker] = None,
        metrics=None,
        trace=None,
    ) -> None:
        self._database = database
        self._target = target
        self._config = config
        self.since_year = since_year
        self._tracker = tracker
        self._metrics = ensure_registry(metrics)
        self._trace = trace if trace is not None else trace_for(self._metrics)
        self._retunes_total = self._metrics.counter(
            "psp_retunes_total", "Weight-table retunes"
        )
        self._forced_retunes_total = self._metrics.counter(
            "psp_forced_retunes_total", "Staleness-forced retunes"
        )
        self._rescores_total = self._metrics.counter(
            "psp_tara_rescores_total", "Compiled-TARA rescores"
        )
        self._alerts_total = self._metrics.counter(
            "psp_alerts_total", "Trend alerts emitted"
        )
        self._staleness_share = config.stream_staleness_share
        # The signals scoring path never touches the client slot.
        self._computer = SAIComputer(None, config=config)  # type: ignore[arg-type]
        self._tuner = WeightTuner(config.tuning)
        self._scorer: Optional[BatchTaraScorer] = None
        if network is not None:
            self._scorer = BatchTaraScorer(compile_threat_model(network))

        self.insider_flags: Dict[str, bool] = {}
        self.last_table: Optional[WeightTable] = None
        self.last_fingerprint: Optional[Tuple] = None
        self.last_result: Optional[PSPRunResult] = None
        self.alerts: List[TrendAlert] = []
        self.retunes = 0
        self.rescores = 0
        #: In-window corpus volume measured at the last retune — the
        #: reference point of the staleness-window policy.
        self.retune_window_posts: Optional[int] = None
        self.forced_retunes = 0

    @property
    def scorer(self) -> Optional[BatchTaraScorer]:
        """The compiled-model TARA scorer (None without a network)."""
        return self._scorer

    def baseline_tara(self) -> Optional[TaraReportData]:
        """The static-table TARA (None without a network)."""
        if self._scorer is None:
            return None
        return self._scorer.score()

    def _window(self, upto_year: Optional[int]) -> TimeWindow:
        if self.since_year is not None and upto_year is not None:
            return TimeWindow.years(self.since_year, upto_year)
        since = (
            dt.date(self.since_year, 1, 1)
            if self.since_year is not None
            else None
        )
        until = dt.date(upto_year, 12, 31) if upto_year is not None else None
        return TimeWindow(since=since, until=until, label="streamed")

    def _classify(self, deltas: DeltaTracker, keyword: str) -> bool:
        """Mirror of the batch classifier over the running aggregates."""
        annotation = self._database.get(keyword).owner_approved
        if annotation is not None:
            return annotation
        count = deltas.window_count(keyword, since_year=self.since_year)
        if count <= 0:
            return False
        insider_votes, outsider_votes = deltas.votes(keyword)
        return insider_votes > outsider_votes

    def _split(self, deltas: DeltaTracker, sai: SAIList) -> InsiderOutsiderSplit:
        """Partition the SAI list using cached classifications."""
        insider: List[ClassifiedEntry] = []
        outsider: List[ClassifiedEntry] = []
        for entry in sai:
            keyword = entry.keyword
            flag = self.insider_flags.get(keyword)
            if flag is None:
                flag = self._classify(deltas, keyword)
                self.insider_flags[keyword] = flag
            annotation = self._database.get(keyword).owner_approved
            votes = (
                (0, 0) if annotation is not None else deltas.votes(keyword)
            )
            classified = ClassifiedEntry(
                entry=entry,
                insider=flag,
                from_annotation=annotation is not None,
                insider_votes=votes[0],
                outsider_votes=votes[1],
            )
            (insider if flag else outsider).append(classified)
        return InsiderOutsiderSplit(
            insider=tuple(insider), outsider=tuple(outsider)
        )

    def _stale_retune_due(
        self, deltas: DeltaTracker, upto_year: Optional[int]
    ) -> bool:
        """Has the in-window volume drifted past the staleness threshold?

        Compares the current in-window post total against the total at
        the last retune; a relative move beyond
        ``config.stream_staleness_share`` forces a retune so the cached
        SAI scores track the corpus again.  Cost model: the check itself
        is O(keywords × years) on the bucket map; a forced retune costs
        one signals pass + tune, the same as any insider tick — and is
        amortised because the reference volume resets, so sustained
        outsider chatter triggers at most one forced retune per
        threshold-crossing, not one per tick.
        """
        if self._staleness_share is None:
            return False
        reference = self.retune_window_posts
        if reference is None:
            return False
        current = deltas.window_total(
            since_year=self.since_year, until_year=upto_year
        )
        if reference == 0:
            return current > 0
        return abs(current - reference) / reference > self._staleness_share

    def evaluate(
        self,
        deltas: DeltaTracker,
        dirty: Sequence[str],
        upto_year: Optional[int],
    ) -> Tuple[bool, bool, Optional[TrendAlert]]:
        """Conditional retune + conditional rescore for one tick.

        ``deltas`` is whichever aggregate view covers the whole logical
        stream — the single runtime's own tracker, or the sharded
        runtime's pure-sum merge of its shard trackers.
        """
        first = self.last_table is None
        before = any(self.insider_flags.get(k, False) for k in dirty)
        for keyword in dirty:
            self.insider_flags[keyword] = self._classify(deltas, keyword)
        after = any(self.insider_flags[k] for k in dirty)
        if not first and not (before or after):
            # Outsider-only (or unmatched) chatter cannot move the
            # insider weight table, but it still shifts the corpus-wide
            # totals every SAI probability is a share of — the cached
            # scores go stale.  Retune anyway once the in-window volume
            # has drifted past the staleness threshold.
            if not self._stale_retune_due(deltas, upto_year):
                return False, False, None
            self.forced_retunes += 1
            self._forced_retunes_total.inc()

        with self._trace.span("sai"):
            window = self._window(upto_year)
            signals = deltas.signals(
                since_year=self.since_year, until_year=upto_year
            )
            sai = self._computer.compute_from_signals(self._database, signals)
        with self._trace.span("retune"):
            split = self._split(deltas, sai)
            tuning = self._tuner.tune(split, window_label=window.describe())
            table = tuning.insider_table
            fingerprint = table_fingerprint(table)
            result = PSPRunResult(
                target=self._target,
                window=window,
                sai=sai,
                split=split,
                tuning=tuning,
                learned_keywords=(),
            )
            self.retunes += 1
            self._retunes_total.inc()
            self.retune_window_posts = deltas.window_total(
                since_year=self.since_year, until_year=upto_year
            )

        rescored = False
        alert: Optional[TrendAlert] = None
        if (
            self.last_table is not None
            and fingerprint != self.last_fingerprint
        ):
            changed = table.differs_from(self.last_table)
            changes = tuple(
                VectorChange(
                    vector=vector,
                    before=self.last_table.rating(vector),
                    after=table.rating(vector),
                )
                for vector in changed
            )
            tara: Optional[TaraReportData] = None
            if self._scorer is not None:
                with self._trace.span("rescore"):
                    tara = self._scorer.score(insider_table=table)
                rescored = True
                self.rescores += 1
                self._rescores_total.inc()
            with self._trace.span("alert_emit"):
                alert = TrendAlert(
                    upto_year=upto_year if upto_year is not None else 0,
                    changes=changes,
                    result=result,
                    tara=tara,
                )
                self.alerts.append(alert)
                self._alerts_total.inc()
                if self._tracker is not None:
                    self._tracker.report_trend_shift(alert.describe())

        self.last_table = table
        self.last_fingerprint = fingerprint
        self.last_result = result
        return True, rescored, alert

    # -- checkpoint support --------------------------------------------------

    def state_slice(self) -> Dict[str, object]:
        """The evaluator's share of a runtime ``state_dict``."""
        return {
            "insider_flags": dict(sorted(self.insider_flags.items())),
            "last_table": _table_state(self.last_table),
            "alert_count": len(self.alerts),
            "retunes": self.retunes,
            "tara_rescores": self.rescores,
            "retune_window_posts": self.retune_window_posts,
            "forced_retunes": self.forced_retunes,
        }

    def load_slice(
        self, state: Mapping[str, object], *, database_matches: bool
    ) -> None:
        """Restore the :meth:`state_slice` fields."""
        if database_matches:
            self.insider_flags = {
                str(k): bool(v)
                for k, v in state["insider_flags"].items()  # type: ignore[union-attr]
            }
        else:
            # The database changed since the checkpoint (e.g. an analyst
            # re-annotated a keyword).  The cached verdicts may
            # contradict the new annotations, so drop them — the next
            # evaluation reclassifies lazily from the restored votes and
            # aggregates, which is O(keywords).
            self.insider_flags = {}
        self.last_table = _table_from_state(state.get("last_table"))
        self.last_fingerprint = (
            table_fingerprint(self.last_table)
            if self.last_table is not None
            else None
        )
        self.retunes = int(state.get("retunes", 0))  # type: ignore[arg-type]
        self.rescores = int(state.get("tara_rescores", 0))  # type: ignore[arg-type]
        raw_reference = state.get("retune_window_posts")
        self.retune_window_posts = (
            int(raw_reference) if raw_reference is not None else None  # type: ignore[arg-type]
        )
        self.forced_retunes = int(state.get("forced_retunes", 0))  # type: ignore[arg-type]


class StreamRuntime:
    """Event-driven incremental PSP over a replayable feed.

    Args:
        feed: the event source (any :class:`~repro.stream.feed.FeedSource`).
        database: attack-keyword database.  *Additions* (keyword
            learning) are adopted on the next tick: the tracker's
            universe grows, the new keywords' aggregates backfill from
            the index, and they join the dirty set.  Removals or
            replacements still raise — that is a different monitor, not
            a retune.
        target: what the assessment is about; its region scopes the SAI
            aggregates exactly as the batch pipeline's region filter.
        config: pipeline tunables (SAI weights, tuning thresholds).
        since_year: lower bound of the analysis window (the monitor's
            ``start_year``); None = everything ingested.
        network: when given, the threat model is compiled once and every
            table-changing tick re-scores it (continuous TARA).
        tracker: lifecycle tracker; alerts record PSP_TREND_SHIFT events.
        post_filter: authenticity filter applied per micro-batch; posts
            it rejects never reach the index or the aggregates.
        batch_size: default micro-batch size for :meth:`step`/:meth:`run`.
        compact_threshold: tail size triggering index compaction.
        compact_ratio: optional tail/base ratio triggering compaction
            (see :class:`~repro.stream.index.StreamingCorpusIndex`).
        warm_span_days: when set (or ``cold_age_days`` is), the index is
            a :class:`~repro.stream.tiers.TieredCorpusIndex` with warm
            spans of this many days of post dates.
        cold_age_days: age horizon past which whole warm spans seal into
            immutable cold segments with aggregate sidecars (see
            :mod:`repro.stream.tiers`).
        store: optional pre-opened :class:`~repro.stream.store.
            SegmentStore` cold seals spill into (takes precedence over
            ``spill_dir``); requires tiered retention.
        spill_dir: when set, cold seals spill their columns into a
            :class:`~repro.stream.store.SegmentStore` at this directory
            and only sidecars stay resident; requires tiered retention.
        max_resident_cold: LRU bound on hydrated cold segments kept
            resident (the spill store's hydration cache); None = the
            store default.
        metrics: a :class:`~repro.obs.registry.MetricsRegistry` every
            tick writes into (counters, per-stage latency histograms via
            :class:`~repro.obs.trace.TickTrace`, tier gauges at export
            time).  None — the default — wires the
            :class:`~repro.obs.registry.NullRegistry` no-op path, whose
            overhead the ``obs_overhead`` microbench bounds.
    """

    def __init__(
        self,
        feed: FeedSource,
        database: KeywordDatabase,
        *,
        target: Optional[TargetApplication] = None,
        config: Optional[PSPConfig] = None,
        since_year: Optional[int] = None,
        network: Optional[VehicleNetwork] = None,
        tracker: Optional[LifecycleTracker] = None,
        post_filter: Optional[PostAuthenticityFilter] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
        compact_ratio: Optional[float] = None,
        warm_span_days: Optional[int] = None,
        cold_age_days: Optional[int] = None,
        store=None,
        spill_dir=None,
        max_resident_cold: Optional[int] = None,
        metrics=None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._feed = feed
        self._database = database
        self._db_version = database.version
        self._target = target or TargetApplication(
            "streamed", "global", "stream"
        )
        self._config = config or PSPConfig()
        self._batch_size = batch_size
        self._filter = post_filter
        self._metrics = ensure_registry(metrics)
        self._trace = trace_for(self._metrics)
        self._ticks_total = self._metrics.counter(
            "psp_ticks_total", "Stream ticks processed"
        )
        self._events_total = self._metrics.counter(
            "psp_events_total", "Feed events consumed"
        )
        self._ingested_total = self._metrics.counter(
            "psp_posts_ingested_total", "Posts accepted into the index"
        )
        self._rejected_total = self._metrics.counter(
            "psp_posts_rejected_total",
            "Posts rejected by the authenticity filter",
        )
        self._learned_total = self._metrics.counter(
            "psp_keywords_learned_total", "Keywords adopted mid-stream"
        )
        self._dirty_hist = self._metrics.histogram(
            "psp_dirty_keywords",
            "Dirty keywords per tick",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._cursor_gauge = self._metrics.gauge(
            "psp_feed_cursor", "Highest consumed feed sequence number"
        )
        self._deltas = DeltaTracker(
            database, region=target.region if target is not None else None
        )
        self._evaluator = TickEvaluator(
            database,
            target=self._target,
            config=self._config,
            since_year=since_year,
            network=network,
            tracker=tracker,
            metrics=self._metrics,
            trace=self._trace,
        )
        self._index = build_stream_index(
            compact_threshold=compact_threshold,
            compact_ratio=compact_ratio,
            warm_span_days=warm_span_days,
            cold_age_days=cold_age_days,
            # Cold sidecars must share the tracker's scoring context so
            # their sums stay bit-identical to per-post observe folding.
            sidecar_keywords=database.keywords,
            sidecar_region=self._deltas.region,
            sidecar_analyzer=self._deltas.analyzer,
            store=store,
            spill_dir=spill_dir,
            max_resident_cold=max_resident_cold,
            metrics=self._metrics,
        )

        self._cursor = -1
        self._tick_seq = 0
        self._max_date: Optional[dt.date] = None
        self._ticks: List[StreamTick] = []
        self._filter_reports: List[FilterReport] = []
        self._checkpoint_base_id: Optional[str] = None
        self._adopted_keywords: List[str] = []
        if self._metrics.enabled:
            self._metrics.add_collector(self._refresh_gauges)

    def _refresh_gauges(self) -> None:
        """Refresh cheap point-in-time gauges at export/snapshot time."""
        self._cursor_gauge.set(self._cursor)

    # -- introspection ------------------------------------------------------

    @property
    def cursor(self) -> int:
        """Highest consumed feed sequence number (-1 = nothing yet)."""
        return self._cursor

    @property
    def metrics(self):
        """The telemetry registry (a no-op ``NullRegistry`` by default)."""
        return self._metrics

    @property
    def trace(self):
        """The tick-span recorder bound to :attr:`metrics`."""
        return self._trace

    @property
    def learned_keywords(self) -> Tuple[str, ...]:
        """Keywords adopted mid-stream (keyword learning), oldest first."""
        return tuple(self._adopted_keywords)

    @property
    def index(self):
        """The appendable corpus index of everything ingested.

        A :class:`StreamingCorpusIndex`, or a
        :class:`~repro.stream.tiers.TieredCorpusIndex` when retention
        knobs were set — query- and checkpoint-compatible either way.
        """
        return self._index

    @property
    def deltas(self) -> DeltaTracker:
        """The dirty-keyword tracker (running aggregates)."""
        return self._deltas

    @property
    def evaluator(self) -> TickEvaluator:
        """The shared conditional retune/rescore core."""
        return self._evaluator

    @property
    def alerts(self) -> Tuple[TrendAlert, ...]:
        """All alerts emitted so far, oldest first."""
        return tuple(self._evaluator.alerts)

    @property
    def ticks(self) -> Tuple[StreamTick, ...]:
        """All processed ticks, oldest first."""
        return tuple(self._ticks)

    @property
    def current_table(self) -> Optional[WeightTable]:
        """The insider table in force (None before the first retune)."""
        return self._evaluator.last_table

    @property
    def current_result(self) -> Optional[PSPRunResult]:
        """The PSP result of the latest retune (None before the first)."""
        return self._evaluator.last_result

    @property
    def tara_scorer(self) -> Optional[BatchTaraScorer]:
        """The compiled-model scorer (None without a network)."""
        return self._evaluator.scorer

    @property
    def post_filter(self) -> Optional[PostAuthenticityFilter]:
        """The per-batch authenticity filter (None = unfiltered)."""
        return self._filter

    @property
    def filter_reports(self) -> Tuple[FilterReport, ...]:
        """Authenticity filter reports, one per filtered micro-batch."""
        return tuple(self._filter_reports)

    @property
    def checkpoint_base_id(self) -> Optional[str]:
        """Identity of the last base checkpoint saved from this runtime.

        Set by :func:`~repro.stream.checkpoint.save_checkpoint`; delta
        checkpoints record it so a resume can verify base and delta
        belong together.
        """
        return self._checkpoint_base_id

    @property
    def stream_stats(self) -> Dict[str, object]:
        """Operational counters for dashboards and benches.

        **Deprecated alias**: the flat pre-obs dict shape, now derived
        from :func:`repro.obs.views.runtime_health` so every stats
        consumer reads from one source.
        """
        return obs_views.stream_stats(self)

    def runtime_health(self) -> Dict[str, object]:
        """The unified, schema-versioned health document (see
        :mod:`repro.obs.views`)."""
        return obs_views.runtime_health(self)

    def baseline_tara(self) -> Optional[TaraReportData]:
        """The static-table TARA (None without a network)."""
        return self._evaluator.baseline_tara()

    # -- the tick -----------------------------------------------------------

    def _sync_database(self) -> Tuple[str, ...]:
        """Adopt database additions (keyword learning) into the stream.

        When the database version moved, the tracker's keyword universe
        grows to match, the added keywords' aggregates backfill from the
        retained index (``observed == 0`` — the posts were already
        counted) and the additions join the dirty set so the next
        evaluation classifies and scores them.  Anything other than pure
        additions raises: a shrunken or replaced keyword set is a
        different monitor and needs a fresh runtime.
        """
        if self._database.version == self._db_version:
            return ()
        try:
            added = self._deltas.adopt_keywords(self._database.keywords)
        except ValueError as exc:
            raise PSPError(
                "keyword database changed mid-stream in an unsupported "
                f"way (version {self._db_version} -> "
                f"{self._database.version}): {exc} — only additions "
                "(keyword learning) can be adopted without a restart"
            ) from exc
        if added:
            backfill = self._index.signal_backfill(
                added,
                region=self._deltas.region,
                analyzer=self._deltas.analyzer,
            )
            self._deltas.apply_delta(backfill)
            self._deltas.mark_dirty(added)
            adopt_sidecars = getattr(
                self._index, "adopt_sidecar_keywords", None
            )
            if adopt_sidecars is not None:
                adopt_sidecars(self._deltas.keywords)
            self._adopted_keywords.extend(added)
            self._learned_total.inc(len(added))
        else:
            # A version bump with no new keywords is an annotation
            # (owner approval changed): reclassify everything next tick.
            self._deltas.mark_dirty(self._deltas.keywords)
        self._db_version = self._database.version
        return added

    def learn_keywords(
        self, *, min_support: float = 0.05, max_new: int = 10
    ) -> Tuple[str, ...]:
        """Mine retained texts for new keywords and adopt them in-stream.

        Runs the database's co-occurrence learning over the index's
        retained texts (hot + warm for a tiered index — learning mines
        recent chatter, not frozen history), then synchronizes the
        stream: aggregates backfill, the learned keywords join the
        dirty set, and the next tick scores them.  Returns the learned
        canonical keywords.
        """
        learned = self._database.learn_from_texts(
            self._index.retained_texts(),
            min_support=min_support,
            max_new=max_new,
        )
        self._sync_database()
        return tuple(entry.keyword for entry in learned)

    def ingest(
        self,
        events: Sequence[PostEvent],
        *,
        upto_year: Optional[int] = None,
    ) -> StreamTick:
        """Process one micro-batch of events as a single tick.

        Args:
            events: the batch (may be empty — the first empty tick still
                establishes the baseline table).
            upto_year: explicit window upper bound for the tick's
                alert/result labelling; defaults to the newest ingested
                post's year.
        """
        self._sync_database()
        with self._trace.tick():
            posts = [event.post for event in events]
            rejected = 0
            with self._trace.span("filter"):
                if self._filter is not None and posts:
                    report = self._filter.filter(posts)
                    self._filter_reports.append(report)
                    accepted = list(report.accepted)
                    rejected = len(report.rejected)
                else:
                    accepted = posts
            with self._trace.span("append"):
                self._index.append(accepted)
            with self._trace.span("delta_ingest"):
                # The arena-sweep batch kernel: bit-for-bit the same
                # aggregates as per-post observe(), one C-level scan per
                # keyword instead of len(batch) x len(keywords)
                # substring probes.
                self._deltas.ingest_batch(accepted)
                # take_dirty also folds in any dirty keywords a restored
                # checkpoint carried over from an interrupted tick.
                dirty = self._deltas.take_dirty()
            for event in events:
                if event.seq > self._cursor:
                    self._cursor = event.seq
            for post in accepted:
                if self._max_date is None or post.created_at > self._max_date:
                    self._max_date = post.created_at
            if upto_year is None and self._max_date is not None:
                upto_year = self._max_date.year

            retuned, rescored, alert = self._evaluator.evaluate(
                self._deltas, dirty, upto_year
            )
        self._ticks_total.inc()
        self._events_total.inc(len(events))
        self._ingested_total.inc(len(accepted))
        self._rejected_total.inc(rejected)
        self._dirty_hist.observe(len(dirty))
        self._tick_seq += 1
        tick = StreamTick(
            seq=self._tick_seq,
            events=len(events),
            accepted=len(accepted),
            rejected=rejected,
            dirty=tuple(sorted(dirty)),
            retuned=retuned,
            rescored=rescored,
            alert=alert,
            upto_year=upto_year,
        )
        self._ticks.append(tick)
        return tick

    # -- feed drivers -------------------------------------------------------

    def step(self, batch_size: Optional[int] = None) -> Optional[StreamTick]:
        """Consume the next micro-batch; None when the feed is drained."""
        events = self._feed.events_after(
            self._cursor, limit=batch_size or self._batch_size
        )
        if not events:
            return None
        return self.ingest(events)

    def advance_to(
        self, until: dt.date, *, upto_year: Optional[int] = None
    ) -> StreamTick:
        """Consume everything up to ``until`` as one tick.

        This is the monitor-compatibility driver: the batch monitor's
        ``tick(year)`` maps to ``advance_to(date(year, 12, 31))``.  An
        empty batch still evaluates, so the first call establishes the
        baseline table even when no post precedes ``until``.
        """
        events = self._feed.events_after(self._cursor, until=until)
        return self.ingest(
            events, upto_year=upto_year if upto_year is not None else until.year
        )

    def run(self, batch_size: Optional[int] = None) -> List[StreamTick]:
        """Drain the feed in micro-batches; returns the processed ticks."""
        ticks: List[StreamTick] = []
        while True:
            tick = self.step(batch_size)
            if tick is None:
                return ticks
            ticks.append(tick)

    def close(self) -> None:
        """Release held resources (none here; sharded runtimes own pools).

        Exists so drivers — the monitor, the CLI — can close any stream
        runtime uniformly without caring which variant they built.
        """

    # -- checkpoint support -------------------------------------------------

    def state_dict(self, *, include_index: bool = True) -> Dict[str, object]:
        """JSON-serialisable snapshot of all resumable state.

        The corpus index serialises as plain columnar segments
        (:meth:`StreamingCorpusIndex.state_dict`), so a restored runtime
        reports the exact base/tail split and answers historical queries
        identically to one that never stopped.  Pass
        ``include_index=False`` for the lean pre-columnar layout —
        alerts never need historical posts (aggregates carry the
        evidence), so index-less checkpoints remain fully resumable,
        merely with an index that restarts empty.
        """
        state: Dict[str, object] = {
            "cursor": self._cursor,
            "tick_seq": self._tick_seq,
            "max_date": self._max_date.isoformat() if self._max_date else None,
            "since_year": self._evaluator.since_year,
            "db_version": self._db_version,
        }
        state.update(self._evaluator.state_slice())
        state["deltas"] = self._deltas.state_dict()
        if include_index:
            state["index"] = self._index.state_dict()
        return state

    def delta_state_dict(self) -> Dict[str, object]:
        """The state changed since the last base checkpoint, O(changed).

        Scalars (cursor, table, counters, cached classifications — all
        O(keywords) at most) are always included; the keyword×year
        aggregate buckets, the part whose size grows with history, are
        restricted to the keywords dirtied since
        :attr:`checkpoint_base_id` was saved.
        """
        state: Dict[str, object] = {
            "cursor": self._cursor,
            "tick_seq": self._tick_seq,
            "max_date": self._max_date.isoformat() if self._max_date else None,
            "since_year": self._evaluator.since_year,
            "db_version": self._db_version,
        }
        state.update(self._evaluator.state_slice())
        state["deltas_delta"] = self._deltas.delta_state()
        return state

    def mark_checkpoint_base(self, base_id: str) -> None:
        """Record that a base checkpoint now covers the current state."""
        self._checkpoint_base_id = base_id
        self._deltas.mark_snapshot()

    def adopt_checkpoint_base(self, base_id: str) -> None:
        """Adopt an existing base as this runtime's delta reference.

        Used on restore: the resumed runtime keeps delta-saving against
        the base file it was rebuilt from.  Unlike
        :meth:`mark_checkpoint_base` the snapshot-dirty set is *not*
        cleared — the overlay already restored it relative to that base.
        """
        self._checkpoint_base_id = base_id

    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot into this runtime."""
        self._cursor = int(state["cursor"])  # type: ignore[arg-type]
        self._tick_seq = int(state["tick_seq"])  # type: ignore[arg-type]
        raw_date = state.get("max_date")
        self._max_date = (
            dt.date.fromisoformat(raw_date) if raw_date else None  # type: ignore[arg-type]
        )
        self._evaluator.since_year = state.get("since_year")  # type: ignore[assignment]
        self._evaluator.load_slice(
            state,
            database_matches=state.get("db_version") == self._database.version,
        )
        self._deltas.load_state(state["deltas"])  # type: ignore[arg-type]
        index_state = state.get("index")
        if index_state is not None:
            self._index.load_state(index_state)  # type: ignore[arg-type]


def _table_state(table: Optional[WeightTable]) -> Optional[Dict[str, object]]:
    """A weight table as plain JSON data (None-safe)."""
    if table is None:
        return None
    from repro.iso21434.enums import AttackVector

    return {
        "ratings": {
            vector.value: table.rating(vector).name for vector in AttackVector
        },
        "source": table.source,
        "note": table.note,
    }


def _table_from_state(
    state: Optional[Mapping[str, object]],
) -> Optional[WeightTable]:
    """Rebuild a weight table from :func:`_table_state` data."""
    if state is None:
        return None
    from repro.iso21434.enums import AttackVector, FeasibilityRating

    ratings = {
        AttackVector(vector): FeasibilityRating[name]
        for vector, name in state["ratings"].items()  # type: ignore[union-attr]
    }
    return WeightTable(
        ratings,
        source=str(state.get("source", "psp")),
        note=str(state.get("note", "")),
    )
