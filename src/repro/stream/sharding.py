"""Sharded streaming PSP: N feeds in, one merged evaluation out.

One :class:`~repro.stream.runtime.StreamRuntime` consumes one feed.
Platform-scale monitoring wants N region- or platform-sharded feeds —
and the PR-4 way to consume them, interleaving every shard's micro-batch
through a single runtime, pays one full conditional-retune (and
potentially a TARA rescore) *per shard batch*.  This module exploits the
additivity of every streaming aggregate to do better:

* each shard owns a :class:`~repro.stream.index.StreamingCorpusIndex` +
  :class:`~repro.stream.deltas.DeltaTracker` pair, fed by its own
  :class:`~repro.stream.feed.FeedSource`;
* a shard's micro-batch is reduced to a picklable pure-data
  :class:`~repro.stream.deltas.SignalDelta` by the arena-sweep batch
  kernel (:func:`~repro.stream.deltas.compute_signal_delta`) — the
  embarrassingly parallel part, dispatched through a pluggable
  :mod:`~repro.core.executor` (serial / thread pool / process pool);
* shard deltas **merge by pure summation** (:func:`merge_signals` — the
  keyword×year engagement/sentiment buckets and voice votes are
  additive, so the merge is associative and order-independent,
  property-tested in
  ``tests/properties/test_shard_merge_equivalence.py``);
* the merged view feeds **one** shared
  :class:`~repro.stream.runtime.TickEvaluator` pass — insider
  classification, SAI, weight retuning and compiled-TARA rescoring
  happen once per tick *regardless of shard count*.

Alerts are identical to an equivalent single-feed run over the union of
the shards' posts (``benchmarks/bench_shard.py`` gates it), while the
per-tick evaluation cost stops scaling with the number of feeds.
"""

from __future__ import annotations

import datetime as dt
import time
import zlib
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.config import PSPConfig, TargetApplication
from repro.core.errors import PSPError
from repro.core.executor import resolve_executor
from repro.core.keywords import KeywordDatabase
from repro.core.monitor import TrendAlert
from repro.core.poisoning import FilterReport, PostAuthenticityFilter
from repro.core.sai import KeywordSignals
from repro.obs import views as obs_views
from repro.obs.registry import DEFAULT_SIZE_BUCKETS, ensure_registry
from repro.obs.trace import trace_for
from repro.stream.deltas import (
    DeltaTracker,
    SignalDelta,
    compute_signal_delta,
)
from repro.stream.feed import FeedSource, PostEvent, SyntheticFeed
from repro.stream.index import DEFAULT_COMPACT_THRESHOLD, StreamingCorpusIndex
from repro.stream.runtime import DEFAULT_BATCH_SIZE, StreamTick, TickEvaluator
from repro.stream.store import DEFAULT_MAX_RESIDENT_COLD, SegmentStore
from repro.stream.tiers import build_stream_index
from repro.social.post import Post
from repro.tara.lifecycle import LifecycleTracker
from repro.tara.scoring import BatchTaraScorer
from repro.vehicle.network import VehicleNetwork

__all__ = [
    "ShardedStreamRuntime",
    "merge_signals",
    "partition_posts",
    "shard_feeds",
]


# -- feed sharding helpers ----------------------------------------------------


def _stable_bucket(value: Hashable, shards: int) -> int:
    """A deterministic shard slot for one routing key (crc32-based).

    ``hash()`` is process-salted for strings, so it cannot route posts —
    two runs of the same monitor would shard the same feed differently.
    """
    return zlib.crc32(str(value).encode("utf-8")) % shards


def partition_posts(
    posts: Iterable[Post],
    shards: int,
    *,
    key: Optional[Callable[[Post], Hashable]] = None,
) -> List[List[Post]]:
    """Split posts into ``shards`` deterministic, disjoint partitions.

    Args:
        posts: the posts to route.
        shards: how many partitions to produce (>= 1).
        key: routing key per post — e.g. ``lambda p: p.region`` for
            region sharding or a platform label for platform sharding.
            Defaults to the post id, which spreads volume evenly.

    Within each partition the posts keep their input order, so feeding
    the partitions through :class:`SyntheticFeed` preserves per-shard
    timestamp ordering.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    route = key or (lambda post: post.post_id)
    partitions: List[List[Post]] = [[] for _ in range(shards)]
    for post in posts:
        partitions[_stable_bucket(route(post), shards)].append(post)
    return partitions


def shard_feeds(
    posts: Iterable[Post],
    shards: int,
    *,
    key: Optional[Callable[[Post], Hashable]] = None,
) -> Tuple[SyntheticFeed, ...]:
    """``shards`` replayable feeds over one post collection.

    The convenience constructor for synthetic/sharded deployments: the
    union of the returned feeds is exactly ``posts``, partitioned by
    :func:`partition_posts`.
    """
    return tuple(
        SyntheticFeed(partition)
        for partition in partition_posts(posts, shards, key=key)
    )


# -- the pure-sum merge -------------------------------------------------------


def merge_signals(
    trackers: Sequence[DeltaTracker],
    *,
    since_year: Optional[int] = None,
    until_year: Optional[int] = None,
) -> Dict[str, KeywordSignals]:
    """Per-keyword signals of several shard trackers, merged by summation.

    Because every aggregate is additive over posts, the merge is a plain
    sum over the shards' keyword×year buckets — associative and
    order-independent (up to float summation order), and equal to the
    signals of one unsharded tracker fed the concatenated feed.
    """
    return DeltaTracker.merged(trackers).signals(
        since_year=since_year, until_year=until_year
    )


# -- the per-shard ingest job -------------------------------------------------


@dataclass(frozen=True)
class _ShardJob:
    """One shard's micro-batch, as a picklable work item."""

    keywords: Tuple[str, ...]
    region: Optional[str]
    posts: Tuple[Post, ...]
    post_filter: Optional[PostAuthenticityFilter]


def _run_shard_job(
    job: _ShardJob,
) -> Tuple[SignalDelta, Optional[FilterReport]]:
    """Filter + delta-reduce one shard batch (runs inside any executor).

    Module-level and pure so a :class:`~repro.core.executor.
    ProcessExecutor` can ship it to a worker: in comes plain data, out
    comes an additive :class:`SignalDelta` and the authenticity-filter
    audit report.
    """
    report: Optional[FilterReport] = None
    posts: Sequence[Post] = job.posts
    if job.post_filter is not None and posts:
        report = job.post_filter.filter(list(posts))
        posts = report.accepted
    delta = compute_signal_delta(job.keywords, posts, region=job.region)
    return delta, report


@dataclass
class _ShardState:
    """One shard's private slice of the runtime.

    ``metrics`` is the shard's child registry (merged into the parent by
    pure summation at collect time); ``ingested`` and ``merge_seconds``
    are its shard-labelled instruments.
    """

    shard_id: int
    feed: FeedSource
    index: StreamingCorpusIndex  # or TieredCorpusIndex (duck-compatible)
    deltas: DeltaTracker
    cursor: int = -1
    metrics: object = None
    ingested: object = None
    merge_seconds: object = None


# -- the sharded runtime ------------------------------------------------------


class ShardedStreamRuntime:
    """N sharded feeds fanned into one shared tick evaluation.

    The constructor mirrors :class:`~repro.stream.runtime.StreamRuntime`
    except that it takes a *sequence* of feeds (one per shard) plus an
    execution policy:

    Args:
        feeds: the shard event sources, e.g. from :func:`shard_feeds`.
        database: shared attack-keyword database (snapshot semantics,
            like the single runtime).
        target: assessment target; its region scopes every shard's SAI
            aggregates.
        config: pipeline tunables.
        since_year: lower bound of the analysis window.
        network: compiled once; table-changing ticks re-score it.
        tracker: lifecycle tracker for trend-shift events.
        post_filter: authenticity filter, applied *per shard batch*
            inside the shard job (its share-based heuristics then judge
            each shard's traffic on its own — the per-shard analogue of
            the single runtime's per-batch filtering).
        batch_size: default per-shard micro-batch size for :meth:`tick`.
        compact_threshold / compact_ratio: per-shard index compaction
            policy (each shard compacts its own, smaller, segments).
        warm_span_days / cold_age_days: per-shard retention knobs;
            setting either builds every shard on a
            :class:`~repro.stream.tiers.TieredCorpusIndex` (hot tail,
            date-bounded warm segments, cold segments with aggregate
            sidecars) instead of the flat streaming index.
        spill_dir / max_resident_cold: when ``spill_dir`` is set, ONE
            :class:`~repro.stream.store.SegmentStore` opens there and
            every shard spills its cold seals into it (keys are
            content-addressed, so shards sharing a directory never
            collide); shard appends run serially in the merge leg, so
            the shared store sees no concurrent writes.  Requires tiered
            retention.
        executor: explicit :mod:`~repro.core.executor` instance; wins
            over ``workers``.
        workers: requested parallelism for the shard jobs; resolved by
            :func:`~repro.core.executor.resolve_executor` (``auto`` —
            degrades to serial on a single-CPU host).
        metrics: a :class:`~repro.obs.registry.MetricsRegistry`; each
            shard gets a **child registry** (shard-labelled instruments,
            tier gauges) merged into this one by pure summation at
            export time — the metric-space mirror of the
            ``SignalDelta.merge`` the tick itself performs.  None wires
            the no-op path.
    """

    def __init__(
        self,
        feeds: Sequence[FeedSource],
        database: KeywordDatabase,
        *,
        target: Optional[TargetApplication] = None,
        config: Optional[PSPConfig] = None,
        since_year: Optional[int] = None,
        network: Optional[VehicleNetwork] = None,
        tracker: Optional[LifecycleTracker] = None,
        post_filter: Optional[PostAuthenticityFilter] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
        compact_ratio: Optional[float] = None,
        warm_span_days: Optional[int] = None,
        cold_age_days: Optional[int] = None,
        spill_dir=None,
        max_resident_cold: Optional[int] = None,
        executor=None,
        workers: Optional[int] = None,
        metrics=None,
    ) -> None:
        feeds = list(feeds)
        if not feeds:
            raise ValueError("ShardedStreamRuntime needs at least one feed")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._database = database
        self._db_version = database.version
        self._target = target or TargetApplication(
            "streamed", "global", "stream"
        )
        self._config = config or PSPConfig()
        self._batch_size = batch_size
        self._filter = post_filter
        region = target.region if target is not None else None
        self._metrics = ensure_registry(metrics)
        self._trace = trace_for(self._metrics)
        self._ticks_total = self._metrics.counter(
            "psp_ticks_total", "Stream ticks processed"
        )
        self._events_total = self._metrics.counter(
            "psp_events_total", "Feed events consumed"
        )
        self._ingested_total = self._metrics.counter(
            "psp_posts_ingested_total", "Posts accepted into the index"
        )
        self._rejected_total = self._metrics.counter(
            "psp_posts_rejected_total",
            "Posts rejected by the authenticity filter",
        )
        self._learned_total = self._metrics.counter(
            "psp_keywords_learned_total", "Keywords adopted mid-stream"
        )
        self._dirty_hist = self._metrics.histogram(
            "psp_dirty_keywords",
            "Dirty keywords per tick",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._evaluator = TickEvaluator(
            database,
            target=self._target,
            config=self._config,
            since_year=since_year,
            network=network,
            tracker=tracker,
            metrics=self._metrics,
            trace=self._trace,
        )
        # All shards spill into ONE store: keys are content-addressed,
        # so a shared directory is collision-free, and shard appends run
        # serially in the merge leg, so the store sees no concurrent
        # writes.  Store metrics land on the parent registry (spills are
        # a runtime-wide resource, not a per-shard one).
        self._store: Optional[SegmentStore] = None
        if spill_dir is not None:
            if warm_span_days is None and cold_age_days is None:
                raise ValueError(
                    "spill-to-disk requires tiered retention: set "
                    "warm_span_days or cold_age_days alongside spill_dir"
                )
            self._store = SegmentStore(
                spill_dir,
                max_resident_cold=(
                    DEFAULT_MAX_RESIDENT_COLD
                    if max_resident_cold is None
                    else max_resident_cold
                ),
                metrics=self._metrics,
            )
        self._shards: List[_ShardState] = []
        for shard_id, feed in enumerate(feeds):
            deltas = DeltaTracker(database, region=region)
            shard_metrics = self._metrics.child()
            index = build_stream_index(
                compact_threshold=compact_threshold,
                compact_ratio=compact_ratio,
                warm_span_days=warm_span_days,
                cold_age_days=cold_age_days,
                sidecar_keywords=database.keywords,
                sidecar_region=deltas.region,
                sidecar_analyzer=deltas.analyzer,
                store=self._store,
                max_resident_cold=max_resident_cold,
                metrics=shard_metrics,
            )
            self._shards.append(
                _ShardState(
                    shard_id=shard_id,
                    feed=feed,
                    index=index,
                    deltas=deltas,
                    metrics=shard_metrics,
                    ingested=shard_metrics.counter(
                        "psp_shard_posts_ingested_total",
                        "Posts accepted per shard",
                        labelnames=("shard",),
                    ),
                    merge_seconds=shard_metrics.histogram(
                        "psp_shard_merge_seconds",
                        "Per-shard merge-leg latency "
                        "(index append + delta apply)",
                        labelnames=("shard",),
                    ),
                )
            )
        self._adopted_keywords: List[str] = []
        #: The incrementally maintained pure-sum merge of every shard's
        #: deltas — each tick applies the shard SignalDeltas here too,
        #: which is the associative merge done additively (equal to
        #: re-merging from scratch; see merged_deltas()).
        self._merged = DeltaTracker(database, region=region)
        self._executor = (
            executor if executor is not None else resolve_executor(workers)
        )
        self._tick_seq = 0
        self._max_date: Optional[dt.date] = None
        self._ticks: List[StreamTick] = []
        self._filter_reports: List[FilterReport] = []

    # -- introspection ------------------------------------------------------

    @property
    def shard_count(self) -> int:
        """How many shards this runtime fans in."""
        return len(self._shards)

    @property
    def store(self) -> Optional[SegmentStore]:
        """The shared spill store (None when fully resident)."""
        return self._store

    @property
    def metrics(self):
        """The parent telemetry registry (children merge into it)."""
        return self._metrics

    @property
    def trace(self):
        """The tick-span recorder bound to :attr:`metrics`."""
        return self._trace

    @property
    def shard_metrics(self) -> Tuple[object, ...]:
        """Per-shard child registries (pure-sum merged into the parent)."""
        return tuple(shard.metrics for shard in self._shards)

    @property
    def learned_keywords(self) -> Tuple[str, ...]:
        """Keywords adopted mid-stream (keyword learning), oldest first."""
        return tuple(self._adopted_keywords)

    @property
    def executor(self):
        """The executor running the per-shard ingest jobs."""
        return self._executor

    @property
    def evaluator(self) -> TickEvaluator:
        """The shared conditional retune/rescore core."""
        return self._evaluator

    @property
    def cursors(self) -> Tuple[int, ...]:
        """Per-shard highest consumed feed sequence numbers."""
        return tuple(shard.cursor for shard in self._shards)

    @property
    def shard_indexes(self) -> Tuple[StreamingCorpusIndex, ...]:
        """Per-shard appendable corpus indexes."""
        return tuple(shard.index for shard in self._shards)

    @property
    def shard_deltas(self) -> Tuple[DeltaTracker, ...]:
        """Per-shard dirty-keyword trackers."""
        return tuple(shard.deltas for shard in self._shards)

    @property
    def deltas(self) -> DeltaTracker:
        """The maintained pure-sum merge of every shard's aggregates."""
        return self._merged

    def merged_deltas(self) -> DeltaTracker:
        """A *fresh* pure-sum merge of the shard trackers.

        Recomputes the merge from scratch — equal to :attr:`deltas`
        modulo the transient dirty set, which is the associativity
        guarantee the property tests pin down.
        """
        return DeltaTracker.merged([s.deltas for s in self._shards])

    @property
    def alerts(self) -> Tuple[TrendAlert, ...]:
        """All alerts emitted so far, oldest first."""
        return tuple(self._evaluator.alerts)

    @property
    def ticks(self) -> Tuple[StreamTick, ...]:
        """All processed ticks, oldest first."""
        return tuple(self._ticks)

    @property
    def current_table(self):
        """The insider table in force (None before the first retune)."""
        return self._evaluator.last_table

    @property
    def current_result(self):
        """The PSP result of the latest retune (None before the first)."""
        return self._evaluator.last_result

    @property
    def tara_scorer(self) -> Optional[BatchTaraScorer]:
        """The compiled-model scorer (None without a network)."""
        return self._evaluator.scorer

    @property
    def post_filter(self) -> Optional[PostAuthenticityFilter]:
        """The per-shard-batch authenticity filter (None = unfiltered)."""
        return self._filter

    @property
    def filter_reports(self) -> Tuple[FilterReport, ...]:
        """Filter audit reports, one per filtered shard batch."""
        return tuple(self._filter_reports)

    def baseline_tara(self):
        """The static-table TARA (None without a network)."""
        return self._evaluator.baseline_tara()

    @property
    def stream_stats(self) -> Dict[str, object]:
        """Operational counters for dashboards and benches.

        **Deprecated alias**: the flat pre-obs dict shape, now derived
        from :func:`repro.obs.views.runtime_health` so every stats
        consumer reads from one source.
        """
        return obs_views.stream_stats(self)

    def runtime_health(self) -> Dict[str, object]:
        """The unified, schema-versioned health document (see
        :mod:`repro.obs.views`)."""
        return obs_views.runtime_health(self)

    # -- the tick -----------------------------------------------------------

    def _sync_database(self) -> Tuple[str, ...]:
        """Adopt mid-stream keyword additions across every shard.

        The sharded analogue of the single runtime's sync: each shard
        tracker (and the maintained merge) widens to the database's new
        keyword tuple, each shard *index* backfills the added keywords'
        aggregates over its own tiers (cold sidecars extend lazily), and
        the backfill deltas fold into both the shard tracker and the
        merge so the next evaluation sees full-history evidence.
        """
        if self._database.version == self._db_version:
            return ()
        old_version = self._db_version
        adopted = self._database.keywords
        try:
            added = self._merged.adopt_keywords(adopted)
            for shard in self._shards:
                shard.deltas.adopt_keywords(adopted)
        except ValueError as exc:
            raise PSPError(
                "keyword database changed mid-stream in an unsupported "
                f"way (version {old_version} -> "
                f"{self._database.version}): {exc} — only additions "
                "(keyword learning) can be adopted without a restart"
            ) from exc
        if added:
            for shard in self._shards:
                delta = shard.index.signal_backfill(
                    added,
                    region=shard.deltas.region,
                    analyzer=shard.deltas.analyzer,
                )
                shard.deltas.apply_delta(delta)
                shard.deltas.take_dirty()  # mirrored via the merge below
                self._merged.apply_delta(delta)
                adopt_sidecar = getattr(
                    shard.index, "adopt_sidecar_keywords", None
                )
                if adopt_sidecar is not None:
                    adopt_sidecar(shard.deltas.keywords)
            self._merged.mark_dirty(added)
            self._adopted_keywords.extend(added)
            self._learned_total.inc(len(added))
        else:
            # A version bump with no new keywords is an annotation
            # (owner approval changed): reclassify everything next tick.
            self._merged.mark_dirty(self._merged.keywords)
        self._db_version = self._database.version
        return added

    def _ingest(
        self,
        events_per_shard: Sequence[Sequence[PostEvent]],
        upto_year: Optional[int],
    ) -> StreamTick:
        """One merged tick over each shard's micro-batch."""
        self._sync_database()
        with self._trace.tick():
            keywords = self._merged.keywords
            region = self._merged.region
            jobs = [
                _ShardJob(
                    keywords=keywords,
                    region=region,
                    posts=tuple(event.post for event in events),
                    post_filter=self._filter,
                )
                for events in events_per_shard
            ]
            # The embarrassingly parallel stage: filter + delta-reduce
            # every shard batch.  Serial, thread and process executors
            # produce identical deltas; only wall-clock differs.
            with self._trace.span("shard_map"):
                outcomes = self._executor.map(_run_shard_job, jobs)

            accepted_counts: List[int] = []
            events_total = 0
            rejected = 0
            with self._trace.span("shard_merge"):
                for shard, events, job, (delta, report) in zip(
                    self._shards, events_per_shard, jobs, outcomes
                ):
                    leg_start = time.perf_counter()
                    if report is not None:
                        self._filter_reports.append(report)
                        accepted: Sequence[Post] = report.accepted
                        rejected += len(report.rejected)
                    else:
                        accepted = job.posts
                    shard.index.append(accepted)
                    shard.deltas.apply_delta(delta)
                    # mirrored into the merged tracker
                    shard.deltas.take_dirty()
                    self._merged.apply_delta(delta)
                    events_total += len(events)
                    accepted_counts.append(len(accepted))
                    for event in events:
                        if event.seq > shard.cursor:
                            shard.cursor = event.seq
                    for post in accepted:
                        if (
                            self._max_date is None
                            or post.created_at > self._max_date
                        ):
                            self._max_date = post.created_at
                    shard.ingested.inc(
                        len(accepted), shard=str(shard.shard_id)
                    )
                    shard.merge_seconds.observe(
                        time.perf_counter() - leg_start,
                        shard=str(shard.shard_id),
                    )

            dirty = self._merged.take_dirty()
            if upto_year is None and self._max_date is not None:
                upto_year = self._max_date.year
            retuned, rescored, alert = self._evaluator.evaluate(
                self._merged, dirty, upto_year
            )
        self._ticks_total.inc()
        self._events_total.inc(events_total)
        self._ingested_total.inc(sum(accepted_counts))
        self._rejected_total.inc(rejected)
        self._dirty_hist.observe(len(dirty))
        self._tick_seq += 1
        tick = StreamTick(
            seq=self._tick_seq,
            events=events_total,
            accepted=sum(accepted_counts),
            rejected=rejected,
            dirty=tuple(sorted(dirty)),
            retuned=retuned,
            rescored=rescored,
            alert=alert,
            upto_year=upto_year,
            shard_accepted=tuple(accepted_counts),
        )
        self._ticks.append(tick)
        return tick

    def tick(self, batch_size: Optional[int] = None) -> Optional[StreamTick]:
        """Consume one micro-batch per shard as a single merged tick.

        Returns None when every feed is drained.  Shards that are
        temporarily empty contribute an empty batch — a lagging region
        does not stall the others.
        """
        limit = batch_size or self._batch_size
        events_per_shard = [
            shard.feed.events_after(shard.cursor, limit=limit)
            for shard in self._shards
        ]
        if not any(events_per_shard):
            return None
        return self._ingest(events_per_shard, None)

    def advance_to(
        self, until: dt.date, *, upto_year: Optional[int] = None
    ) -> StreamTick:
        """Consume everything up to ``until`` on every shard as one tick.

        The monitor-compatibility driver, like the single runtime's:
        empty shard batches still evaluate, so the first call
        establishes the baseline table.
        """
        events_per_shard = [
            shard.feed.events_after(shard.cursor, until=until)
            for shard in self._shards
        ]
        return self._ingest(
            events_per_shard,
            upto_year if upto_year is not None else until.year,
        )

    def learn_keywords(
        self, *, min_support: float = 0.05, max_new: int = 10
    ) -> Tuple[str, ...]:
        """Mine every shard's retained texts for new keywords.

        The sharded analogue of the single runtime's in-stream keyword
        learning: co-occurrence mining runs over the union of the
        shards' retained texts (hot + warm tiers on tiered indexes),
        the learned keywords are adopted across every shard tracker and
        the merge, and their aggregates backfill from the shard
        indexes.  Returns the learned canonical keywords.
        """
        texts: List[str] = []
        for shard in self._shards:
            texts.extend(shard.index.retained_texts())
        learned = self._database.learn_from_texts(
            texts, min_support=min_support, max_new=max_new
        )
        self._sync_database()
        return tuple(entry.keyword for entry in learned)

    def ingest(
        self,
        events_per_shard: Sequence[Sequence[PostEvent]],
        *,
        upto_year: Optional[int] = None,
    ) -> StreamTick:
        """One merged tick over caller-supplied per-shard event batches.

        The push-style entry point for drivers that generate events on
        the fly (e.g. the retention bench) instead of pre-loading a
        replayable feed per shard: ``events_per_shard[i]`` is shard
        *i*'s micro-batch for this tick.  Feed cursors still advance
        from the event sequence numbers, so push- and pull-style ingest
        can be mixed.
        """
        if len(events_per_shard) != len(self._shards):
            raise ValueError(
                f"got batches for {len(events_per_shard)} shards, "
                f"runtime has {len(self._shards)}"
            )
        return self._ingest(events_per_shard, upto_year)

    def run(self, batch_size: Optional[int] = None) -> List[StreamTick]:
        """Drain every feed in merged micro-batch ticks."""
        ticks: List[StreamTick] = []
        while True:
            tick = self.tick(batch_size)
            if tick is None:
                return ticks
            ticks.append(tick)

    def close(self) -> None:
        """Release the executor's worker pool (idempotent)."""
        self._executor.close()

    def __enter__(self) -> "ShardedStreamRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- checkpoint support -------------------------------------------------

    def state_dict(self, *, include_index: bool = True) -> Dict[str, object]:
        """JSON-serialisable snapshot of all resumable state.

        Per-shard cursors, tracker aggregates and columnar index
        segments plus the shared evaluator state.  Like the single
        runtime's, ``include_index=False`` keeps the lean layout: the
        per-shard indexes are rebuildable from the feeds and restart
        empty on restore.
        """
        state: Dict[str, object] = {
            "cursors": list(self.cursors),
            "tick_seq": self._tick_seq,
            "max_date": self._max_date.isoformat() if self._max_date else None,
            "since_year": self._evaluator.since_year,
            "db_version": self._db_version,
        }
        state.update(self._evaluator.state_slice())
        state["shard_deltas"] = [
            shard.deltas.state_dict() for shard in self._shards
        ]
        if include_index:
            state["shard_indexes"] = [
                shard.index.state_dict() for shard in self._shards
            ]
        return state

    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot (same shard count)."""
        cursors = list(state["cursors"])  # type: ignore[arg-type]
        shard_states = list(state["shard_deltas"])  # type: ignore[arg-type]
        if len(cursors) != len(self._shards) or len(shard_states) != len(
            self._shards
        ):
            raise ValueError(
                f"checkpoint has {len(cursors)} shards, runtime has "
                f"{len(self._shards)}"
            )
        self._tick_seq = int(state["tick_seq"])  # type: ignore[arg-type]
        raw_date = state.get("max_date")
        self._max_date = (
            dt.date.fromisoformat(raw_date) if raw_date else None  # type: ignore[arg-type]
        )
        self._evaluator.since_year = state.get("since_year")  # type: ignore[assignment]
        self._evaluator.load_slice(
            state,
            database_matches=state.get("db_version") == self._database.version,
        )
        index_states = state.get("shard_indexes")
        if index_states is not None and len(index_states) != len(self._shards):  # type: ignore[arg-type]
            raise ValueError(
                f"checkpoint has {len(index_states)} shard indexes, "  # type: ignore[arg-type]
                f"runtime has {len(self._shards)}"
            )
        for position, (shard, cursor, shard_state) in enumerate(
            zip(self._shards, cursors, shard_states)
        ):
            shard.cursor = int(cursor)
            shard.deltas.load_state(shard_state)
            if index_states is not None:
                shard.index.load_state(index_states[position])  # type: ignore[index]
        # Rebuild the maintained merge from the restored shard trackers;
        # the merged dirty set is the union of the shards' interrupted
        # dirty sets, so a mid-tick stop re-evaluates exactly them.
        self._merged = DeltaTracker.merged([s.deltas for s in self._shards])
