"""Client resilience: retries and graceful degradation.

The paper's proof of concept polled the Twitter APIs, where rate limits
and transient failures are the operational norm.  This module provides
the failure-handling layer a production PSP deployment needs:

* :class:`TransientPlatformError` — what a client raises for retryable
  failures (rate limit, timeout, 5xx).
* :class:`RetryingClient` — decorator that retries transient failures a
  bounded number of times; it counts attempts so tests and operators can
  observe retry pressure.
* :class:`BestEffortClient` — decorator that converts *persistent*
  failure into an empty result instead of aborting a whole SAI run: one
  keyword's outage must not lose the other thirty keywords' analysis.
  Degraded keywords are recorded for the audit trail, because an empty
  result that silently looked like "no social interest" would bias the
  weight tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.social.api import SearchQuery, SocialMediaClient
from repro.social.post import Post


class TransientPlatformError(Exception):
    """A retryable platform failure (rate limit, timeout, 5xx)."""


class RetryingClient(SocialMediaClient):
    """Retries transient failures up to ``max_attempts`` per call."""

    def __init__(self, inner: SocialMediaClient, *, max_attempts: int = 3) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self._inner = inner
        self._max_attempts = max_attempts
        self._attempts = 0
        self._retries = 0

    @property
    def attempts(self) -> int:
        """Total inner-call attempts made (including successes)."""
        return self._attempts

    @property
    def retries(self) -> int:
        """Total retried calls (attempts beyond the first per operation)."""
        return self._retries

    def _call(self, operation):
        last_error = None
        for attempt in range(self._max_attempts):
            self._attempts += 1
            if attempt > 0:
                self._retries += 1
            try:
                return operation()
            except TransientPlatformError as error:
                last_error = error
        raise last_error

    def search(self, query: SearchQuery) -> List[Post]:
        """Search with retry on transient failure."""
        return self._call(lambda: self._inner.search(query))

    def count_by_year(self, query: SearchQuery) -> Dict[int, int]:
        """Count with retry on transient failure."""
        return self._call(lambda: self._inner.count_by_year(query))


class BestEffortClient(SocialMediaClient):
    """Converts persistent failures into empty results, with audit trail."""

    def __init__(self, inner: SocialMediaClient) -> None:
        self._inner = inner
        self._degraded: Set[str] = set()

    @property
    def degraded_keywords(self) -> Set[str]:
        """Keywords whose searches failed and returned empty results."""
        return set(self._degraded)

    def search(self, query: SearchQuery) -> List[Post]:
        """Search; on platform failure record the keyword and return []."""
        try:
            return self._inner.search(query)
        except TransientPlatformError:
            self._degraded.add(query.keyword)
            return []

    def count_by_year(self, query: SearchQuery) -> Dict[int, int]:
        """Count; on platform failure record the keyword and return {}."""
        try:
            return self._inner.count_by_year(query)
        except TransientPlatformError:
            self._degraded.add(query.keyword)
            return {}


class FlakyClient(SocialMediaClient):
    """Test double: fails deterministically before succeeding.

    Raises :class:`TransientPlatformError` for the first
    ``failures_per_call`` attempts of every distinct query, then delegates.
    Keywords listed in ``dead_keywords`` fail forever — simulating a
    persistent outage for specific queries.
    """

    def __init__(
        self,
        inner: SocialMediaClient,
        *,
        failures_per_call: int = 2,
        dead_keywords: Set[str] = frozenset(),
    ) -> None:
        if failures_per_call < 0:
            raise ValueError("failures_per_call must be >= 0")
        self._inner = inner
        self._failures_per_call = failures_per_call
        self._dead = set(dead_keywords)
        self._seen: Dict[str, int] = {}

    def _maybe_fail(self, query: SearchQuery, operation: str) -> None:
        if query.keyword in self._dead:
            raise TransientPlatformError(f"permanent outage for {query.keyword!r}")
        key = f"{operation}:{query.keyword}:{query.since}:{query.until}"
        count = self._seen.get(key, 0)
        self._seen[key] = count + 1
        if count < self._failures_per_call:
            raise TransientPlatformError(
                f"rate limited ({count + 1}/{self._failures_per_call})"
            )

    def search(self, query: SearchQuery) -> List[Post]:
        """Fail ``failures_per_call`` times, then delegate."""
        self._maybe_fail(query, "search")
        return self._inner.search(query)

    def count_by_year(self, query: SearchQuery) -> Dict[int, int]:
        """Fail ``failures_per_call`` times, then delegate."""
        self._maybe_fail(query, "count")
        return self._inner.count_by_year(query)
