"""Deterministic synthetic social-media corpus generation.

This is the substitution for the paper's Twitter data source (DESIGN.md).
A corpus is described *declaratively* by a set of :class:`AttackTopicSpec`
records — one per attack keyword — giving the posting volume per year,
the engagement scale, the sentiment mix and optional price mentions.  The
generator expands the specs into concrete :class:`~repro.social.post.Post`
objects using a seeded PRNG, so every run of the reproduction sees exactly
the same corpus.

The specs used for the paper's experiments live in
:mod:`repro.social.scenarios`; they encode the *published* trends (physical
ECM-reprogramming dominance before 2021, the local/OBD trend inversion
from 2022, DPF-delete dominance for excavators), which is what makes the
downstream figures come out with the paper's shape.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.iso21434.enums import AttackVector
from repro.social.corpus import Corpus
from repro.social.post import Engagement, Post

#: Enthusiastic owner-voice templates (insider attacks are owner-approved,
#: so their posts read as first-person success stories).
_POSITIVE_TEMPLATES = (
    "Finally got my #{kw} done, truck pulls so much better now",
    "Best money I ever spent, the #{kw} kit works perfect",
    "My mechanic sorted the #{kw} in an hour, amazing gain",
    "Really happy with the #{kw}, fuel costs way down",
    "#{kw} installed this weekend, engine feels awesome",
    "Got the #{kw} from a racing workshop, totally worth it",
    "So smooth after the #{kw}, recommend it to everyone",
    "#{kw} done at the farm, saved a fortune on regen downtime",
)

#: Deterrence-voice templates (fines, failures, regret).
_NEGATIVE_TEMPLATES = (
    "Got fined after the #{kw}, worst decision ever",
    "My engine broke two weeks after the #{kw}, regret it",
    "Inspection failed because of the #{kw}, expensive problem",
    "The #{kw} kit was a scam, never buying online again",
    "Warranty void after #{kw}, terrible idea",
    "#{kw} put the truck in limp mode, avoid this garbage",
)

#: Neutral/informational templates.
_NEUTRAL_TEMPLATES = (
    "Anyone have experience with #{kw} on a 2019 model?",
    "Looking for a shop that does #{kw} near Munich",
    "What tools do you need for a #{kw}?",
    "Is #{kw} detectable at the annual inspection?",
    "Thread about #{kw} options for fleet operators",
)

#: Third-person crime-voice templates used for outsider topics (thefts,
#: black-hat activity the owner does not approve).
_OUTSIDER_TEMPLATES = (
    "Another van stolen overnight, police say thieves used #{kw}",
    "Criminals are using #{kw} devices to steal trucks in the area",
    "Warning: #{kw} theft wave reported by the insurance company",
    "Gang arrested for stealing cars with #{kw} equipment",
    "My neighbour's car was taken, investigators suspect #{kw}",
)

#: Price-mention templates appended to a fraction of posts.
_PRICE_TEMPLATES = (
    "Paid {price} EUR for the kit.",
    "The device cost me {price} EUR shipped.",
    "Quoted {price} EUR by the workshop.",
    "Found it online for {price} EUR.",
)


@dataclass(frozen=True)
class AttackTopicSpec:
    """Declarative description of one attack topic in the corpus.

    Attributes:
        keyword: canonical attack keyword; posts carry it as a hashtag.
        vector: the attack vector this topic's attack uses in the real
            world (e.g. DPF delete = physical; OBD tuning = local).
        owner_approved: True for insider topics (owner-initiated tampering),
            False for outsider topics (theft, black-hat).
        yearly_volume: posts per calendar year.
        engagement_scale: multiplies all engagement draws; encodes topic
            popularity beyond raw post counts.
        positive_ratio: fraction of posts with enthusiastic sentiment;
            the rest split evenly between negative and neutral.
        price_range: if given, ``price_mention_rate`` of the posts quote a
            uniformly drawn price in [low, high] (device/service pricing,
            the PPIA raw material).
        price_mention_rate: fraction of posts carrying a price mention.
        companion_tags: extra hashtags attached to ~30% of posts; food for
            the keyword auto-learning loop.
        region: region stamped on the posts.
    """

    keyword: str
    vector: AttackVector
    owner_approved: bool
    yearly_volume: Mapping[int, int]
    engagement_scale: float = 1.0
    positive_ratio: float = 0.7
    price_range: Optional[Tuple[float, float]] = None
    price_mention_rate: float = 0.2
    companion_tags: Tuple[str, ...] = ()
    region: str = "europe"

    def __post_init__(self) -> None:
        if not self.keyword:
            raise ValueError("keyword must be non-empty")
        if not self.yearly_volume:
            raise ValueError(f"topic {self.keyword!r} needs >= 1 year of volume")
        if any(v < 0 for v in self.yearly_volume.values()):
            raise ValueError(f"topic {self.keyword!r} has negative volume")
        if not 0.0 <= self.positive_ratio <= 1.0:
            raise ValueError("positive_ratio must be in [0, 1]")
        if not 0.0 <= self.price_mention_rate <= 1.0:
            raise ValueError("price_mention_rate must be in [0, 1]")
        if self.engagement_scale <= 0:
            raise ValueError("engagement_scale must be > 0")
        object.__setattr__(self, "yearly_volume", dict(self.yearly_volume))
        object.__setattr__(self, "companion_tags", tuple(self.companion_tags))

    @property
    def total_volume(self) -> int:
        """Total posts over all years."""
        return sum(self.yearly_volume.values())


@dataclass
class CorpusGenerator:
    """Expands topic specs into a deterministic post corpus."""

    seed: int = 21434
    _counter: int = field(default=0, init=False)

    def generate(self, specs: Sequence[AttackTopicSpec]) -> Corpus:
        """Generate one corpus containing every spec'd topic."""
        rng = random.Random(self.seed)
        posts: List[Post] = []
        for spec in specs:
            posts.extend(self._topic_posts(spec, rng))
        return Corpus(posts)

    def _topic_posts(
        self, spec: AttackTopicSpec, rng: random.Random
    ) -> Iterable[Post]:
        for year in sorted(spec.yearly_volume):
            for _ in range(spec.yearly_volume[year]):
                yield self._one_post(spec, year, rng)

    def _one_post(
        self, spec: AttackTopicSpec, year: int, rng: random.Random
    ) -> Post:
        self._counter += 1
        text = self._render_text(spec, rng)
        day_of_year = rng.randint(1, 365)
        created = dt.date(year, 1, 1) + dt.timedelta(days=day_of_year - 1)
        return Post(
            post_id=f"p{self._counter:07d}",
            text=text,
            author=f"user{rng.randint(1, 5000):04d}",
            created_at=created,
            region=spec.region,
            engagement=self._draw_engagement(spec, rng),
        )

    def _render_text(self, spec: AttackTopicSpec, rng: random.Random) -> str:
        if not spec.owner_approved:
            template = rng.choice(_OUTSIDER_TEMPLATES)
        else:
            roll = rng.random()
            if roll < spec.positive_ratio:
                template = rng.choice(_POSITIVE_TEMPLATES)
            elif roll < spec.positive_ratio + (1 - spec.positive_ratio) / 2:
                template = rng.choice(_NEGATIVE_TEMPLATES)
            else:
                template = rng.choice(_NEUTRAL_TEMPLATES)
        text = template.format(kw=spec.keyword)
        if spec.companion_tags and rng.random() < 0.3:
            tag = rng.choice(spec.companion_tags)
            text = f"{text} #{tag}"
        if spec.price_range is not None and rng.random() < spec.price_mention_rate:
            low, high = spec.price_range
            price = round(rng.uniform(low, high) / 10) * 10
            text = f"{text} {rng.choice(_PRICE_TEMPLATES).format(price=int(price))}"
        return text

    def _draw_engagement(
        self, spec: AttackTopicSpec, rng: random.Random
    ) -> Engagement:
        scale = spec.engagement_scale
        views = int(rng.uniform(200, 5000) * scale)
        likes = int(views * rng.uniform(0.01, 0.08))
        reposts = int(likes * rng.uniform(0.05, 0.4))
        replies = int(likes * rng.uniform(0.1, 0.5))
        return Engagement(views=views, likes=likes, reposts=reposts, replies=replies)


def generate_corpus(
    specs: Sequence[AttackTopicSpec], *, seed: int = 21434
) -> Corpus:
    """Generate a deterministic corpus from ``specs`` with ``seed``."""
    return CorpusGenerator(seed=seed).generate(specs)


def volume_by_keyword(specs: Sequence[AttackTopicSpec]) -> Dict[str, int]:
    """Total spec'd post volume per keyword (generation ground truth)."""
    return {spec.keyword: spec.total_volume for spec in specs}
